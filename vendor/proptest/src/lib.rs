//! Vendored minimal `proptest` stand-in so the workspace builds offline.
//!
//! Implements the subset of proptest 1.x this workspace's property tests
//! use: the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`strategy::Strategy`] with `prop_map`/`prop_flat_map`, numeric range
//! strategies, tuple strategies, [`collection::vec`], [`any`], and the
//! `prop_assert*` macros. Unlike upstream there is no shrinking: each
//! test runs `cases` deterministic random inputs (seeded per test name)
//! and reports the failing case verbatim.

#![forbid(unsafe_code)]

use std::marker::PhantomData;

pub mod test_runner {
    /// Deterministic xoshiro256++-style generator for test inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the no-shrinking stand-in
            // fast while still exercising a spread of inputs.
            ProptestConfig { cases: 64 }
        }
    }

    /// FNV-1a hash of the test name, used as a stable per-test seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

use test_runner::TestRng;

pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for producing random values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }

        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { base: self, f, whence }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.base.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    pub struct Filter<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
        pub(crate) whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            for _ in 0..1000 {
                let v = self.base.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter `{}` rejected 1000 consecutive inputs", self.whence);
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    self.start() + (rng.unit_f64() as $t) * (self.end() - self.start())
                }
            }
        )*};
    }
    impl_range_strategy_float!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }
}

use strategy::Strategy;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric spread; upstream's bit-pattern chaos is
        // overkill for these tests.
        ((rng.unit_f64() - 0.5) * 2.0e6) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.unit_f64() - 0.5) * 2.0e12
    }
}

pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Sizes accepted by [`vec`]: a fixed length or a length range.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + (rng.next_u64() as usize) % (hi - lo + 1)
        }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        if va != vb {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), va, vb
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        if va != vb {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        if va == vb {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                va
            ));
        }
    }};
}

/// The proptest entry macro: wraps each `fn name(arg in strategy, ..)`
/// into a `#[test]` that runs `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = $crate::test_runner::TestRng::seed_from_u64(seed);
            for case in 0..config.cases {
                let result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = result {
                    panic!(
                        "proptest case {}/{} failed (seed {:#x}):\n{}",
                        case + 1, config.cases, seed, msg
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn tiny_vec() -> impl Strategy<Value = Vec<u8>> {
        (1usize..5).prop_flat_map(|n| collection::vec(any::<u8>(), n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        fn ranges_stay_in_bounds(x in 3u32..9, y in -2.0f32..2.0, (w, h) in (1u32..5, 1u32..5)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(w < 5 && h < 5);
        }

        fn vecs_have_requested_len(v in tiny_vec(), fixed in collection::vec(any::<u8>(), 7)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert_eq!(fixed.len(), 7);
        }

        fn mapped_values_transform(v in (0u8..10).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0 && v < 20);
        }
    }
}
