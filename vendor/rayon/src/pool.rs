//! The worker pool behind the parallel adapters.
//!
//! A lazy global set of `width() - 1` std threads plus the calling
//! thread cooperatively drain an atomically-indexed chunk space per
//! parallel call. Width comes from `TAOR_THREADS` (a positive integer;
//! `0` or garbage falls back to auto) or `available_parallelism`. At
//! width 1 no threads are ever spawned and every adapter runs on the
//! caller, exactly like the previous sequential shim.
//!
//! Nested parallel calls (a `par_iter` body that itself calls into a
//! parallel region, e.g. classify fan-outs whose scorers run the GEMM)
//! execute inline on the worker: only top-level calls split, which
//! keeps the pool deadlock-free without work stealing.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use taor_model::proto::on_shim::ChunkLatch;

/// Actual pool width: the number of threads that execute parallel
/// regions (workers + the participating caller). This is what
/// `rayon::current_num_threads` reports, so perf records show the real
/// parallelism, not the machine's core count.
pub(crate) fn width() -> usize {
    static WIDTH: OnceLock<usize> = OnceLock::new();
    *WIDTH.get_or_init(|| {
        match std::env::var("TAOR_THREADS").ok().and_then(|v| v.trim().parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        }
    })
}

thread_local! {
    static IS_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Task>>>,
    work_cv: Condvar,
}

/// One parallel region: a type-erased `f(start, end)` over `0..len`,
/// chunks handed out by the model-checked [`ChunkLatch`] (see
/// `crates/model/src/proto.rs` — `claim` is the `Relaxed` chunk
/// allocator, `complete` the `AcqRel` hand-off edge). `ctx` borrows the
/// caller's stack; this is sound because the caller blocks until the
/// latch completes, and no thread dereferences `ctx` after its claim
/// returns `None`.
struct Task {
    ctx: *const (),
    // SAFETY: callers must pass the trampoline monomorphised for the
    // exact closure type `ctx` points at, with `start..end` in bounds.
    run: unsafe fn(*const (), usize, usize),
    latch: ChunkLatch,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `ctx` is only dereferenced while the owning caller is blocked
// in `run_chunked`, and `run` is the matching monomorphic trampoline.
unsafe impl Send for Task {}
// SAFETY: shared access is confined to the atomics, the mutexes and
// calls through `run`, whose closure is `Sync` by `run_chunked`'s bound.
unsafe impl Sync for Task {}

impl Task {
    /// Claim and execute chunks until the index space is exhausted.
    /// Panics from `run` are captured (first wins) so the chunk still
    /// counts as finished and the caller's latch always releases.
    fn drain(&self) {
        while let Some((start, end)) = self.latch.claim() {
            let res = catch_unwind(AssertUnwindSafe(|| {
                // SAFETY: `run` is the trampoline for the closure `ctx`
                // points at, which outlives the region because the owning
                // caller blocks in `run_chunked` until the latch
                // completes; `start..end` is a claimed in-bounds chunk.
                unsafe { (self.run)(self.ctx, start, end) }
            }));
            if let Err(payload) = res {
                let mut slot = match self.panic.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            if self.latch.complete(end - start) {
                let mut g = lock(&self.done);
                *g = true;
                self.done_cv.notify_all();
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.latch.is_exhausted()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Lazy pool bring-up: spawned on the first parallel region, never at
/// width 1.
fn shared() -> &'static Arc<Shared> {
    static SHARED: OnceLock<Arc<Shared>> = OnceLock::new();
    SHARED.get_or_init(|| {
        let shared =
            Arc::new(Shared { queue: Mutex::new(VecDeque::new()), work_cv: Condvar::new() });
        for i in 1..width() {
            let sh = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("taor-rayon-{i}"))
                .spawn(move || worker_loop(&sh));
            // A failed spawn just narrows effective parallelism; the
            // caller always participates, so progress is guaranteed.
            drop(spawned);
        }
        shared
    })
}

fn worker_loop(shared: &Shared) {
    IS_WORKER.with(|w| w.set(true));
    loop {
        let task = {
            let mut q = lock(&shared.queue);
            loop {
                while q.front().is_some_and(|t| t.exhausted()) {
                    q.pop_front();
                }
                if let Some(t) = q.front() {
                    break Arc::clone(t);
                }
                q = match shared.work_cv.wait(q) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        task.drain();
    }
}

/// Execute `f(start, end)` over disjoint chunks that exactly cover
/// `0..len`, on the pool when it pays off and inline otherwise. Blocks
/// until every index has been processed; the first captured panic is
/// re-raised on the caller once all threads have left the region, so
/// borrowed closures never dangle.
pub(crate) fn run_chunked<F: Fn(usize, usize) + Sync>(len: usize, min_chunk: usize, f: F) {
    if len == 0 {
        return;
    }
    let w = width();
    // Aim for ~4 chunks per thread so late-starting workers still find
    // work, without paying per-item hand-out overhead.
    let chunk = (len.div_ceil(4 * w)).max(min_chunk).max(1);
    if w == 1 || len <= chunk || IS_WORKER.with(|x| x.get()) {
        f(0, len);
        return;
    }

    // SAFETY: callers must pass a `ctx` obtained from `&F` for this
    // exact `F`, still live for the duration of the call.
    unsafe fn trampoline<F: Fn(usize, usize)>(ctx: *const (), start: usize, end: usize) {
        // SAFETY: `ctx` was cast from `&F` below and the borrow is kept
        // alive by the caller blocking until the region completes.
        unsafe { (*(ctx as *const F))(start, end) }
    }

    let task = Arc::new(Task {
        ctx: &f as *const F as *const (),
        run: trampoline::<F>,
        latch: ChunkLatch::new(len, chunk),
        panic: Mutex::new(None),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    let sh = shared();
    {
        let mut q = lock(&sh.queue);
        q.push_back(Arc::clone(&task));
    }
    sh.work_cv.notify_all();

    // The caller is a full participant; usually it finishes the tail
    // chunk itself and the latch wait below is a no-op.
    task.drain();
    let mut done = lock(&task.done);
    while !*done {
        done = match task.done_cv.wait(done) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
    }
    drop(done);

    let payload = lock(&task.panic).take();
    if let Some(p) = payload {
        std::panic::resume_unwind(p);
    }
}
