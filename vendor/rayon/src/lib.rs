//! Vendored minimal `rayon` stand-in so the workspace builds offline.
//!
//! Exposes the rayon 1.x iterator surface this workspace uses
//! (`par_iter`, `into_par_iter`, `par_iter_mut`, `par_chunks_mut`,
//! `map`/`enumerate`/`collect`/…) as thin sequential adapters over std
//! iterators. On the current single-core target this matches what real
//! rayon degrades to at one worker thread; call sites keep the parallel
//! idiom so a future swap back to crates.io rayon is a manifest change.

/// Number of worker threads the "pool" would use (reported in bench
/// records; the sequential adapters always run on the caller).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

pub mod iter {
    /// Marker mirroring rayon's `ParallelIterator`; all adapter methods
    /// are inherent, so this exists for `use rayon::prelude::*` parity.
    pub trait ParallelIterator {}

    /// Sequential adapter wrapping a std iterator.
    pub struct Par<I>(pub(crate) I);

    impl<I> ParallelIterator for Par<I> {}

    impl<I: Iterator> Par<I> {
        pub fn map<T, F: FnMut(I::Item) -> T>(self, f: F) -> Par<std::iter::Map<I, F>> {
            Par(self.0.map(f))
        }

        pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
            Par(self.0.enumerate())
        }

        pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> Par<std::iter::Filter<I, F>> {
            Par(self.0.filter(f))
        }

        pub fn filter_map<T, F: FnMut(I::Item) -> Option<T>>(
            self,
            f: F,
        ) -> Par<std::iter::FilterMap<I, F>> {
            Par(self.0.filter_map(f))
        }

        pub fn flat_map<T, U, F>(self, f: F) -> Par<std::iter::FlatMap<I, U, F>>
        where
            U: IntoIterator<Item = T>,
            F: FnMut(I::Item) -> U,
        {
            Par(self.0.flat_map(f))
        }

        pub fn zip<J: IntoIterator>(self, other: J) -> Par<std::iter::Zip<I, J::IntoIter>> {
            Par(self.0.zip(other))
        }

        pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
            self.0.for_each(f)
        }

        pub fn collect<C: FromIterator<I::Item>>(self) -> C {
            self.0.collect()
        }

        pub fn count(self) -> usize {
            self.0.count()
        }

        pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
            self.0.sum()
        }

        pub fn reduce<ID, F>(self, identity: ID, f: F) -> I::Item
        where
            ID: Fn() -> I::Item,
            F: FnMut(I::Item, I::Item) -> I::Item,
        {
            let mut f = f;
            self.0.fold(identity(), &mut f)
        }

        pub fn max_by<F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering>(
            self,
            f: F,
        ) -> Option<I::Item> {
            self.0.max_by(f)
        }

        pub fn min_by<F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering>(
            self,
            f: F,
        ) -> Option<I::Item> {
            self.0.min_by(f)
        }

        pub fn with_min_len(self, _len: usize) -> Self {
            self
        }

        pub fn with_max_len(self, _len: usize) -> Self {
            self
        }
    }

    /// `collection.into_par_iter()`.
    pub trait IntoParallelIterator {
        type Iter;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = Par<std::vec::IntoIter<T>>;
        fn into_par_iter(self) -> Self::Iter {
            Par(self.into_iter())
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = Par<std::ops::Range<usize>>;
        fn into_par_iter(self) -> Self::Iter {
            Par(self)
        }
    }

    /// `slice.par_iter()` / `slice.par_chunks(..)`.
    pub trait IntoParallelRefIterator {
        type Item;
        #[allow(clippy::type_complexity)]
        fn par_iter(&self) -> Par<std::slice::Iter<'_, Self::Item>>;
        fn par_chunks(&self, size: usize) -> Par<std::slice::Chunks<'_, Self::Item>>;
    }

    impl<T: Sync> IntoParallelRefIterator for [T] {
        type Item = T;
        fn par_iter(&self) -> Par<std::slice::Iter<'_, T>> {
            Par(self.iter())
        }
        fn par_chunks(&self, size: usize) -> Par<std::slice::Chunks<'_, T>> {
            Par(self.chunks(size))
        }
    }

    /// `slice.par_iter_mut()` / `slice.par_chunks_mut(..)`.
    pub trait IntoParallelRefMutIterator {
        type Item;
        fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, Self::Item>>;
        fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, Self::Item>>;
    }

    impl<T: Send> IntoParallelRefMutIterator for [T] {
        type Item = T;
        fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>> {
            Par(self.iter_mut())
        }
        fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
            Par(self.chunks_mut(size))
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn adapters_behave_like_std() {
        let v = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let idx: Vec<(usize, u32)> = v.clone().into_par_iter().enumerate().collect();
        assert_eq!(idx[3], (3, 4));
        let mut w = vec![0u32; 6];
        w.par_chunks_mut(2).enumerate().for_each(|(i, c)| c.fill(i as u32));
        assert_eq!(w, vec![0, 0, 1, 1, 2, 2]);
        assert!(crate::current_num_threads() >= 1);
    }
}
