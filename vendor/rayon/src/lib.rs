//! Vendored minimal `rayon` stand-in so the workspace builds offline —
//! now backed by a real thread pool.
//!
//! Exposes the rayon 1.x iterator surface this workspace uses
//! (`par_iter`, `into_par_iter`, `par_iter_mut`, `par_chunks_mut`,
//! `map`/`enumerate`/`collect`/…) over an indexed-source abstraction:
//! every adapter chain bottoms out in a random-access producer, so the
//! terminal operation can split `0..len` into chunks and hand them to
//! the global pool (see [`mod@crate::pool`]) with atomic index
//! hand-out. Ordered operations (`collect`, `map`, `flat_map`) write
//! each index's result into its own pre-sized slot, so output order
//! always equals input order regardless of which thread ran which
//! chunk — `TAOR_THREADS=1` and `TAOR_THREADS=8` produce byte-identical
//! results for deterministic closures.
//!
//! Differences from crates.io rayon, accepted for this subset:
//! - closures need `Fn + Sync` (rayon requires the same);
//! - nested parallel calls run inline on the worker (no work stealing);
//! - a consuming iterator (`Vec::into_par_iter`) that is dropped
//!   without running a terminal operation leaks its items (never UB);
//! - `reduce`/`sum`/`min_by`/`max_by` evaluate items in parallel but
//!   fold sequentially in input order, which makes them deterministic
//!   even for non-associative (floating-point) operations.

#![deny(unsafe_op_in_unsafe_fn)]

mod pool;

/// Number of threads parallel regions actually use: the configured pool
/// width (`TAOR_THREADS` or `available_parallelism`), 1 meaning fully
/// sequential execution on the caller.
pub fn current_num_threads() -> usize {
    pool::width()
}

pub mod iter {
    use std::marker::PhantomData;
    use std::mem::MaybeUninit;

    /// A random-access producer of `len` items. The engine guarantees
    /// each index in `0..len()` is fetched at most once across all
    /// threads, which lets sources hand out `&mut` chunks or move items
    /// out of an owned buffer.
    pub trait IndexedSource: Sync {
        type Item: Send;
        fn len(&self) -> usize;
        /// # Safety
        /// Each index may be fetched at most once, and only from one
        /// thread at a time.
        unsafe fn get(&self, i: usize) -> Self::Item;
    }

    /// Marker mirroring rayon's `ParallelIterator`; all adapter methods
    /// are inherent, so this exists for `use rayon::prelude::*` parity.
    pub trait ParallelIterator {}

    /// Parallel iterator over an indexed source.
    pub struct Par<S> {
        src: S,
        min_len: usize,
    }

    impl<S> ParallelIterator for Par<S> {}

    /// Shared result buffer: each index writes its own slot exactly once.
    struct OutPtr<T>(*mut MaybeUninit<T>);
    // SAFETY: threads write disjoint slots (slot i only from the thread
    // that claimed index i), so shared `&OutPtr` access never races.
    unsafe impl<T: Send> Sync for OutPtr<T> {}

    impl<T> OutPtr<T> {
        /// # Safety
        /// `i` must be in bounds and each slot written at most once.
        unsafe fn write(&self, i: usize, value: T) {
            // SAFETY: caller keeps `i` in bounds of the allocation and
            // writes each slot at most once (no overlapping writes).
            unsafe { self.0.add(i).write(MaybeUninit::new(value)) };
        }
    }

    impl<S: IndexedSource> Par<S> {
        pub(crate) fn new(src: S) -> Self {
            Par { src, min_len: 1 }
        }

        pub fn map<T: Send, F: Fn(S::Item) -> T + Sync>(self, f: F) -> Par<MapSrc<S, F>> {
            Par { src: MapSrc { s: self.src, f }, min_len: self.min_len }
        }

        pub fn enumerate(self) -> Par<EnumSrc<S>> {
            Par { src: EnumSrc(self.src), min_len: self.min_len }
        }

        pub fn filter<F>(self, f: F) -> Groups<S, impl Fn(S::Item) -> Option<S::Item> + Sync>
        where
            F: Fn(&S::Item) -> bool + Sync,
        {
            Groups {
                src: self.src,
                f: move |x: S::Item| if f(&x) { Some(x) } else { None },
                min_len: self.min_len,
            }
        }

        pub fn filter_map<T: Send, F: Fn(S::Item) -> Option<T> + Sync>(self, f: F) -> Groups<S, F> {
            Groups { src: self.src, f, min_len: self.min_len }
        }

        pub fn flat_map<U, F>(self, f: F) -> Groups<S, F>
        where
            U: IntoIterator,
            U::Item: Send,
            F: Fn(S::Item) -> U + Sync,
        {
            Groups { src: self.src, f, min_len: self.min_len }
        }

        /// Pairs items positionally with `other` (materialised up
        /// front); the result is as long as the shorter side.
        pub fn zip<J: IntoIterator>(self, other: J) -> Par<ZipSrc<S, J::Item>>
        where
            J::Item: Send,
        {
            let buf: Vec<J::Item> = other.into_iter().collect();
            Par { src: ZipSrc { a: self.src, b: VecSrc::new(buf) }, min_len: self.min_len }
        }

        pub fn with_min_len(mut self, len: usize) -> Self {
            self.min_len = self.min_len.max(len.max(1));
            self
        }

        pub fn with_max_len(self, _len: usize) -> Self {
            self
        }

        pub fn for_each<F: Fn(S::Item) + Sync>(self, f: F) {
            let src = self.src;
            crate::pool::run_chunked(src.len(), self.min_len, |a, b| {
                for i in a..b {
                    // SAFETY: chunks are disjoint; each index fetched once.
                    f(unsafe { src.get(i) });
                }
            });
        }

        /// Ordered collect: item `i` of the source becomes item `i` of
        /// the output, whatever thread computed it.
        pub fn collect<C: FromIterator<S::Item>>(self) -> C {
            let src = self.src;
            let n = src.len();
            let mut buf: Vec<MaybeUninit<S::Item>> = Vec::with_capacity(n);
            // SAFETY: MaybeUninit slots need no initialisation.
            unsafe { buf.set_len(n) };
            let out = OutPtr(buf.as_mut_ptr());
            crate::pool::run_chunked(n, self.min_len, |a, b| {
                for i in a..b {
                    // SAFETY: slot i is written exactly once, by the one
                    // thread that claimed index i.
                    unsafe { out.write(i, src.get(i)) };
                }
            });
            // SAFETY: run_chunked returned normally, so every slot was
            // initialised (a captured panic would have re-raised above).
            buf.into_iter().map(|m| unsafe { m.assume_init() }).collect()
        }

        pub fn count(self) -> usize {
            let n = self.src.len();
            self.for_each(|item| drop(item));
            n
        }

        pub fn sum<T: std::iter::Sum<S::Item>>(self) -> T {
            self.collect::<Vec<_>>().into_iter().sum()
        }

        pub fn reduce<ID, F>(self, identity: ID, f: F) -> S::Item
        where
            ID: Fn() -> S::Item,
            F: FnMut(S::Item, S::Item) -> S::Item,
        {
            self.collect::<Vec<_>>().into_iter().fold(identity(), f)
        }

        pub fn max_by<F: FnMut(&S::Item, &S::Item) -> std::cmp::Ordering>(
            self,
            f: F,
        ) -> Option<S::Item> {
            self.collect::<Vec<_>>().into_iter().max_by(f)
        }

        pub fn min_by<F: FnMut(&S::Item, &S::Item) -> std::cmp::Ordering>(
            self,
            f: F,
        ) -> Option<S::Item> {
            self.collect::<Vec<_>>().into_iter().min_by(f)
        }
    }

    /// A parallel iterator whose per-index cardinality varies
    /// (`filter`/`filter_map`/`flat_map`): each index expands to a
    /// group, groups are computed in parallel and flattened in input
    /// order.
    pub struct Groups<S, F> {
        src: S,
        f: F,
        min_len: usize,
    }

    impl<S, F> ParallelIterator for Groups<S, F> {}

    impl<S, U, F> Groups<S, F>
    where
        S: IndexedSource,
        U: IntoIterator,
        U::Item: Send,
        F: Fn(S::Item) -> U + Sync,
    {
        fn groups(self) -> Vec<Vec<U::Item>> {
            let f = self.f;
            Par {
                src: MapSrc { s: self.src, f: move |x| f(x).into_iter().collect::<Vec<_>>() },
                min_len: self.min_len,
            }
            .collect()
        }

        pub fn collect<C: FromIterator<U::Item>>(self) -> C {
            self.groups().into_iter().flatten().collect()
        }

        pub fn for_each<G: Fn(U::Item) + Sync>(self, g: G) {
            let f = self.f;
            let src = self.src;
            crate::pool::run_chunked(src.len(), self.min_len, |a, b| {
                for i in a..b {
                    // SAFETY: chunks are disjoint; each index fetched once.
                    for item in f(unsafe { src.get(i) }) {
                        g(item);
                    }
                }
            });
        }

        pub fn count(self) -> usize {
            self.groups().into_iter().map(|g| g.len()).sum()
        }

        pub fn sum<T: std::iter::Sum<U::Item>>(self) -> T {
            self.groups().into_iter().flatten().sum()
        }
    }

    // ---- sources ------------------------------------------------------

    pub struct SliceSrc<'a, T>(&'a [T]);

    impl<'a, T: Sync> IndexedSource for SliceSrc<'a, T> {
        type Item = &'a T;
        fn len(&self) -> usize {
            self.0.len()
        }
        // SAFETY: the engine only fetches indices in `0..len()`.
        unsafe fn get(&self, i: usize) -> &'a T {
            // SAFETY: `i < self.0.len()` per the trait contract.
            unsafe { self.0.get_unchecked(i) }
        }
    }

    pub struct ChunksSrc<'a, T> {
        s: &'a [T],
        size: usize,
    }

    impl<'a, T: Sync> IndexedSource for ChunksSrc<'a, T> {
        type Item = &'a [T];
        fn len(&self) -> usize {
            self.s.len().div_ceil(self.size)
        }
        // SAFETY: the engine only fetches indices in `0..len()`.
        unsafe fn get(&self, i: usize) -> &'a [T] {
            let start = i * self.size;
            // SAFETY: `i < len()` implies `start < self.s.len()`, and the
            // end is clamped to the slice length.
            unsafe { self.s.get_unchecked(start..(start + self.size).min(self.s.len())) }
        }
    }

    pub struct SliceMutSrc<'a, T> {
        ptr: *mut T,
        len: usize,
        _marker: PhantomData<&'a mut [T]>,
    }

    // SAFETY: disjoint indices yield disjoint `&mut T`; T: Send moves
    // the references across threads safely.
    unsafe impl<T: Send> Sync for SliceMutSrc<'_, T> {}

    impl<'a, T: Send> IndexedSource for SliceMutSrc<'a, T> {
        type Item = &'a mut T;
        fn len(&self) -> usize {
            self.len
        }
        // SAFETY: each index is fetched at most once, so the `&mut T`
        // handed out per index never aliases another.
        unsafe fn get(&self, i: usize) -> &'a mut T {
            // SAFETY: `i < self.len` and the at-most-once contract makes
            // this the only live reference to element `i`.
            unsafe { &mut *self.ptr.add(i) }
        }
    }

    pub struct ChunksMutSrc<'a, T> {
        ptr: *mut T,
        len: usize,
        size: usize,
        _marker: PhantomData<&'a mut [T]>,
    }

    // SAFETY: each index denotes a disjoint sub-slice.
    unsafe impl<T: Send> Sync for ChunksMutSrc<'_, T> {}

    impl<'a, T: Send> IndexedSource for ChunksMutSrc<'a, T> {
        type Item = &'a mut [T];
        fn len(&self) -> usize {
            self.len.div_ceil(self.size)
        }
        // SAFETY: distinct indices map to disjoint sub-slices, so no two
        // fetches alias.
        unsafe fn get(&self, i: usize) -> &'a mut [T] {
            let start = i * self.size;
            let n = self.size.min(self.len - start);
            // SAFETY: `start..start + n` lies inside the original slice
            // and no other index produces an overlapping range.
            unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), n) }
        }
    }

    /// Owns a `Vec` whose items are moved out one index at a time. On
    /// drop only the allocation is freed: consumed items already moved,
    /// and unconsumed items (possible only when no terminal operation
    /// ran, or on a panic path) are leaked rather than double-dropped.
    pub struct VecSrc<T> {
        data: Vec<T>,
    }

    impl<T> VecSrc<T> {
        fn new(data: Vec<T>) -> Self {
            VecSrc { data }
        }
    }

    // SAFETY: items are only moved out under the at-most-once index
    // contract; T: Send lets them cross threads.
    unsafe impl<T: Send> Sync for VecSrc<T> {}

    impl<T: Send> IndexedSource for VecSrc<T> {
        type Item = T;
        fn len(&self) -> usize {
            self.data.len()
        }
        // SAFETY: moving item `i` out is sound because each index is
        // fetched at most once and `Drop` never re-drops items (below).
        unsafe fn get(&self, i: usize) -> T {
            // SAFETY: `i < self.data.len()` and this is the only read of
            // slot `i`; drop glue is disarmed by `set_len(0)` in Drop.
            unsafe { std::ptr::read(self.data.as_ptr().add(i)) }
        }
    }

    impl<T> Drop for VecSrc<T> {
        fn drop(&mut self) {
            // SAFETY: prevents double-drop of moved-out items; see type
            // docs for the deliberate leak on the never-consumed path.
            unsafe { self.data.set_len(0) };
        }
    }

    pub struct RangeSrc {
        start: usize,
        len: usize,
    }

    impl IndexedSource for RangeSrc {
        type Item = usize;
        fn len(&self) -> usize {
            self.len
        }
        // SAFETY: no unsafe operations; `unsafe fn` only to satisfy the
        // trait signature.
        unsafe fn get(&self, i: usize) -> usize {
            self.start + i
        }
    }

    pub struct MapSrc<S, F> {
        s: S,
        f: F,
    }

    impl<S: IndexedSource, T: Send, F: Fn(S::Item) -> T + Sync> IndexedSource for MapSrc<S, F> {
        type Item = T;
        fn len(&self) -> usize {
            self.s.len()
        }
        // SAFETY: forwards the caller's at-most-once contract to the
        // inner source unchanged.
        unsafe fn get(&self, i: usize) -> T {
            // SAFETY: same index, same contract as our own `get`.
            (self.f)(unsafe { self.s.get(i) })
        }
    }

    pub struct EnumSrc<S>(S);

    impl<S: IndexedSource> IndexedSource for EnumSrc<S> {
        type Item = (usize, S::Item);
        fn len(&self) -> usize {
            self.0.len()
        }
        // SAFETY: forwards the caller's at-most-once contract to the
        // inner source unchanged.
        unsafe fn get(&self, i: usize) -> (usize, S::Item) {
            // SAFETY: same index, same contract as our own `get`.
            (i, unsafe { self.0.get(i) })
        }
    }

    pub struct ZipSrc<S, B> {
        a: S,
        b: VecSrc<B>,
    }

    impl<S: IndexedSource, B: Send> IndexedSource for ZipSrc<S, B> {
        type Item = (S::Item, B);
        fn len(&self) -> usize {
            self.a.len().min(self.b.len())
        }
        // SAFETY: forwards the caller's at-most-once contract to both
        // inner sources, each seeing index `i` exactly once.
        unsafe fn get(&self, i: usize) -> (S::Item, B) {
            // SAFETY: `i < min(a.len, b.len)` is in bounds for both
            // sides; the at-most-once contract holds per side.
            unsafe { (self.a.get(i), self.b.get(i)) }
        }
    }

    // ---- entry points -------------------------------------------------

    /// `collection.into_par_iter()`.
    pub trait IntoParallelIterator {
        type Iter;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = Par<VecSrc<T>>;
        fn into_par_iter(self) -> Self::Iter {
            Par::new(VecSrc::new(self))
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = Par<RangeSrc>;
        fn into_par_iter(self) -> Self::Iter {
            Par::new(RangeSrc { start: self.start, len: self.end.saturating_sub(self.start) })
        }
    }

    /// `slice.par_iter()` / `slice.par_chunks(..)`.
    pub trait IntoParallelRefIterator {
        type Item;
        fn par_iter(&self) -> Par<SliceSrc<'_, Self::Item>>;
        fn par_chunks(&self, size: usize) -> Par<ChunksSrc<'_, Self::Item>>;
    }

    impl<T: Sync> IntoParallelRefIterator for [T] {
        type Item = T;
        fn par_iter(&self) -> Par<SliceSrc<'_, T>> {
            Par::new(SliceSrc(self))
        }
        fn par_chunks(&self, size: usize) -> Par<ChunksSrc<'_, T>> {
            assert!(size > 0, "chunk size must be non-zero");
            Par::new(ChunksSrc { s: self, size })
        }
    }

    /// `slice.par_iter_mut()` / `slice.par_chunks_mut(..)`.
    pub trait IntoParallelRefMutIterator {
        type Item;
        fn par_iter_mut(&mut self) -> Par<SliceMutSrc<'_, Self::Item>>;
        fn par_chunks_mut(&mut self, size: usize) -> Par<ChunksMutSrc<'_, Self::Item>>;
    }

    impl<T: Send> IntoParallelRefMutIterator for [T] {
        type Item = T;
        fn par_iter_mut(&mut self) -> Par<SliceMutSrc<'_, T>> {
            Par::new(SliceMutSrc { ptr: self.as_mut_ptr(), len: self.len(), _marker: PhantomData })
        }
        fn par_chunks_mut(&mut self, size: usize) -> Par<ChunksMutSrc<'_, T>> {
            assert!(size > 0, "chunk size must be non-zero");
            Par::new(ChunksMutSrc {
                ptr: self.as_mut_ptr(),
                len: self.len(),
                size,
                _marker: PhantomData,
            })
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    /// Item counts scaled for the interpreter: under Miri every load
    /// and store is checked, so the at-scale tests run on a small N
    /// (still enough to split across chunks) and natively on the full
    /// one.
    fn scale(n: usize) -> usize {
        if cfg!(miri) {
            n.min(512)
        } else {
            n
        }
    }

    #[test]
    fn adapters_behave_like_std() {
        let v = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let idx: Vec<(usize, u32)> = v.clone().into_par_iter().enumerate().collect();
        assert_eq!(idx[3], (3, 4));
        let mut w = vec![0u32; 6];
        w.par_chunks_mut(2).enumerate().for_each(|(i, c)| c.fill(i as u32));
        assert_eq!(w, vec![0, 0, 1, 1, 2, 2]);
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    fn ordered_collect_preserves_input_order_at_scale() {
        let n = scale(100_000usize);
        let out: Vec<usize> = (0..n).into_par_iter().map(|i| i * 3).collect();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 3));
        let squares: Vec<u64> =
            (0..n).collect::<Vec<_>>().par_iter().map(|&i| (i as u64) * (i as u64)).collect();
        let probe = n - 1;
        assert_eq!(squares[probe], (probe as u64) * (probe as u64));
    }

    #[test]
    fn flat_map_and_filters_flatten_in_order() {
        let n = scale(1000);
        let v: Vec<usize> = (0..n).collect();
        let flat: Vec<usize> = v.par_iter().flat_map(|&x| vec![x, x]).collect();
        assert_eq!(flat.len(), 2 * n);
        assert_eq!(&flat[..4], &[0, 0, 1, 1]);
        let even: Vec<usize> = v.clone().into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(even.len(), n / 2);
        assert_eq!(&even[..3], &[0, 2, 4]);
        let halves: Vec<usize> =
            v.into_par_iter().filter_map(|x| if x % 2 == 0 { Some(x / 2) } else { None }).collect();
        assert_eq!(&halves[..3], &[0, 1, 2]);
    }

    #[test]
    fn reductions_are_deterministic() {
        let v: Vec<u64> = (1..=1000).collect();
        let s: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 500_500);
        assert_eq!(v.par_iter().map(|&x| x).count(), 1000);
        let m = v.par_iter().map(|&x| x).max_by(|a, b| a.cmp(b));
        assert_eq!(m, Some(1000));
        let r = v.par_iter().map(|&x| x).reduce(|| 0, |a, b| a + b);
        assert_eq!(r, 500_500);
    }

    #[test]
    fn par_iter_mut_writes_every_item() {
        let mut v = vec![0usize; scale(10_000)];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let n = scale(1000usize);
        let caught = std::panic::catch_unwind(|| {
            (0..n).into_par_iter().for_each(|i| {
                if i == n - 383 {
                    panic!("boom at {i}");
                }
            });
        });
        assert!(caught.is_err(), "panic inside a parallel region must surface");
        // The pool must remain usable after a panicking region.
        let sum: usize = (0..100usize).into_par_iter().map(|i| i).sum();
        assert_eq!(sum, 4950);
    }
}
