//! Vendored minimal `serde` stand-in so the workspace builds offline.
//!
//! Instead of serde's visitor architecture this uses a concrete
//! [`Value`] data model: `Serialize` renders a type into a `Value` tree
//! and `Deserialize` rebuilds it from one. The companion `serde_derive`
//! proc-macro generates these impls for named-field structs and unit
//! enums (the only shapes this workspace derives), honouring
//! `#[serde(default)]` and `#[serde(skip, default = "path")]`.
//! `serde_json` (also vendored) provides the text format on top.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every type serialises into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON object). Linear lookup is fine at the
    /// field counts this workspace serialises.
    Map(Vec<(String, Value)>),
}

/// Shared serialisation/deserialisation error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Field lookup helper used by derived `Deserialize` impls.
pub fn field<'a>(map: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) if *n >= 0 => Ok(*n as $t),
                    _ => Err(Error::msg("expected unsigned integer")),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    _ => Err(Error::msg("expected integer")),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::msg("expected number")),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        items.try_into().map_err(|_| Error::msg("sequence length does not match array length"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($({
                            let _ = $n;
                            $t::from_value(it.next().ok_or_else(|| Error::msg("tuple too short"))?)?
                        },)+))
                    }
                    _ => Err(Error::msg("expected sequence for tuple")),
                }
            }
        }
    )*};
}
impl_serde_tuple!((0 A, 1 B)(0 A, 1 B, 2 C)(0 A, 1 B, 2 C, 3 D));

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
