//! Vendored minimal `serde_derive` stand-in so the workspace builds
//! offline without syn/quote.
//!
//! Supports exactly the shapes this workspace derives: named-field
//! structs and unit enums, with the field attributes `#[serde(default)]`
//! and `#[serde(skip, default = "path")]`. The input item is parsed by
//! walking the token stream directly and the impl is emitted as source
//! text parsed back into a `TokenStream`. Anything outside that subset
//! (tuple structs, generics, payload variants) becomes a
//! `compile_error!` so unsupported uses fail loudly at the derive site.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

#[derive(Debug, Clone, PartialEq)]
enum FieldDefault {
    Required,
    DefaultTrait,
    Path(String),
}

#[derive(Debug)]
struct Field {
    name: String,
    default: FieldDefault,
    skip: bool,
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<String> },
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("literal compile_error parses")
}

/// Extract `skip` / `default` / `default = "path"` flags from the bodies
/// of every `#[serde(...)]` attribute preceding a field.
fn apply_serde_args(args: TokenStream, skip: &mut bool, default: &mut FieldDefault) {
    let tokens: Vec<TokenTree> = args.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if id.to_string() == "skip" => *skip = true,
            TokenTree::Ident(id) if id.to_string() == "default" => {
                if let Some(TokenTree::Punct(p)) = tokens.get(i + 1) {
                    if p.as_char() == '=' {
                        if let Some(TokenTree::Literal(lit)) = tokens.get(i + 2) {
                            let s = lit.to_string();
                            *default = FieldDefault::Path(s.trim_matches('"').to_string());
                            i += 2;
                        }
                    } else {
                        *default = FieldDefault::DefaultTrait;
                    }
                } else {
                    *default = FieldDefault::DefaultTrait;
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// If `tokens[i]` starts an attribute (`#[...]`), return its body when it
/// is a `#[serde(...)]` attribute plus the index just past the attribute.
fn take_attr(tokens: &[TokenTree], i: usize) -> Option<(Option<TokenStream>, usize)> {
    match tokens.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.get(i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let serde_args = match (inner.first(), inner.get(1)) {
                    (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
                        if id.to_string() == "serde" =>
                    {
                        Some(args.stream())
                    }
                    _ => None,
                };
                Some((serde_args, i + 2))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Skip a `pub` / `pub(...)` visibility prefix.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_struct_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        let mut default = FieldDefault::Required;
        while let Some((serde_args, next)) = take_attr(&tokens, i) {
            if let Some(args) = serde_args {
                apply_serde_args(args, &mut skip, &mut default);
            }
            i = next;
        }
        i = skip_visibility(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => return Err(format!("unexpected token in struct body: {other}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}` (named fields only)")),
        }
        // Consume the type: everything up to the next comma outside angle
        // brackets (generic argument commas hide at positive depth, tuple
        // and array commas inside groups are atomic tokens here).
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name, default, skip });
    }
    Ok(fields)
}

fn parse_enum_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while let Some((_, next)) = take_attr(&tokens, i) {
            i = next;
        }
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                variants.push(id.to_string());
                i += 1;
            }
            None => break,
            Some(other) => return Err(format!("unexpected token in enum body: {other}")),
        }
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err("only unit enum variants are supported".to_string())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err("explicit enum discriminants are not supported".to_string())
            }
            None => break,
            Some(other) => return Err(format!("unexpected token after enum variant: {other}")),
        }
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility down to the item keyword.
    loop {
        if let Some((_, next)) = take_attr(&tokens, i) {
            i = next;
            continue;
        }
        let j = skip_visibility(&tokens, i);
        if j != i {
            i = j;
            continue;
        }
        break;
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".to_string()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected item name".to_string()),
    };
    i += 1;
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "derive on `{name}`: only brace-bodied, non-generic items are supported"
            ))
        }
    };
    match kind.as_str() {
        "struct" => Ok(Item::Struct { name, fields: parse_struct_fields(body)? }),
        "enum" => Ok(Item::Enum { name, variants: parse_enum_variants(body)? }),
        other => Err(format!("cannot derive for item kind `{other}`")),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return error(&e),
    };
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let _ = write!(
                out,
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                 let mut m: std::vec::Vec<(std::string::String, serde::Value)> = \
                 std::vec::Vec::new();\n"
            );
            for f in fields.iter().filter(|f| !f.skip) {
                let _ = write!(
                    out,
                    "m.push((std::string::String::from({n:?}), \
                     serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                );
            }
            out.push_str("serde::Value::Map(m)\n}\n}\n");
        }
        Item::Enum { name, variants } => {
            let _ = write!(
                out,
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                 serde::Value::Str(std::string::String::from(match self {{\n"
            );
            for v in &variants {
                let _ = write!(out, "{name}::{v} => {v:?},\n");
            }
            out.push_str("}))\n}\n}\n");
        }
    }
    out.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return error(&e),
    };
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let _ = write!(
                out,
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {{\n\
                 let m = match v {{\n\
                 serde::Value::Map(m) => m,\n\
                 _ => return std::result::Result::Err(serde::Error::msg(\
                 \"expected map for {name}\")),\n\
                 }};\n\
                 std::result::Result::Ok({name} {{\n"
            );
            for f in &fields {
                let n = &f.name;
                let expr = if f.skip {
                    match &f.default {
                        FieldDefault::Path(p) => format!("{p}()"),
                        _ => "std::default::Default::default()".to_string(),
                    }
                } else {
                    let missing = match &f.default {
                        FieldDefault::Required => format!(
                            "return std::result::Result::Err(serde::Error::msg(\
                             \"missing field `{n}`\"))"
                        ),
                        FieldDefault::DefaultTrait => "std::default::Default::default()".into(),
                        FieldDefault::Path(p) => format!("{p}()"),
                    };
                    format!(
                        "match serde::field(m, {n:?}) {{\n\
                         std::option::Option::Some(fv) => serde::Deserialize::from_value(fv)?,\n\
                         std::option::Option::None => {missing},\n\
                         }}"
                    )
                };
                let _ = write!(out, "{n}: {expr},\n");
            }
            out.push_str("})\n}\n}\n");
        }
        Item::Enum { name, variants } => {
            let _ = write!(
                out,
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {{\n\
                 match v {{\n\
                 serde::Value::Str(s) => match s.as_str() {{\n"
            );
            for v in &variants {
                let _ = write!(out, "{v:?} => std::result::Result::Ok({name}::{v}),\n");
            }
            let _ = write!(
                out,
                "_ => std::result::Result::Err(serde::Error::msg(\
                 \"unknown {name} variant\")),\n\
                 }},\n\
                 _ => std::result::Result::Err(serde::Error::msg(\
                 \"expected string for {name}\")),\n\
                 }}\n}}\n}}\n"
            );
        }
    }
    out.parse().expect("generated Deserialize impl parses")
}
