//! Vendored minimal `rand` stand-in so the workspace builds offline.
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`] and [`seq::SliceRandom::shuffle`]. Stream values
//! differ from upstream rand, so seeded outputs are stable within this
//! repo but not bit-compatible with crates.io rand.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random source: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1)
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types uniformly sampleable over a bounded interval.
pub trait SampleUniform: PartialOrd + Copy {
    /// Sample in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, _inclusive: bool, rng: &mut R) -> $t {
                let unit: $t = Standard::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`]. Blanket impls over
/// [`SampleUniform`] (rather than per-type impls) so a float-literal
/// range unifies with the surrounding expression's type the way
/// upstream rand's does.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_in(lo, hi, true, rng)
    }
}

/// User-facing convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = self.gen();
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty for synthetic data.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as upstream rand does for small seeds.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates, matching upstream's ordering).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = rngs::SmallRng::seed_from_u64(7);
        let mut b = rngs::SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let v: f32 = a.gen();
            assert!((0.0..1.0).contains(&v));
            let r = a.gen_range(-3i32..7);
            assert!((-3..7).contains(&r));
            let q = a.gen_range(2usize..=5);
            assert!((2..=5).contains(&q));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = rngs::SmallRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        use seq::SliceRandom;
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
