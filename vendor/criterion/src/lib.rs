//! Vendored minimal `criterion` stand-in so the workspace builds and
//! benches run offline.
//!
//! Keeps the criterion 0.5 API shape this workspace's benches use
//! (`Criterion::default().sample_size(..)`, `bench_function`,
//! `benchmark_group`, `criterion_group!`/`criterion_main!`, `black_box`,
//! `Bencher::iter`) and actually measures: each sample times a batch of
//! iterations sized to ~2 ms, and the reported line shows
//! min/median/max per-iteration time. No outlier analysis, HTML
//! reports, or baseline persistence.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(2);
const MAX_TOTAL_TIME: Duration = Duration::from_secs(3);

/// Top-level driver: holds the sample count and prints results.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self }
    }
}

/// A named group of related benchmarks (`group/function` ids).
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.criterion.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` does the measuring.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `f`, recording per-iteration nanoseconds over
    /// `sample_size` samples of auto-scaled batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: grow until one batch takes long
        // enough to time reliably.
        let mut batch: u64 = 1;
        let mut once = Duration::ZERO;
        for _ in 0..12 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            once = start.elapsed();
            if once >= TARGET_SAMPLE_TIME {
                break;
            }
            let grow = if once.is_zero() {
                16
            } else {
                (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos().max(1) + 1) as u64
            };
            batch = batch.saturating_mul(grow.clamp(2, 16)).min(1 << 24);
        }
        let budget_start = Instant::now();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / batch as f64);
            if budget_start.elapsed() > MAX_TOTAL_TIME {
                break;
            }
        }
        // `once` keeps the final warm-up timing alive for size-1 runs.
        if self.samples.is_empty() {
            self.samples.push(once.as_nanos() as f64 / batch as f64);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher { sample_size, samples: Vec::with_capacity(sample_size) };
    f(&mut b);
    let mut sorted = b.samples.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let min = sorted.first().copied().unwrap_or(0.0);
    let max = sorted.last().copied().unwrap_or(0.0);
    let median = sorted[sorted.len() / 2];
    println!("{id:<50} time: [{} {} {}]", fmt_ns(min), fmt_ns(median), fmt_ns(max));
}

/// Mirrors criterion's two `criterion_group!` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_spin(c: &mut Criterion) {
        c.bench_function("spin_sum", |b| b.iter(|| (0..100u64).map(black_box).sum::<u64>()));
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| black_box(3u64) * 7));
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = bench_spin
    }

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
