//! Vendored minimal `serde_json` stand-in so the workspace builds
//! offline. Serialises the vendored serde [`Value`] model to JSON text
//! (compact and pretty) and parses JSON back into it.
//!
//! Numbers print via Rust's shortest-roundtrip float formatting, so an
//! `f32`/`f64` survives `to_string` → `from_str` exactly. Non-finite
//! floats serialise as `null` (as upstream serde_json does) and
//! deserialise back to `NaN`.

#![forbid(unsafe_code)]

pub use serde::{Error, Value};

/// Serialise to compact JSON (`{"k":1,"s":[2,3]}`).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialise to pretty JSON with two-space indentation.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at offset {}", p.pos)));
    }
    T::from_value(&v)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => {
            let _ = std::fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::UInt(n) => {
            let _ = std::fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::Float(n) => {
            if n.is_finite() {
                // `{}` on f64 is shortest-roundtrip; add `.0` so integral
                // floats still read back as floats.
                let s = format!("{n}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b" \t\n\r".contains(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::msg(format!("unexpected character at offset {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::msg("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid UTF-8");
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::Int(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_tree() {
        let v = Value::Map(vec![
            ("table".into(), Value::UInt(2)),
            ("name".into(), Value::Str("NYU \"v\" SNS1\n".into())),
            ("acc".into(), Value::Float(0.1)),
            ("none".into(), Value::Null),
            ("seq".into(), Value::Seq(vec![Value::Int(-3), Value::Bool(true), Value::Float(2.0)])),
        ]);
        let compact = to_string(&v).unwrap();
        assert!(compact.contains("\"table\":2"));
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.1f32, -3.25, 1.0e-7, 123456.78, f32::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(back, x);
        }
    }
}
