//! Render a gallery of the synthetic datasets: one catalog view and one
//! scene crop per class, written as PPM files plus a terminal preview.
//!
//! ```text
//! cargo run --release --example dataset_gallery [-- out_dir]
//! ```

use std::io::Write;
use std::path::Path;
use taor::data::{nyu_set_subsampled, shapenet_set1, ObjectClass};
use taor::imgproc::RgbImage;

/// Write a binary PPM (P6) — viewable with any image tool, zero deps.
fn write_ppm(path: &Path, img: &RgbImage) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    write!(f, "P6\n{} {}\n255\n", img.width(), img.height())?;
    f.write_all(img.as_raw())
}

/// Coarse ASCII preview (luma ramp) for the terminal.
fn ascii_preview(img: &RgbImage, cols: u32) -> String {
    let ramp = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let rows = cols / 2;
    let mut out = String::new();
    for r in 0..rows {
        for c in 0..cols {
            let x = c * img.width() / cols;
            let y = r * img.height() / rows;
            let [red, g, b] = img.pixel(x, y);
            let luma = 0.299 * red as f32 + 0.587 * g as f32 + 0.114 * b as f32;
            out.push(ramp[(luma / 256.0 * ramp.len() as f32) as usize]);
        }
        out.push('\n');
    }
    out
}

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "gallery".to_string());
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let catalog = shapenet_set1(2019);
    let scenes = nyu_set_subsampled(2019, 2);

    println!("writing gallery to {out_dir}/\n");
    for class in ObjectClass::ALL {
        let view = catalog.of_class(class).next().expect("every class has catalog views");
        let crop = scenes.of_class(class).next().expect("every class has crops");

        let v_path =
            Path::new(&out_dir).join(format!("{}_catalog.ppm", class.name().to_lowercase()));
        let c_path = Path::new(&out_dir).join(format!("{}_scene.ppm", class.name().to_lowercase()));
        write_ppm(&v_path, &view.image).expect("write catalog view");
        write_ppm(&c_path, &crop.image).expect("write scene crop");

        println!("{} — synset {} ({})", class.name(), class.synset().id, class.synset().gloss);
        println!("{}", ascii_preview(&view.image, 40));
    }
    println!("wrote {} PPM files", 2 * ObjectClass::ALL.len());
}
