//! Train the Normalized-X-Corr network on ShapeNetSet2 pairs, evaluate on
//! the two test pair sets of §3.4, and save the weights.
//!
//! ```text
//! cargo run --release --example train_siamese            # quick config
//! cargo run --release --example train_siamese -- --full  # paper recipe
//! ```
//!
//! The paper's outcome — collapse to the majority "similar" prediction on
//! unseen pairs — is visible in the printed precision/recall blocks.

use taor::core::prelude::*;
use taor::data::{
    nyu_set_subsampled, nyu_sns1_test_pairs, shapenet_set1, shapenet_set2, sns1_test_pairs,
};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let seed = 2019;
    let cfg = if full { SiameseConfig::default() } else { SiameseConfig::quick() };
    println!(
        "training Normalized-X-Corr: {} pairs, {}x{} inputs, <= {} epochs (lr {}, decay {})",
        cfg.n_train_pairs,
        cfg.net.width,
        cfg.net.height,
        cfg.train.max_epochs,
        cfg.train.learning_rate,
        cfg.train.decay,
    );

    let sns2 = shapenet_set2(seed);
    let (net, report) = train_siamese(&sns2, &cfg, |s| {
        println!("  epoch {:>3}  loss {:.5}  train-acc {:.3}", s.epoch, s.mean_loss, s.accuracy);
    });
    println!(
        "training finished after {} epochs (early stop: {})",
        report.epochs.len(),
        report.early_stopped
    );

    // Save the trained model.
    let path = "siamese_model.json";
    std::fs::write(path, net.to_json()).expect("writable cwd");
    println!("saved weights to {path}");

    // Evaluate on both §3.4 test sets.
    let sns1 = shapenet_set1(seed);
    let nyu = nyu_set_subsampled(seed, 12);
    let sets = [
        ("ShapeNetSet1 pairs", sns1_test_pairs(&sns1)),
        ("NYU+ShapeNetSet1 pairs", nyu_sns1_test_pairs(&nyu, &sns1, seed)),
    ];
    for (name, pairs) in sets {
        let eval = evaluate_siamese(&net, &pairs, &cfg.net);
        println!("\n{name} ({} pairs):", pairs.len());
        println!(
            "  similar    P {:.2}  R {:.2}  F1 {:.2}  support {}",
            eval.similar.precision, eval.similar.recall, eval.similar.f1, eval.similar.support
        );
        println!(
            "  dissimilar P {:.2}  R {:.2}  F1 {:.2}  support {}",
            eval.dissimilar.precision,
            eval.dissimilar.recall,
            eval.dissimilar.f1,
            eval.dissimilar.support
        );
        if eval.similar.recall > 0.95 && eval.dissimilar.recall < 0.05 {
            println!(
                "  -> collapsed to the majority \"similar\" class (the paper's Table 4 failure)"
            );
        }
    }
}
