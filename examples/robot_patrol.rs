//! A simulated mobile-robot patrol: the motivating scenario of the paper
//! (semantic mapping / health-and-safety inspection with HanS-like
//! robots).
//!
//! The robot visits a sequence of "rooms", each containing a few objects.
//! Every sighting is segmented (black-mask crop), classified against the
//! ShapeNet catalog, and — because ShapeNet labels are WordNet synsets —
//! grounded into a concept map: the task-agnostic knowledge-acquisition
//! loop the paper argues for.
//!
//! ```text
//! cargo run --release --example robot_patrol
//! ```

use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use taor::core::prelude::*;
use taor::data::{render_scene_crop, sample_model, shapenet_set1, ObjectClass};

/// One room of the patrol route.
struct Room {
    name: &'static str,
    objects: Vec<ObjectClass>,
}

fn patrol_route() -> Vec<Room> {
    vec![
        Room {
            name: "office",
            objects: vec![
                ObjectClass::Chair,
                ObjectClass::Table,
                ObjectClass::Paper,
                ObjectClass::Lamp,
                ObjectClass::Book,
            ],
        },
        Room {
            name: "kitchen",
            objects: vec![ObjectClass::Bottle, ObjectClass::Table, ObjectClass::Window],
        },
        Room {
            name: "lounge",
            objects: vec![
                ObjectClass::Sofa,
                ObjectClass::Lamp,
                ObjectClass::Door,
                ObjectClass::Box,
            ],
        },
    ]
}

fn main() {
    let seed = 2019u64;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);

    // Reference catalog, preprocessed once at robot start-up.
    let catalog = shapenet_set1(seed);
    let refs = prepare_views(&catalog, Background::White);
    let hybrid = HybridConfig::default();

    let mut semantic_map: BTreeMap<&'static str, Vec<(String, &'static str)>> = BTreeMap::new();
    let mut correct = 0usize;
    let mut total = 0usize;

    for room in patrol_route() {
        println!("\n== entering {} ==", room.name);
        for &truth in &room.objects {
            // The robot sees a fresh instance of the class under room
            // lighting, segments it, and classifies the crop.
            let model = sample_model(truth, &mut rng);
            let crop = render_scene_crop(&model, &mut rng);
            let query = RefView {
                class: truth,
                model_id: 0,
                feat: preprocess(&crop, Background::Black, HIST_BINS),
            };
            let pred = classify_hybrid(
                std::slice::from_ref(&query),
                &refs,
                &hybrid,
                Aggregation::WeightedSum,
            )[0];

            total += 1;
            let ok = pred == truth;
            if ok {
                correct += 1;
            }
            // Ground the recognised entity in the synset graph.
            let synset = pred.synset();
            println!(
                "  saw a {:<7} -> recognised {:<7} {}  [{} -> {}]",
                truth.name(),
                pred.name(),
                if ok { "ok " } else { "MISS" },
                synset.id,
                synset.hypernyms.join(" -> "),
            );
            semantic_map
                .entry(room.name)
                .or_default()
                .push((pred.name().to_string(), synset.hypernyms[0]));
        }
        // A health-and-safety rule over the grounded concepts (the HanS
        // use case [2] the paper cites): flag rooms whose doorway area
        // might be blocked.
        let blockers = room
            .objects
            .iter()
            .filter(|c| matches!(c, ObjectClass::Box | ObjectClass::Chair))
            .count();
        if blockers > 0 && room.objects.contains(&ObjectClass::Door) {
            println!("  [H&S] potential obstruction near the door ({blockers} movable objects)");
        }
    }

    println!("\n== semantic map ==");
    for (room, entries) in &semantic_map {
        let summary: Vec<String> =
            entries.iter().map(|(name, hyper)| format!("{name}({hyper})")).collect();
        println!("  {room}: {}", summary.join(", "));
    }
    println!(
        "\npatrol recognition rate: {}/{} = {:.2}",
        correct,
        total,
        correct as f64 / total as f64
    );

    // Seeded rng: a rerun reproduces the identical patrol.
    let _ = rng.gen::<u32>();
}
