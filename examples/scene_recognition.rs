//! End-to-end scene recognition: segment whole robot frames, classify
//! every region, and measure the segmentation error propagation the
//! paper's controlled experiments excluded.
//!
//! ```text
//! cargo run --release --example scene_recognition [-- n_frames]
//! ```

use taor::core::prelude::*;
use taor::data::{patrol_frames, shapenet_set1};

fn main() {
    let n_frames: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(6);
    let seed = 2019;

    // Reference catalog + the paper's best hybrid configuration.
    let refs = prepare_views(&shapenet_set1(seed), Background::White);
    let hybrid = HybridConfig::default();
    let classify = |crop: &taor::imgproc::RgbImage| {
        let q = RefView {
            class: taor::data::ObjectClass::Chair, // unused placeholder
            model_id: 0,
            feat: preprocess(crop, Background::Black, HIST_BINS),
        };
        classify_hybrid(std::slice::from_ref(&q), &refs, &hybrid, Aggregation::WeightedSum)[0]
    };

    let seg_cfg = SegmentConfig::default();
    let mut agg = SceneEvaluation::default();

    println!("patrolling {n_frames} simulated frames...\n");
    for (i, scene) in patrol_frames(seed, n_frames).iter().enumerate() {
        let detections = recognise_frame(&scene.image, &seg_cfg, classify);
        let eval = evaluate_scene(scene, &detections);
        print!("frame {i}: {} objects -> ", scene.objects.len());
        for det in &detections {
            print!("{}@({},{}) ", det.class.name(), det.bbox.x, det.bbox.y);
        }
        println!(
            "\n         detected {}/{}, correct {}",
            eval.detected, eval.total_objects, eval.correctly_classified
        );
        agg.total_objects += eval.total_objects;
        agg.detected += eval.detected;
        agg.correctly_classified += eval.correctly_classified;
        agg.false_positives += eval.false_positives;
    }

    println!("\n== segmentation error propagation ==");
    println!("detection rate (IoU >= 0.3):   {:.3}", agg.detection_rate());
    println!("classification | detected:     {:.3}", agg.classification_rate());
    println!("end-to-end recall:             {:.3}", agg.end_to_end_rate());
    println!("false positives per frame:     {:.2}", agg.false_positives as f64 / n_frames as f64);
    println!(
        "\nThe gap between 'classification | detected' and the controlled-crop\n\
         accuracy of the paper's Table 2 is exactly the segmentation fault\n\
         propagation the paper set out to exclude (§3.2)."
    );
}
