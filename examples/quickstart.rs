//! Quickstart: classify synthetic "robot camera" crops against ShapeNet
//! catalog views with the paper's best hybrid pipeline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use taor::core::prelude::*;
use taor::data::{nyu_set_subsampled, shapenet_set1};

fn main() {
    // 1. Build the reference catalog: ShapeNetSet1, 82 clean 2-D views on
    //    a white background (Table 1 cardinalities).
    let catalog = shapenet_set1(2019);
    println!("catalog: {} views across 10 classes", catalog.len());

    // 2. Simulate segmented crops a mobile robot would produce: black
    //    mask, pose and lighting jitter, occasional occlusion.
    let crops = nyu_set_subsampled(2019, 10);
    println!("queries: {} segmented crops", crops.len());

    // 3. Preprocess both sides with the paper's 4-step pipeline:
    //    grayscale -> threshold (or inverse) -> contours -> crop.
    let refs = prepare_views(&catalog, Background::White);
    let queries = prepare_views(&crops, Background::Black);

    // 4. Classify with the hybrid Hu-L3 + Hellinger scorer at the paper's
    //    alpha = 0.3 / beta = 0.7 weighting.
    let preds =
        classify_hybrid(&queries, &refs, &HybridConfig::default(), Aggregation::WeightedSum);

    // 5. Evaluate and report.
    let truth = truth_of(&queries);
    let eval = evaluate(&truth, &preds);
    println!("\ncumulative accuracy: {:.3} (random baseline: 0.100)", eval.cumulative_accuracy);
    println!("\nper-class recall:");
    for (class, m) in taor::data::ObjectClass::ALL.iter().zip(&eval.per_class) {
        println!("  {:<7} {:.2}  (support {})", class.name(), m.recall, m.support);
    }
}
