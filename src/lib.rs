//! # taor — Task-Agnostic Object Recognition
//!
//! A full-Rust reproduction of Chiatti et al., *Exploring Task-agnostic,
//! ShapeNet-based Object Recognition for Mobile Robots* (Workshops of the
//! EDBT/ICDT 2019 Joint Conference).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`imgproc`] — image substrate (contours, Hu moments, histograms, …),
//! * [`features`] — SIFT / SURF / ORB and matchers,
//! * [`nn`] — the CPU deep-learning framework with the Normalized-X-Corr
//!   layer,
//! * [`data`] — synthetic ShapeNet/NYU stand-ins (Table 1 cardinalities),
//! * [`core`] — the five recognition pipelines, evaluation and reports.
//!
//! See `examples/quickstart.rs` for a guided tour and
//! `cargo run -p taor-bench --release --bin repro` to regenerate every
//! table of the paper.

#![forbid(unsafe_code)]

pub use taor_core as core;
pub use taor_data as data;
pub use taor_features as features;
pub use taor_imgproc as imgproc;
pub use taor_nn as nn;

/// Workspace version, from the root manifest.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        let _ = crate::data::ObjectClass::ALL;
        assert_eq!(crate::VERSION, env!("CARGO_PKG_VERSION"));
    }
}
