//! Bench: end-to-end classification cost per query for every pipeline
//! family — the on-board-installation scalability question the paper
//! raises ("more scalable solutions also represent a more suitable
//! alternative for mobile robot on-board installation").

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use taor_core::prelude::*;
use taor_data::{nyu_set_subsampled, shapenet_set1};

fn bench_pipelines(c: &mut Criterion) {
    let refs = prepare_views(&shapenet_set1(2019), Background::White);
    let crops = nyu_set_subsampled(2019, 2);
    let queries = prepare_views(&crops, Background::Black);
    let query = std::slice::from_ref(&queries[0]);

    let mut g = c.benchmark_group("classify_one_query_vs_82_views");
    let shape = ShapeScorer::ALL[2];
    g.bench_function("shape_L3", |b| b.iter(|| classify_per_view(black_box(query), &refs, &shape)));
    let color = ColorScorer::ALL[3];
    g.bench_function("color_hellinger", |b| {
        b.iter(|| classify_per_view(black_box(query), &refs, &color))
    });
    let hybrid = HybridConfig::default();
    g.bench_function("hybrid_weighted_sum", |b| {
        b.iter(|| classify_hybrid(black_box(query), &refs, &hybrid, Aggregation::WeightedSum))
    });
    g.finish();

    // Descriptor pipeline cost (query extraction amortised out).
    let q_idx = extract_index(&crops, DescriptorKind::Orb);
    let r_idx = extract_index(&shapenet_set1(2019), DescriptorKind::Orb);
    c.bench_function("orb_classify_20_queries", |b| {
        b.iter(|| classify_descriptors(black_box(&q_idx), &r_idx, 0.5))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipelines
}
criterion_main!(benches);
