//! Ablation bench: the three `matchShapes` distance variants (the paper's
//! shape-only L1/L2/L3 rows differ only in this kernel), plus moment
//! extraction itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use taor_data::{shapenet_set1, ObjectClass};
use taor_imgproc::prelude::*;

fn bench_hu(c: &mut Criterion) {
    let ds = shapenet_set1(2019);
    let gray = rgb_to_gray(&ds.images[0].image);
    let bin = threshold_binary_inv(&gray, 245);
    let contours = find_contours(&bin);
    let contour = largest_contour(&contours).expect("object present");
    let hu_a = hu_moments(&moments_of_contour(contour));

    let other = rgb_to_gray(&ds.of_class(ObjectClass::Sofa).next().unwrap().image);
    let bin_b = threshold_binary_inv(&other, 245);
    let contours_b = find_contours(&bin_b);
    let hu_b = hu_moments(&moments_of_contour(largest_contour(&contours_b).unwrap()));

    c.bench_function("contour_moments_96px", |b| b.iter(|| moments_of_contour(black_box(contour))));
    c.bench_function("raster_moments_96px", |b| b.iter(|| moments(black_box(&bin), true)));

    let mut g = c.benchmark_group("match_shapes");
    for (name, mode) in
        [("I1", MatchShapesMode::I1), ("I2", MatchShapesMode::I2), ("I3", MatchShapesMode::I3)]
    {
        g.bench_function(name, |b| {
            b.iter(|| match_shapes(black_box(&hu_a), black_box(&hu_b), mode))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hu
}
criterion_main!(benches);
