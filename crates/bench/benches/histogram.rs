//! Ablation bench: histogram bin count (8/16/32/64 per channel) and the
//! four comparison metrics of the colour-only pipeline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use taor_data::shapenet_set1;
use taor_imgproc::prelude::*;

fn bench_histograms(c: &mut Criterion) {
    let ds = shapenet_set1(2019);
    let img_a = &ds.images[0].image;
    let img_b = &ds.images[50].image;

    let mut g = c.benchmark_group("rgb_histogram_bins");
    for bins in [8usize, 16, 32, 64] {
        g.bench_function(format!("{bins}"), |b| {
            b.iter(|| rgb_histogram(black_box(img_a), bins).unwrap())
        });
    }
    g.finish();

    let ha = rgb_histogram(img_a, 32).unwrap();
    let hb = rgb_histogram(img_b, 32).unwrap();
    let mut g = c.benchmark_group("compare_hist");
    for metric in HistCompare::ALL {
        g.bench_function(metric.name(), |b| {
            b.iter(|| compare_hist(black_box(&ha), black_box(&hb), metric).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_histograms
}
criterion_main!(benches);
