//! Bench: the blocked GEMM kernel against the seed's naive ikj loop.
//!
//! The 256×1024×256 shape is the acceptance pin for the kernel overhaul:
//! the blocked kernel must hold ≥ 3× over the naive reference there. The
//! smaller shapes track the sizes the conv/dense layers actually emit.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use taor_nn::gemm::{gemm_nn, gemm_nt, gemm_tn, matmul_naive};

fn fill(len: usize, seed: u32) -> Vec<f32> {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 8) as f32 / (1u32 << 23) as f32 - 1.0
        })
        .collect()
}

fn bench_gemm(c: &mut Criterion) {
    for &(m, n, k) in &[(256usize, 1024usize, 256usize), (64, 240, 75), (128, 128, 128)] {
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let mut out = vec![0.0f32; m * n];
        let mut g = c.benchmark_group(format!("gemm_{m}x{n}x{k}"));
        g.bench_function("blocked", |bch| {
            bch.iter(|| gemm_nn(m, n, k, black_box(&a), black_box(&b), &mut out, false))
        });
        g.bench_function("naive", |bch| {
            bch.iter(|| matmul_naive(m, n, k, black_box(&a), black_box(&b), &mut out))
        });
        g.finish();
    }

    // Transposed-operand entry points at a backward-pass-like shape.
    let (m, n, k) = (256usize, 256usize, 1024usize);
    let a = fill(m * k, 3);
    let bt = fill(n * k, 4);
    let at = fill(k * m, 5);
    let b = fill(k * n, 6);
    let mut out = vec![0.0f32; m * n];
    let mut g = c.benchmark_group("gemm_transposed_256x256x1024");
    g.bench_function("nt", |bch| {
        bch.iter(|| gemm_nt(m, n, k, black_box(&a), black_box(&bt), &mut out, false))
    });
    g.bench_function("tn", |bch| {
        bch.iter(|| gemm_tn(m, n, k, black_box(&at), black_box(&b), &mut out, false))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gemm
}
criterion_main!(benches);
