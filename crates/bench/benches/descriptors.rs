//! Bench: SIFT vs SURF vs ORB extraction cost — the scalability argument
//! of §3.3 ("SURF was originally conceived for providing a more scalable
//! alternative to SIFT"; ORB "an efficient alternative to SIFT or SURF").

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use taor_data::shapenet_set1;
use taor_features::{
    orb_detect_and_compute, sift_detect_and_compute, surf_detect_and_compute, OrbParams,
    SiftParams, SurfParams,
};
use taor_imgproc::color::rgb_to_gray;

fn bench_descriptors(c: &mut Criterion) {
    let ds = shapenet_set1(2019);
    let gray = rgb_to_gray(&ds.images[0].image);

    let mut g = c.benchmark_group("detect_and_compute_96px");
    g.bench_function("SIFT", |b| {
        b.iter(|| sift_detect_and_compute(black_box(&gray), &SiftParams::default()).unwrap())
    });
    g.bench_function("SURF", |b| {
        b.iter(|| surf_detect_and_compute(black_box(&gray), &SurfParams::default()).unwrap())
    });
    g.bench_function("ORB", |b| {
        b.iter(|| orb_detect_and_compute(black_box(&gray), &OrbParams::default()).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_descriptors
}
criterion_main!(benches);
