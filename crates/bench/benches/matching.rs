//! Bench: brute-force vs kd-tree (FLANN stand-in) matching.
//!
//! §3.3: "Using FLANN-based matching for optimised nearest neighbour
//! search did not lead to any performance gains, compared to the
//! brute-force approach, most likely due to the fairly limited size of
//! the input datasets." This bench shows the crossover: at the paper's
//! reference-set sizes (~10² descriptors) brute force wins; the tree only
//! pays off orders of magnitude later.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use taor_features::kdtree::KdTree;
use taor_features::{
    knn_match_binary, knn_match_binary_naive, knn_match_float, knn_match_float_naive,
    BinaryDescriptors, FloatDescriptors,
};

fn random_descs(n: usize, w: usize, seed: u64) -> FloatDescriptors {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut d = FloatDescriptors::new(w);
    let mut row = vec![0.0f32; w];
    for _ in 0..n {
        for v in &mut row {
            *v = rng.gen_range(-1.0..1.0);
        }
        d.push(&row);
    }
    d
}

fn random_bdescs(n: usize, w: usize, seed: u64) -> BinaryDescriptors {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut d = BinaryDescriptors::new(w);
    let mut row = vec![0u8; w];
    for _ in 0..n {
        for v in &mut row {
            *v = rng.gen_range(0..=u8::MAX);
        }
        d.push(&row);
    }
    d
}

/// Pins for the fast matcher kernels against their retained naive oracles,
/// at the PR's reference shape: 512 queries × 512 train rows. The GEMM-
/// backed L2 path (D=128, SIFT width) must hold ≥1.5× over the naive loop
/// on a single thread; the word-packed Hamming path (32 bytes, ORB width)
/// is pinned alongside. `norms_sq`/`packed_words` caches are warmed before
/// the naive timings too, so the comparison isolates the kernels.
fn bench_matcher_pins(c: &mut Criterion) {
    let query = random_descs(512, 128, 11);
    let train = random_descs(512, 128, 12);
    let _ = (query.norms_sq(), train.norms_sq());
    let mut g = c.benchmark_group("pin_l2_512x512_d128");
    g.bench_function("gemm", |b| {
        b.iter(|| knn_match_float(black_box(&query), black_box(&train)).unwrap())
    });
    g.bench_function("naive", |b| {
        b.iter(|| knn_match_float_naive(black_box(&query), black_box(&train)).unwrap())
    });
    g.finish();

    let bquery = random_bdescs(512, 32, 13);
    let btrain = random_bdescs(512, 32, 14);
    let _ = (bquery.packed_words(), btrain.packed_words());
    let mut g = c.benchmark_group("pin_hamming_512x512_256bit");
    g.bench_function("words", |b| {
        b.iter(|| knn_match_binary(black_box(&bquery), black_box(&btrain)).unwrap())
    });
    g.bench_function("naive", |b| {
        b.iter(|| knn_match_binary_naive(black_box(&bquery), black_box(&btrain)).unwrap())
    });
    g.finish();
}

/// Pins for the sub-linear gallery indexes at a past-the-crossover scale
/// (8,192 gallery rows): a single HNSW query must beat the brute L2 scan
/// and a single MIH query must beat the brute Hamming scan. Both pins
/// time pure lookups — the index is built once outside the loop. The MIH
/// pin is the nearest-gallery-view lookup (k = 1) for a lightly corrupted
/// gallery row — the near-duplicate serving workload, as in `bench_ann`:
/// MIH's pigeonhole stop fires once the kth kept distance drops below
/// m·(r+1), so it is fast exactly when the answer set is close. On
/// uniformly random codes every neighbour sits ~93+ bits away and the
/// radius sweep enumerates more keys than the brute scan visits rows;
/// real galleries cluster (neighbouring views of one model), which is
/// what `bench_ann`'s k = 10 run exercises.
fn bench_ann_pins(c: &mut Criterion) {
    use taor_features::{
        exact_knn_binary, exact_knn_float, HnswIndex, HnswParams, MihIndex, MihParams,
    };

    let train = random_descs(8192, 64, 21);
    let query = random_descs(1, 64, 22);
    let hnsw = HnswIndex::build(train.clone(), HnswParams::default()).unwrap();
    let mut g = c.benchmark_group("pin_hnsw_query");
    g.bench_function("hnsw", |b| b.iter(|| hnsw.search(black_box(query.row(0)), 10)));
    g.bench_function("brute", |b| {
        b.iter(|| exact_knn_float(black_box(query.row(0)), black_box(&train), 10))
    });
    g.finish();

    let btrain = random_bdescs(8192, 32, 23);
    let mut qcode: Vec<u8> = btrain.row(4096).to_vec();
    for bit in [7usize, 64, 131, 250] {
        qcode[bit / 8] ^= 1 << (bit % 8);
    }
    let _ = btrain.packed_words();
    let qwords: Vec<u64> = qcode
        .chunks(8)
        .map(|chunk| {
            let mut bytes = [0u8; 8];
            bytes[..chunk.len()].copy_from_slice(chunk);
            u64::from_le_bytes(bytes)
        })
        .collect();
    let mih = MihIndex::build(btrain.clone(), MihParams::default()).unwrap();
    let mut g = c.benchmark_group("pin_mih_query");
    g.bench_function("mih", |b| b.iter(|| mih.search_words(black_box(&qwords), 1)));
    g.bench_function("brute", |b| {
        b.iter(|| exact_knn_binary(black_box(&qwords), black_box(&btrain), 1))
    });
    g.finish();
}

fn bench_matching(c: &mut Criterion) {
    let query = random_descs(50, 64, 1);
    for train_n in [100usize, 1000, 10000] {
        let train = random_descs(train_n, 64, 2);
        let mut g = c.benchmark_group(format!("match_50q_vs_{train_n}"));
        g.bench_function("brute_force", |b| {
            b.iter(|| knn_match_float(black_box(&query), black_box(&train)).unwrap())
        });
        g.bench_function("kdtree_c32", |b| {
            let tree = KdTree::build(&train, 32).unwrap();
            b.iter(|| tree.knn_match(black_box(&query)).unwrap())
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matcher_pins, bench_ann_pins, bench_matching
}
criterion_main!(benches);
