//! Bench: brute-force vs kd-tree (FLANN stand-in) matching.
//!
//! §3.3: "Using FLANN-based matching for optimised nearest neighbour
//! search did not lead to any performance gains, compared to the
//! brute-force approach, most likely due to the fairly limited size of
//! the input datasets." This bench shows the crossover: at the paper's
//! reference-set sizes (~10² descriptors) brute force wins; the tree only
//! pays off orders of magnitude later.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use taor_features::kdtree::KdTree;
use taor_features::{knn_match_float, FloatDescriptors};

fn random_descs(n: usize, w: usize, seed: u64) -> FloatDescriptors {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut d = FloatDescriptors::new(w);
    let mut row = vec![0.0f32; w];
    for _ in 0..n {
        for v in &mut row {
            *v = rng.gen_range(-1.0..1.0);
        }
        d.push(&row);
    }
    d
}

fn bench_matching(c: &mut Criterion) {
    let query = random_descs(50, 64, 1);
    for train_n in [100usize, 1000, 10000] {
        let train = random_descs(train_n, 64, 2);
        let mut g = c.benchmark_group(format!("match_50q_vs_{train_n}"));
        g.bench_function("brute_force", |b| {
            b.iter(|| knn_match_float(black_box(&query), black_box(&train)).unwrap())
        });
        g.bench_function("kdtree_c32", |b| {
            let tree = KdTree::build(&train, 32).unwrap();
            b.iter(|| tree.knn_match(black_box(&query)).unwrap())
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matching
}
criterion_main!(benches);
