//! Bench: the preprocessing substrate — thresholding, contour tracing and
//! the full 4-step crop pipeline of §3.2.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use taor_core::prelude::*;
use taor_data::{nyu_set_subsampled, shapenet_set1};
use taor_imgproc::prelude::*;

fn bench_contours(c: &mut Criterion) {
    let catalog = shapenet_set1(2019);
    let scenes = nyu_set_subsampled(2019, 2);
    let white = &catalog.images[0].image;
    let black = &scenes.images[0].image;
    let gray = rgb_to_gray(white);
    let bin = threshold_binary_inv(&gray, 245);

    c.bench_function("threshold_96px", |b| b.iter(|| threshold_binary_inv(black_box(&gray), 245)));
    c.bench_function("find_contours_96px", |b| b.iter(|| find_contours(black_box(&bin))));
    c.bench_function("preprocess_catalog", |b| {
        b.iter(|| preprocess(black_box(white), Background::White, HIST_BINS))
    });
    c.bench_function("preprocess_scene", |b| {
        b.iter(|| preprocess(black_box(black), Background::Black, HIST_BINS))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_contours
}
criterion_main!(benches);
