//! Bench: the extension pipeline — room rendering, foreground masking,
//! full-frame segmentation and the robot's per-frame recognition budget
//! (the on-board-cost question the paper raises for mobile deployment).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use taor_core::prelude::*;
use taor_data::{render_room, shapenet_set1, ObjectClass};

fn bench_scene(c: &mut Criterion) {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(2019);
    let scene = render_room(&[ObjectClass::Chair, ObjectClass::Table, ObjectClass::Lamp], &mut rng);
    let seg_cfg = SegmentConfig::default();

    c.bench_function("render_room_3_objects", |b| {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        b.iter(|| {
            render_room(
                black_box(&[ObjectClass::Chair, ObjectClass::Table, ObjectClass::Lamp]),
                &mut rng,
            )
        })
    });
    c.bench_function("foreground_mask_320x200", |b| {
        b.iter(|| foreground_mask(black_box(&scene.image), &seg_cfg))
    });
    c.bench_function("segment_frame_320x200", |b| {
        b.iter(|| segment_frame(black_box(&scene.image), &seg_cfg))
    });

    // Whole-frame recognition (segmentation + hybrid classification).
    let refs = prepare_views(&shapenet_set1(2019), Background::White);
    let hybrid = HybridConfig::default();
    c.bench_function("recognise_frame_vs_82_views", |b| {
        b.iter(|| {
            recognise_frame(black_box(&scene.image), &seg_cfg, |crop| {
                let q = RefView {
                    class: ObjectClass::Chair,
                    model_id: 0,
                    feat: preprocess(crop, Background::Black, HIST_BINS),
                };
                classify_hybrid(std::slice::from_ref(&q), &refs, &hybrid, Aggregation::WeightedSum)
                    [0]
            })
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scene
}
criterion_main!(benches);
