//! Bench: one full batched training step (forward + loss + backward) at
//! the medium-mode network shapes and the trainer's B = 16 batch — the
//! perf pin behind the Table-4 batching work. A regression here is a
//! regression in every trained table's wall time.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use taor_nn::layers::softmax_cross_entropy_rows;
use taor_nn::{NetConfig, NormXCorrNet, Tensor};

fn bench_train_step(c: &mut Criterion) {
    let cfg = NetConfig {
        height: 32,
        width: 24,
        c1: 8,
        c2: 10,
        c3: 10,
        dense: 32,
        ..NetConfig::default()
    };
    let net = NormXCorrNet::new(cfg).expect("bench config is large enough");
    let b = 16usize;
    let len = b * 3 * 32 * 24;
    let a = Tensor::from_vec(&[b, 3, 32, 24], (0..len).map(|i| (i as f32 * 0.013).sin()).collect())
        .unwrap();
    let bt =
        Tensor::from_vec(&[b, 3, 32, 24], (0..len).map(|i| (i as f32 * 0.031).cos()).collect())
            .unwrap();
    let labels: Vec<usize> = (0..b).map(|i| i % 2).collect();
    let seeds: Vec<u64> = (0..b as u64).collect();

    c.bench_function("pin_train_step_b16", |bch| {
        bch.iter(|| {
            let (logits, cache) =
                net.forward_batch(black_box(&a), black_box(&bt), Some(&seeds)).unwrap();
            let (_, grad) = softmax_cross_entropy_rows(&logits, &labels).unwrap();
            let mut g = net.zero_grads();
            net.backward_batch(&cache, &grad, &mut g).unwrap();
            g
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_train_step
}
criterion_main!(benches);
