//! Bench: pruned, tiled match-matrix classification vs the seed's
//! unpruned scan.
//!
//! `classify_per_view` walks the full query × reference distance matrix.
//! The overhauled kernel tiles the reference set and passes each query's
//! running best as an early-abandon bound to `score_bounded`, which lets
//! the monotone metrics (Hu L1/L2/L3, chi-square) stop mid-accumulation.
//! This bench pins both paths on the canonical SNS1-v-SNS2 task so the
//! pruning win stays visible in the perf trajectory.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use taor_core::pipeline::{classify_per_view, prepare_views, MatchScorer, RefView};
use taor_core::preprocess::Background;
use taor_core::{ColorScorer, ShapeScorer};
use taor_data::{shapenet_set1, shapenet_set2, ObjectClass};
use taor_imgproc::histogram::HistCompare;
use taor_imgproc::moments::MatchShapesMode;

/// The seed's semantics: plain first-seen argmin, full `score` per pair.
fn classify_unpruned(
    queries: &[RefView],
    views: &[RefView],
    scorer: &dyn MatchScorer,
) -> Vec<ObjectClass> {
    queries
        .iter()
        .map(|q| {
            let mut best = f64::INFINITY;
            let mut best_class = views[0].class;
            for v in views {
                let s = scorer.score(&q.feat, &v.feat);
                if s < best {
                    best = s;
                    best_class = v.class;
                }
            }
            best_class
        })
        .collect()
}

fn bench_scoring(c: &mut Criterion) {
    let q = prepare_views(&shapenet_set1(2019), Background::White);
    let r = prepare_views(&shapenet_set2(2019), Background::White);

    let scorers: Vec<(&str, Box<dyn MatchScorer>)> = vec![
        ("hu_l3", Box::new(ShapeScorer { mode: MatchShapesMode::I3 })),
        ("chi_square", Box::new(ColorScorer { metric: HistCompare::ChiSquare })),
        // Hellinger cannot prune (it normalises by histogram totals);
        // it pins the tiled loop's overhead on the fallback path.
        ("hellinger", Box::new(ColorScorer { metric: HistCompare::Hellinger })),
    ];
    for (name, scorer) in &scorers {
        let mut g = c.benchmark_group(format!("classify_sns1_v_sns2/{name}"));
        g.bench_function("pruned", |b| {
            b.iter(|| classify_per_view(black_box(&q), black_box(&r), scorer.as_ref()))
        });
        g.bench_function("unpruned", |b| {
            b.iter(|| classify_unpruned(black_box(&q), black_box(&r), scorer.as_ref()))
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scoring
}
criterion_main!(benches);
