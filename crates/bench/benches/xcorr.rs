//! Bench: the Normalized-X-Corr layer — forward, backward, and the full
//! network pass, across displacement radii (the layer's cost knob).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use taor_nn::{NetConfig, NormXCorr, NormXCorrNet, Tensor};

fn bench_xcorr(c: &mut Criterion) {
    let a = Tensor::from_vec(&[1, 8, 10, 10], (0..800).map(|i| (i as f32 * 0.37).sin()).collect())
        .unwrap();
    let b = Tensor::from_vec(&[1, 8, 10, 10], (0..800).map(|i| (i as f32 * 0.73).cos()).collect())
        .unwrap();

    let mut g = c.benchmark_group("normxcorr_forward_8c_10x10");
    for radius in [0usize, 1, 2] {
        let layer = NormXCorr::new(3, radius);
        g.bench_function(format!("r{radius}"), |bch| {
            bch.iter(|| layer.forward(black_box(&a), black_box(&b)).unwrap())
        });
    }
    g.finish();

    let layer = NormXCorr::new(3, 1);
    let (y, cache) = layer.forward(&a, &b).unwrap();
    let grad = Tensor::full(y.shape(), 1.0);
    c.bench_function("normxcorr_backward_r1", |bch| {
        bch.iter(|| layer.backward(black_box(&cache), black_box(&grad)).unwrap())
    });

    // Full network pass at the repro harness's quick resolution.
    let cfg = NetConfig {
        height: 32,
        width: 24,
        c1: 8,
        c2: 10,
        c3: 10,
        dense: 32,
        ..NetConfig::default()
    };
    let net = NormXCorrNet::new(cfg.clone()).expect("bench config is large enough");
    let x = Tensor::full(&[1, 3, cfg.height, cfg.width], 0.1);
    c.bench_function("net_forward_32x24", |bch| {
        bch.iter(|| net.forward(black_box(&x), black_box(&x)).unwrap())
    });

    // Perf pin for the PR-6 batching work: the panel-formulation forward
    // at the medium tower's post-conv2 shape (B=4, 10 channels, 5×3).
    let len = 4 * 10 * 5 * 3;
    let fa = Tensor::from_vec(&[4, 10, 5, 3], (0..len).map(|i| (i as f32 * 0.11).sin()).collect())
        .unwrap();
    let fb = Tensor::from_vec(&[4, 10, 5, 3], (0..len).map(|i| (i as f32 * 0.29).cos()).collect())
        .unwrap();
    let pin = NormXCorr::new(3, 1);
    c.bench_function("pin_xcorr_forward", |bch| {
        bch.iter(|| pin.forward(black_box(&fa), black_box(&fb)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_xcorr
}
criterion_main!(benches);
