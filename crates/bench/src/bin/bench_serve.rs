//! `bench_serve` — load-test the recognition service across worker
//! widths and write a `taor-bench-serve-perf-v1` record.
//!
//! ```text
//! bench_serve [--widths 1,4] [--modes close,keepalive] [--requests N]
//!             [--clients N] [--seed N] [--no-siamese] [--chaos]
//!             [--json PATH]
//! ```

use taor_bench::{run_serve_bench, ConnMode, ServeBenchConfig};

const USAGE: &str = "bench_serve: recognition-service load generator
  --widths W1,W2   worker widths to benchmark (default 1,4)
  --modes M1,M2    connection modes per width: close (one TCP connection
                   per request) and/or keepalive (each client thread
                   reuses one connection) (default close,keepalive)
  --requests N     well-formed requests per width+mode (default 64)
  --clients N      concurrent client threads — and, in keepalive mode,
                   the number of persistent connections (default 4)
  --seed N         gallery + network seed (default 2019)
  --no-siamese     cheap pipeline only (use in debug builds)
  --chaos          interleave fault injectors with the load
  --json PATH      write the record to PATH (default: stdout only)";

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, String> {
    value
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag}: unparseable value"))
}

fn run() -> Result<(), String> {
    let mut cfg = ServeBenchConfig::default();
    let mut json_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--widths" => {
                let spec: String = parse("--widths", args.next())?;
                cfg.widths = spec
                    .split(',')
                    .map(|w| w.trim().parse().map_err(|_| format!("--widths: bad width {w:?}")))
                    .collect::<Result<_, _>>()?;
                if cfg.widths.is_empty() {
                    return Err("--widths: at least one width required".to_string());
                }
            }
            "--modes" => {
                let spec: String = parse("--modes", args.next())?;
                cfg.modes = spec
                    .split(',')
                    .map(|m| m.trim().parse::<ConnMode>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("--modes: {e}"))?;
                if cfg.modes.is_empty() {
                    return Err("--modes: at least one mode required".to_string());
                }
            }
            "--requests" => cfg.requests = parse("--requests", args.next())?,
            "--clients" => cfg.clients = parse("--clients", args.next())?,
            "--seed" => cfg.seed = parse("--seed", args.next())?,
            "--no-siamese" => cfg.siamese = false,
            "--chaos" => cfg.chaos = true,
            "--json" => json_path = Some(parse("--json", args.next())?),
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }

    let record = run_serve_bench(&cfg);
    for w in &record.widths {
        println!(
            "width {} [{}, {} conns]: {} answered, {} ok, {} shed, {} timeouts, {} degraded, \
             {} malformed, p50 {:.2} ms, p99 {:.2} ms, {:.1} req/s",
            w.width,
            w.mode,
            w.connections,
            w.requests,
            w.ok,
            w.shed,
            w.timeouts,
            w.degraded,
            w.malformed,
            w.p50_ms,
            w.p99_ms,
            w.req_per_sec
        );
    }
    let json =
        serde_json::to_string_pretty(&record).map_err(|e| format!("serialising record: {e}"))?;
    if let Some(path) = json_path {
        std::fs::write(&path, json.as_bytes()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("record written to {path}");
    } else {
        println!("{json}");
    }
    Ok(())
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("bench_serve: {msg}");
        std::process::exit(2);
    }
}
