//! `bench_ann` — race the sub-linear gallery indexes against brute force.
//!
//! ```text
//! bench_ann [--seed S] [--models-per-class N] [--yaw N] [--pitch N]
//!           [--queries N] [--k N] [--quick] [--out PATH]
//! ```
//!
//! Renders a `gallery_grid` catalog (default: 10,500 views), describes
//! every view with a 256-d gist descriptor and a 256-bit binary
//! signature, builds the HNSW and MIH indexes, and reports per-query
//! brute-vs-indexed lookup time plus recall@1/@k. `--out` writes the
//! `taor-bench-ann-perf-v1` JSON record (see `bench_records/`).

use taor_bench::ann::{run_ann_bench, AnnBenchConfig};

struct Args {
    cfg: AnnBenchConfig,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut cfg = AnnBenchConfig::full(2019);
    let mut out = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let num = |flag: &str, it: &mut dyn Iterator<Item = String>| -> Result<usize, String> {
            let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
            v.parse().map_err(|_| format!("{flag}: bad value {v}"))
        };
        match arg.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                cfg.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--models-per-class" => cfg.models_per_class = num("--models-per-class", &mut it)?,
            "--yaw" => cfg.yaw_steps = num("--yaw", &mut it)?,
            "--pitch" => cfg.pitch_steps = num("--pitch", &mut it)?,
            "--queries" => cfg.queries = num("--queries", &mut it)?,
            "--k" => cfg.k = num("--k", &mut it)?,
            "--quick" => {
                let seed = cfg.seed;
                cfg = AnnBenchConfig::quick(seed);
            }
            "--out" => out = Some(it.next().ok_or("--out needs a path")?),
            "--help" | "-h" => {
                println!(
                    "bench_ann [--seed S] [--models-per-class N] [--yaw N] [--pitch N] \
                     [--queries N] [--k N] [--quick] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Args { cfg, out })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "bench_ann: rendering {} gallery views ({} models/class, {}x{} view grid)…",
        args.cfg.gallery_views(),
        args.cfg.models_per_class,
        args.cfg.yaw_steps,
        args.cfg.pitch_steps
    );
    let record = match run_ann_bench(&args.cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    for mode in [&record.float, &record.binary] {
        println!(
            "{:>4}: build {:8.1} ms | brute {:9.1} us/q | ann {:8.1} us/q | {:6.1}x | \
             recall@1 {:.4} | recall@{} {:.4}",
            mode.index,
            mode.build_ms,
            mode.brute_us_per_query,
            mode.ann_us_per_query,
            mode.speedup,
            mode.recall_at_1,
            record.k,
            mode.recall_at_k,
        );
    }
    if let Some(path) = args.out {
        let json = match serde_json::to_string_pretty(&record) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: record does not serialise: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
