//! Regenerate the paper's tables.
//!
//! ```text
//! repro [--table N] [--quick|--medium|--full] [--seed S] [--sweep]
//!       [--ablate] [--extensions] [--nyu-per-class N] [--json PATH]
//!       [--bench-json PATH] [--train-pairs N] [--train-epochs N]
//!       [--eval-pairs N] [--index flat|hnsw|mih] [--verbose]
//! ```
//!
//! Default is `--quick`: NYU subsampled to 50 crops/class and a reduced
//! Siamese training run — minutes instead of hours, same qualitative
//! findings. `--medium` keeps Table 1 cardinalities for the matching
//! tables with a single-CPU Siamese budget; `--full` additionally uses
//! the paper's full training recipe (hours without a GPU).
//! `--extensions` appends the E1–E3 future-work experiments; `--ablate`
//! adds the RANSAC column to Table 3 and the cosine head to Table 4.
//! `--bench-json PATH` writes a machine-readable perf-trajectory record
//! (wall time, thread count and scored-pairs/sec per table, schema
//! `taor-bench-perf-v1`) so successive commits can be compared.
//! `--index` selects the descriptor-gallery index for tables 3 and 9:
//! `flat` (brute force, the default), `hnsw` (approximate, float kinds)
//! or `mih` (exact multi-index hashing, binary kinds); every mode is
//! deterministic across spawns and `TAOR_THREADS` widths.

use std::io::Write;
use taor_bench::extensions::{table_e1, table_e2, table_e3};
use taor_bench::repro::{
    table1_with, table2_sweep_with, table2_with, table3_ex_with, table4_with, table5_with,
    table6_with, table7or8_with, table9_with,
};
use taor_bench::{PerfRecord, PreparedRepro, ReproConfig, TablePerf};
use taor_core::prelude::AnnIndexMode;

#[derive(PartialEq, Clone, Copy)]
enum Mode {
    Quick,
    Medium,
    Full,
}

struct Args {
    table: Option<usize>,
    mode: Mode,
    seed: u64,
    sweep: bool,
    ablate: bool,
    extensions: bool,
    nyu_per_class: Option<usize>,
    json: Option<String>,
    bench_json: Option<String>,
    train_pairs: Option<usize>,
    train_epochs: Option<usize>,
    eval_pairs: Option<usize>,
    index: AnnIndexMode,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        table: None,
        mode: Mode::Quick,
        seed: 2019,
        sweep: false,
        ablate: false,
        extensions: false,
        nyu_per_class: None,
        json: None,
        bench_json: None,
        train_pairs: None,
        train_epochs: None,
        eval_pairs: None,
        index: AnnIndexMode::Flat,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--table" => {
                let v = it.next().ok_or("--table needs a value")?;
                args.table = Some(v.parse().map_err(|_| format!("bad table id: {v}"))?);
            }
            "--quick" => args.mode = Mode::Quick,
            "--medium" => args.mode = Mode::Medium,
            "--full" => args.mode = Mode::Full,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--sweep" => args.sweep = true,
            "--ablate" => args.ablate = true,
            "--extensions" => args.extensions = true,
            "--nyu-per-class" => {
                let v = it.next().ok_or("--nyu-per-class needs a value")?;
                args.nyu_per_class = Some(v.parse().map_err(|_| format!("bad count: {v}"))?);
            }
            "--train-pairs" => {
                let v = it.next().ok_or("--train-pairs needs a value")?;
                args.train_pairs = Some(v.parse().map_err(|_| format!("bad count: {v}"))?);
            }
            "--train-epochs" => {
                let v = it.next().ok_or("--train-epochs needs a value")?;
                args.train_epochs = Some(v.parse().map_err(|_| format!("bad count: {v}"))?);
            }
            "--eval-pairs" => {
                let v = it.next().ok_or("--eval-pairs needs a value")?;
                args.eval_pairs = Some(v.parse().map_err(|_| format!("bad count: {v}"))?);
            }
            "--index" => {
                let v = it.next().ok_or("--index needs a value")?;
                args.index = v.parse()?;
            }
            "--json" => args.json = Some(it.next().ok_or("--json needs a path")?),
            "--bench-json" => args.bench_json = Some(it.next().ok_or("--bench-json needs a path")?),
            "--verbose" | "-v" => args.verbose = true,
            "--help" | "-h" => {
                println!(
                    "repro [--table N] [--quick|--medium|--full] [--seed S] [--sweep] [--ablate] \
                     [--extensions] [--nyu-per-class N] [--json PATH] [--bench-json PATH] \
                     [--train-pairs N] [--train-epochs N] [--eval-pairs N] \
                     [--index flat|hnsw|mih] [--verbose]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut cfg = match args.mode {
        Mode::Quick => ReproConfig::quick(args.seed),
        Mode::Medium => ReproConfig::medium(args.seed),
        Mode::Full => ReproConfig::full(args.seed),
    };
    if let Some(n) = args.nyu_per_class {
        cfg.nyu_per_class = Some(n);
    }
    // Table-4 scale overrides (CI and the width-determinism test use
    // these to keep a debug-mode training run tractable).
    if let Some(n) = args.train_pairs {
        cfg.siamese.n_train_pairs = n;
    }
    if let Some(n) = args.train_epochs {
        cfg.siamese.train.max_epochs = n;
    }
    if let Some(n) = args.eval_pairs {
        cfg.max_eval_pairs = Some(n);
    }
    cfg.index = args.index;

    let wanted: Vec<usize> = match args.table {
        Some(t) if (1..=9).contains(&t) => vec![t],
        Some(t) => {
            eprintln!("error: table {t} does not exist (the paper has tables 1-9)");
            std::process::exit(2);
        }
        None => (1..=9).collect(),
    };

    // One shared cache: datasets and preprocessed view sets are built
    // once and reused by every table generated in this run.
    let prep = PreparedRepro::new(cfg.clone());
    let mut records = Vec::new();
    let mut timings = Vec::new();
    for t in wanted {
        let started = std::time::Instant::now();
        let out = match t {
            1 => table1_with(&prep),
            2 => {
                let mut out = table2_with(&prep);
                if args.sweep {
                    let sweep = table2_sweep_with(&prep);
                    out.text.push('\n');
                    out.text.push_str(&sweep.text);
                    out.pairs += sweep.pairs;
                }
                out
            }
            3 => table3_ex_with(&prep, args.ablate),
            4 => match table4_with(&prep, args.ablate, args.verbose) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("error: table 4 failed: {e}");
                    std::process::exit(1);
                }
            },
            5 => table5_with(&prep),
            6 => table6_with(&prep),
            7 => table7or8_with(&prep, 7),
            8 => table7or8_with(&prep, 8),
            9 => table9_with(&prep),
            _ => unreachable!("validated above"),
        };
        let elapsed = started.elapsed();
        println!("{}", out.text);
        if args.verbose {
            eprintln!("[table {t} took {elapsed:.1?}]");
        }
        timings.push(TablePerf::new(t, elapsed.as_secs_f64(), out.pairs));
        records.extend(out.records);
    }

    // Degradation counters go to stderr, and only when nonzero, so the
    // table output on stdout stays byte-stable for clean runs.
    let diag = prep.diagnostics();
    if !diag.is_clean() {
        eprintln!(
            "[diagnostics] nan_scores={} degraded={} (see DESIGN.md: NaN quarantine)",
            diag.nan_scores, diag.degraded
        );
    }

    if args.extensions {
        for out in [table_e1(&cfg, 12), table_e2(&cfg, args.verbose), table_e3(&cfg)] {
            println!("{}", out.text);
            records.extend(out.records);
        }
    }

    if let Some(path) = &args.bench_json {
        let mode = match args.mode {
            Mode::Quick => "quick",
            Mode::Medium => "medium",
            Mode::Full => "full",
        };
        let perf = PerfRecord::new(mode, args.seed, timings);
        let json = serde_json::to_string_pretty(&perf).expect("perf record serialises");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote perf record ({} tables, {:.2}s total) to {path}",
            perf.tables.len(),
            perf.total_seconds
        );
    }

    if let Some(path) = args.json {
        let json = serde_json::to_string_pretty(&records).expect("records serialise");
        let mut f = std::fs::File::create(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        f.write_all(json.as_bytes()).expect("write json");
        eprintln!("wrote {} records to {path}", records.len());
    }
}
