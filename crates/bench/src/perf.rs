//! Machine-readable performance-trajectory records (`--bench-json`).
//!
//! The repro binary can write one [`PerfRecord`] per run: wall time and
//! scored-pair throughput for every table it generated, plus enough
//! context (mode, seed, thread count) to compare runs across commits.
//! The schema is versioned so downstream tooling can detect layout
//! changes instead of silently misreading fields.

use serde::Serialize;

/// Schema tag written into every record.
pub const PERF_SCHEMA: &str = "taor-bench-perf-v1";

/// Timing for one generated table.
#[derive(Debug, Clone, Serialize)]
pub struct TablePerf {
    /// Paper table number (1–9).
    pub table: usize,
    /// Wall-clock seconds spent generating the table.
    pub seconds: f64,
    /// (query, reference) scoring operations the table performed
    /// (see [`crate::repro::TableOutput::pairs`]); 0 if not pair-based.
    pub pairs: usize,
    /// `pairs / seconds`; 0 when either is zero.
    pub pairs_per_sec: f64,
}

impl TablePerf {
    pub fn new(table: usize, seconds: f64, pairs: usize) -> Self {
        let pairs_per_sec = if seconds > 0.0 && pairs > 0 { pairs as f64 / seconds } else { 0.0 };
        TablePerf { table, seconds, pairs, pairs_per_sec }
    }
}

/// One full repro run.
#[derive(Debug, Clone, Serialize)]
pub struct PerfRecord {
    /// Always [`PERF_SCHEMA`].
    pub schema: String,
    /// `"quick"`, `"medium"` or `"full"`.
    pub mode: String,
    /// Master seed the run used.
    pub seed: u64,
    /// Actual width of the worker pool behind `par_iter` (1 = sequential):
    /// `TAOR_THREADS` when set, otherwise `available_parallelism()`.
    pub threads: usize,
    /// Wall-clock seconds across all generated tables.
    pub total_seconds: f64,
    /// Per-table timings, in generation order.
    pub tables: Vec<TablePerf>,
}

impl PerfRecord {
    pub fn new(mode: &str, seed: u64, tables: Vec<TablePerf>) -> Self {
        let total_seconds = tables.iter().map(|t| t.seconds).sum();
        PerfRecord {
            schema: PERF_SCHEMA.to_string(),
            mode: mode.to_string(),
            seed,
            threads: rayon::current_num_threads(),
            total_seconds,
            tables,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    #[test]
    fn record_round_trips_through_json() {
        let rec = PerfRecord::new(
            "quick",
            2019,
            vec![TablePerf::new(2, 0.5, 1000), TablePerf::new(1, 0.1, 0)],
        );
        let json = serde_json::to_string_pretty(&rec).expect("serialises");
        let v: Value = serde_json::from_str(&json).expect("parses back");
        let Value::Map(fields) = &v else { panic!("record must be a JSON object") };
        let get = |name: &str| serde::field(fields, name).expect(name);
        assert_eq!(get("schema"), &Value::Str(PERF_SCHEMA.into()));
        assert_eq!(get("seed"), &Value::UInt(2019));
        let Value::Seq(tables) = get("tables") else { panic!("tables must be a list") };
        assert_eq!(tables.len(), 2);
    }

    #[test]
    fn throughput_handles_zero_pairs_and_zero_time() {
        assert_eq!(TablePerf::new(1, 0.5, 0).pairs_per_sec, 0.0);
        assert_eq!(TablePerf::new(1, 0.0, 10).pairs_per_sec, 0.0);
        let t = TablePerf::new(2, 2.0, 1000);
        assert_eq!(t.pairs_per_sec, 500.0);
    }

    #[test]
    fn total_is_the_sum_of_table_times() {
        let rec =
            PerfRecord::new("full", 7, vec![TablePerf::new(1, 1.5, 0), TablePerf::new(2, 2.5, 4)]);
        assert_eq!(rec.total_seconds, 4.0);
        assert!(rec.threads >= 1);
    }
}
