//! Table generators for the reproduction harness.
//!
//! Every generator comes in two forms: `tableN(&ReproConfig)` builds its
//! inputs from scratch (stable public API, used by the integration
//! tests), and `tableN_with(&PreparedRepro)` consumes the shared
//! [`PreparedRepro`] cache so a multi-table run renders and preprocesses
//! each dataset exactly once.

use std::cell::OnceCell;

use taor_core::prelude::*;
use taor_data::{
    nyu_set, nyu_set_subsampled, nyu_sns1_test_pairs, shapenet_set1, shapenet_set2,
    sns1_test_pairs, Dataset, ObjectClass,
};

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct ReproConfig {
    /// Master seed for all dataset builders and baselines.
    pub seed: u64,
    /// `None` = the full 6,934-crop NYUSet; `Some(n)` = n crops per class.
    pub nyu_per_class: Option<usize>,
    /// Siamese training configuration (quick vs. paper-scale).
    pub siamese: SiameseConfig,
    /// Hybrid weights; the paper reports α = 0.3, β = 0.7.
    pub alpha: f64,
    pub beta: f64,
    /// `Some(n)` truncates each Table-4 evaluation pair set to its first
    /// `n` pairs — a CI/debug affordance (the pair builders are
    /// deterministic, so a truncated run is a stable prefix of the full
    /// one). `None` (the default) evaluates every pair.
    pub max_eval_pairs: Option<usize>,
    /// Gallery index for the descriptor tables (3 and 9): brute force
    /// (`Flat`, the paper's matcher), HNSW for float kinds or exact MIH
    /// for binary kinds. Every mode is deterministic across spawns and
    /// `TAOR_THREADS` widths; MIH is additionally bit-identical to flat.
    pub index: AnnIndexMode,
}

impl ReproConfig {
    /// Quick mode: subsampled NYU, reduced Siamese training. Finishes in
    /// minutes on a laptop; preserves every qualitative finding.
    pub fn quick(seed: u64) -> Self {
        ReproConfig {
            seed,
            nyu_per_class: Some(50),
            siamese: SiameseConfig::quick(),
            alpha: 0.3,
            beta: 0.7,
            max_eval_pairs: None,
            index: AnnIndexMode::Flat,
        }
    }

    /// Full mode: Table 1 cardinalities everywhere and the paper's
    /// training recipe (9,450 pairs; ≤ 100 epochs with early stopping).
    pub fn full(seed: u64) -> Self {
        ReproConfig {
            seed,
            nyu_per_class: None,
            siamese: SiameseConfig::default(),
            alpha: 0.3,
            beta: 0.7,
            max_eval_pairs: None,
            index: AnnIndexMode::Flat,
        }
    }

    /// Medium mode: full NYU cardinalities for the matching tables, but a
    /// single-CPU-feasible Siamese budget (2,000 pairs, 12 epochs).
    pub fn medium(seed: u64) -> Self {
        ReproConfig {
            seed,
            nyu_per_class: None,
            siamese: SiameseConfig::medium(),
            alpha: 0.3,
            beta: 0.7,
            max_eval_pairs: None,
            index: AnnIndexMode::Flat,
        }
    }

    fn nyu(&self) -> Dataset {
        match self.nyu_per_class {
            Some(n) => nyu_set_subsampled(self.seed, n),
            None => nyu_set(self.seed),
        }
    }
}

/// One-shot cache of the datasets, preprocessed view sets and descriptor
/// indices the table generators share.
///
/// The original harness rebuilt everything per table: tables 2, 5, 6, 7
/// and 8 each re-rendered ShapeNetSet1 and re-ran [`prepare_views`] from
/// scratch, and tables 3 and 9 both re-extracted every descriptor index.
/// All of those builders are deterministic functions of `cfg.seed`, so
/// computing each artefact once and sharing it is behaviour-preserving.
/// Every field is lazy: `repro --table 1` still pays only for the
/// datasets it actually touches.
pub struct PreparedRepro {
    cfg: ReproConfig,
    diag: Diagnostics,
    sns1: OnceCell<Dataset>,
    sns2: OnceCell<Dataset>,
    nyu: OnceCell<Dataset>,
    refs_sns1: OnceCell<Vec<RefView>>,
    refs_sns2: OnceCell<Vec<RefView>>,
    q_nyu: OnceCell<Vec<RefView>>,
    desc_sns1: OnceCell<Vec<DescriptorIndex>>,
    desc_sns2: OnceCell<Vec<DescriptorIndex>>,
}

impl PreparedRepro {
    pub fn new(cfg: ReproConfig) -> Self {
        PreparedRepro {
            cfg,
            diag: Diagnostics::new(),
            sns1: OnceCell::new(),
            sns2: OnceCell::new(),
            nyu: OnceCell::new(),
            refs_sns1: OnceCell::new(),
            refs_sns2: OnceCell::new(),
            q_nyu: OnceCell::new(),
            desc_sns1: OnceCell::new(),
            desc_sns2: OnceCell::new(),
        }
    }

    pub fn cfg(&self) -> &ReproConfig {
        &self.cfg
    }

    /// The run-wide degradation counters accumulated by every table that
    /// went through this cache.
    pub fn diagnostics(&self) -> DiagnosticsReport {
        self.diag.report()
    }

    /// Shared counters for the fallible pipeline entry points.
    pub fn diag(&self) -> &Diagnostics {
        &self.diag
    }

    pub fn sns1(&self) -> &Dataset {
        self.sns1.get_or_init(|| shapenet_set1(self.cfg.seed))
    }

    pub fn sns2(&self) -> &Dataset {
        self.sns2.get_or_init(|| shapenet_set2(self.cfg.seed))
    }

    pub fn nyu(&self) -> &Dataset {
        self.nyu.get_or_init(|| self.cfg.nyu())
    }

    /// ShapeNetSet1 preprocessed on its white catalog background. Serves
    /// both as the reference set of tables 2/5/6/7/8 and as the query set
    /// of the SNS1-v-SNS2 column (`prepare_views` is deterministic, so
    /// sharing one copy is exact).
    pub fn refs_sns1(&self) -> &[RefView] {
        self.refs_sns1.get_or_init(|| prepare_views(self.sns1(), Background::White))
    }

    /// ShapeNetSet2 preprocessed on white (reference of the SNS1-v-SNS2
    /// column, queries of Table 8).
    pub fn refs_sns2(&self) -> &[RefView] {
        self.refs_sns2.get_or_init(|| prepare_views(self.sns2(), Background::White))
    }

    /// NYU crops preprocessed on their black segmentation background.
    pub fn q_nyu(&self) -> &[RefView] {
        self.q_nyu.get_or_init(|| prepare_views(self.nyu(), Background::Black))
    }

    /// SNS1 descriptor indices, aligned with [`DescriptorKind::ALL`].
    pub fn descriptors_sns1(&self) -> &[DescriptorIndex] {
        self.desc_sns1.get_or_init(|| {
            DescriptorKind::ALL.iter().map(|&k| extract_index(self.sns1(), k)).collect()
        })
    }

    /// SNS2 descriptor indices, aligned with [`DescriptorKind::ALL`].
    pub fn descriptors_sns2(&self) -> &[DescriptorIndex] {
        self.desc_sns2.get_or_init(|| {
            DescriptorKind::ALL.iter().map(|&k| extract_index(self.sns2(), k)).collect()
        })
    }
}

/// One generated table: rendered text plus machine-readable records.
#[derive(Debug, Clone)]
pub struct TableOutput {
    pub table: usize,
    pub text: String,
    pub records: Vec<ExperimentRecord>,
    /// Number of (query, reference) scoring operations the table
    /// performed — the throughput denominator for `--bench-json`. Hybrid
    /// rows count twice (they evaluate both underlying scorers); 0 for
    /// tables that are not pair-based.
    pub pairs: usize,
}

/// Score through the fallible per-view entry point so NaN quarantine and
/// degradation events land in the run-wide [`Diagnostics`]. An empty
/// reference set is still fatal here — a table with no references is a
/// harness configuration error, not an input fault to degrade around.
fn per_view(
    queries: &[RefView],
    views: &[RefView],
    scorer: &dyn MatchScorer,
    diag: &Diagnostics,
) -> Vec<ObjectClass> {
    match try_classify_per_view(queries, views, scorer, diag) {
        Ok(preds) => preds,
        Err(e) => panic!("{e}"),
    }
}

/// Hybrid counterpart of [`per_view`].
fn hybrid_preds(
    queries: &[RefView],
    views: &[RefView],
    cfg: &HybridConfig,
    agg: Aggregation,
    diag: &Diagnostics,
) -> Vec<ObjectClass> {
    match try_classify_hybrid(queries, views, cfg, agg, diag) {
        Ok(preds) => preds,
        Err(e) => panic!("{e}"),
    }
}

/// Descriptor counterpart of [`per_view`].
fn descriptor_preds(
    queries: &DescriptorIndex,
    reference: &DescriptorIndex,
    ratio: f32,
    diag: &Diagnostics,
    index: AnnIndexMode,
) -> Vec<ObjectClass> {
    match try_classify_descriptors_with(queries, reference, ratio, diag, index) {
        Ok(preds) => preds,
        Err(e) => panic!("{e}"),
    }
}

/// All approaches of Table 2, in row order, as (label, classifier) pairs.
fn exploratory_rows(
    cfg: &ReproConfig,
    queries: &[RefView],
    views: &[RefView],
    diag: &Diagnostics,
) -> Vec<(String, Vec<ObjectClass>)> {
    let truth = truth_of(queries);
    let mut rows = Vec::new();
    rows.push(("Baseline".to_string(), random_baseline(&truth, cfg.seed ^ 0xBA5E)));
    for scorer in ShapeScorer::ALL {
        rows.push((scorer.name(), per_view(queries, views, &scorer, diag)));
    }
    for scorer in ColorScorer::ALL {
        rows.push((scorer.name(), per_view(queries, views, &scorer, diag)));
    }
    let hybrid = HybridConfig { alpha: cfg.alpha, beta: cfg.beta, ..Default::default() };
    for agg in Aggregation::ALL {
        rows.push((agg.label().to_string(), hybrid_preds(queries, views, &hybrid, agg, diag)));
    }
    rows
}

/// Scorer invocations per (query, reference) pair across the exploratory
/// rows of Table 2: three shape scorers, four colour scorers, and three
/// hybrid aggregations that each evaluate both underlying scorers.
const EXPLORATORY_SCORINGS: usize = 3 + 4 + 2 * 3;

/// Table 1: dataset statistics.
pub fn table1(cfg: &ReproConfig) -> TableOutput {
    table1_with(&PreparedRepro::new(cfg.clone()))
}

/// Table 1 over a shared [`PreparedRepro`] cache.
pub fn table1_with(prep: &PreparedRepro) -> TableOutput {
    let sns1 = prep.sns1();
    let sns2 = prep.sns2();
    let nyu = prep.nyu();
    let mut t = TextTable::new(
        "Table 1: Dataset statistics.",
        &["Object", "ShapeNetSet1", "ShapeNetSet2", "NYUSet"],
    );
    let c1 = sns1.class_counts();
    let c2 = sns2.class_counts();
    let cn = nyu.class_counts();
    for class in ObjectClass::ALL {
        let i = class.index();
        t.row(vec![
            class.name().to_string(),
            c1[i].to_string(),
            c2[i].to_string(),
            cn[i].to_string(),
        ]);
    }
    t.row(vec![
        "Total".to_string(),
        sns1.len().to_string(),
        sns2.len().to_string(),
        nyu.len().to_string(),
    ]);
    TableOutput { table: 1, text: t.render(), records: Vec::new(), pairs: 0 }
}

/// Table 2: cumulative accuracies for every exploratory configuration.
pub fn table2(cfg: &ReproConfig) -> TableOutput {
    table2_with(&PreparedRepro::new(cfg.clone()))
}

/// Table 2 over a shared [`PreparedRepro`] cache.
pub fn table2_with(prep: &PreparedRepro) -> TableOutput {
    let cfg = prep.cfg();
    let refs_sns1 = prep.refs_sns1();
    let refs_sns2 = prep.refs_sns2();
    let q_nyu = prep.q_nyu();
    // The SNS1-v-SNS2 queries are exactly the cached SNS1 reference
    // views: same dataset, same white background.
    let q_sns1 = refs_sns1;

    let nyu_rows = exploratory_rows(cfg, q_nyu, refs_sns1, prep.diag());
    let sns_rows = exploratory_rows(cfg, q_sns1, refs_sns2, prep.diag());
    let t_nyu = truth_of(q_nyu);
    let t_sns = truth_of(q_sns1);

    let mut t = TextTable::new(
        "Table 2: Cumulative (cross-class) accuracy, exploratory trials.",
        &["Approach", "NYU v. SNS1", "SNS1 v. SNS2"],
    );
    let mut records = Vec::new();
    for ((label, p_nyu), (_, p_sns)) in nyu_rows.into_iter().zip(sns_rows) {
        let e_nyu = evaluate(&t_nyu, &p_nyu);
        let e_sns = evaluate(&t_sns, &p_sns);
        t.row(vec![
            label.clone(),
            fmt_f(e_nyu.cumulative_accuracy, 5),
            fmt_f(e_sns.cumulative_accuracy, 2),
        ]);
        records.push(ExperimentRecord {
            table: 2,
            approach: label.clone(),
            dataset: "NYU v. SNS1".into(),
            cumulative_accuracy: Some(e_nyu.cumulative_accuracy),
            evaluation: Some(e_nyu),
            binary: None,
        });
        records.push(ExperimentRecord {
            table: 2,
            approach: label,
            dataset: "SNS1 v. SNS2".into(),
            cumulative_accuracy: Some(e_sns.cumulative_accuracy),
            evaluation: Some(e_sns),
            binary: None,
        });
    }
    let pairs =
        EXPLORATORY_SCORINGS * (q_nyu.len() * refs_sns1.len() + q_sns1.len() * refs_sns2.len());
    TableOutput { table: 2, text: t.render(), records, pairs }
}

/// Hybrid α/β sweep (the ablation the paper motivates by trying (1,1) and
/// then (0.3, 0.7)).
pub fn table2_sweep(cfg: &ReproConfig) -> TableOutput {
    table2_sweep_with(&PreparedRepro::new(cfg.clone()))
}

/// Hybrid α/β sweep over a shared [`PreparedRepro`] cache.
pub fn table2_sweep_with(prep: &PreparedRepro) -> TableOutput {
    let refs = prep.refs_sns2();
    let queries = prep.refs_sns1();
    let truth = truth_of(queries);

    let weights: [(f64, f64); 7] =
        [(1.0, 0.0), (0.7, 0.3), (0.5, 0.5), (0.3, 0.7), (0.1, 0.9), (0.0, 1.0), (1.0, 1.0)];
    let mut t = TextTable::new(
        "Table 2 sweep: hybrid weighted-sum accuracy vs (alpha, beta), SNS1 v. SNS2.",
        &["alpha", "beta", "Accuracy"],
    );
    for &(a, b) in &weights {
        let hybrid = HybridConfig { alpha: a, beta: b, ..Default::default() };
        let preds = hybrid_preds(queries, refs, &hybrid, Aggregation::WeightedSum, prep.diag());
        let e = evaluate(&truth, &preds);
        t.row(vec![format!("{a:.1}"), format!("{b:.1}"), fmt_f(e.cumulative_accuracy, 3)]);
    }
    let pairs = weights.len() * 2 * queries.len() * refs.len();
    TableOutput { table: 2, text: t.render(), records: Vec::new(), pairs }
}

/// Table 3: descriptor-matching cumulative accuracies (SNS1 v SNS2), at
/// both ratio thresholds the paper tried. With `ablate`, adds a column
/// for RANSAC-verified matching (Lowe's full pipeline, which the paper
/// stopped short of).
pub fn table3_ex(cfg: &ReproConfig, ablate: bool) -> TableOutput {
    table3_ex_with(&PreparedRepro::new(cfg.clone()), ablate)
}

/// Table 3 over a shared [`PreparedRepro`] cache.
pub fn table3_ex_with(prep: &PreparedRepro, ablate: bool) -> TableOutput {
    let cfg = prep.cfg();
    let sns1 = prep.sns1();
    let mut headers = vec!["Approach", "Accuracy (ratio 0.5)", "Accuracy (ratio 0.75)"];
    if ablate {
        headers.push("RANSAC-verified (0.75)");
    }
    let mut t = TextTable::new(
        "Table 3: Cumulative accuracies, descriptor matching (SNS1 v. SNS2).",
        &headers,
    );
    let truth: Vec<ObjectClass> = sns1.images.iter().map(|i| i.class).collect();
    let mut records = Vec::new();
    let mut baseline_row = vec![
        "Baseline".to_string(),
        fmt_f(evaluate(&truth, &random_baseline(&truth, cfg.seed ^ 0xBA5E)).cumulative_accuracy, 2),
        String::new(),
    ];
    if ablate {
        baseline_row.push(String::new());
    }
    t.row(baseline_row);
    for (kind, (q, r)) in
        DescriptorKind::ALL.iter().zip(prep.descriptors_sns1().iter().zip(prep.descriptors_sns2()))
    {
        let acc_of = |ratio: f32| {
            let preds = descriptor_preds(q, r, ratio, prep.diag(), prep.cfg().index);
            evaluate(&truth, &preds)
        };
        let e05 = acc_of(0.5);
        let e075 = acc_of(0.75);
        let mut row = vec![
            kind.label().to_string(),
            fmt_f(e05.cumulative_accuracy, 2),
            fmt_f(e075.cumulative_accuracy, 2),
        ];
        if ablate {
            let preds = crate::repro_verified(q, r);
            row.push(fmt_f(evaluate(&truth, &preds).cumulative_accuracy, 2));
        }
        t.row(row);
        records.push(ExperimentRecord {
            table: 3,
            approach: kind.label().to_string(),
            dataset: "SNS1 v. SNS2".into(),
            cumulative_accuracy: Some(e05.cumulative_accuracy),
            evaluation: Some(e05),
            binary: None,
        });
    }
    let runs_per_kind = 2 + usize::from(ablate);
    let pairs = DescriptorKind::ALL.len() * runs_per_kind * truth.len() * prep.sns2().len();
    TableOutput { table: 3, text: t.render(), records, pairs }
}

/// Backwards-compatible Table 3 without the ablation column.
pub fn table3(cfg: &ReproConfig) -> TableOutput {
    table3_ex(cfg, false)
}

/// Table 4: Normalized-X-Corr binary evaluation on both pair test sets.
/// With `ablate`, also reports the cosine "exact matching" baseline.
///
/// Fallible: an input resolution too small for the architecture is a
/// typed [`taor_core::Error`] instead of a panic.
pub fn table4(
    cfg: &ReproConfig,
    ablate: bool,
    verbose: bool,
) -> Result<TableOutput, taor_core::Error> {
    table4_with(&PreparedRepro::new(cfg.clone()), ablate, verbose)
}

/// Table 4 over a shared [`PreparedRepro`] cache.
pub fn table4_with(
    prep: &PreparedRepro,
    ablate: bool,
    verbose: bool,
) -> Result<TableOutput, taor_core::Error> {
    let cfg = prep.cfg();
    let sns1 = prep.sns1();
    let sns2 = prep.sns2();
    let nyu = prep.nyu();

    let (net, report) = taor_core::try_train_siamese(sns2, &cfg.siamese, |s| {
        if verbose {
            eprintln!(
                "  epoch {:>3}  loss {:.5}  train-acc {:.3}",
                s.epoch, s.mean_loss, s.accuracy
            );
        }
    })?;
    let trained_epochs = report.epochs.len();

    let mut pairs_sns1 = sns1_test_pairs(sns1);
    let mut pairs_nyu = nyu_sns1_test_pairs(nyu, sns1, cfg.seed);
    if let Some(n) = cfg.max_eval_pairs {
        pairs_sns1.truncate(n);
        pairs_nyu.truncate(n);
    }

    let eval_sns1 = evaluate_siamese(&net, &pairs_sns1, &cfg.siamese.net);
    let eval_nyu = evaluate_siamese(&net, &pairs_nyu, &cfg.siamese.net);

    let mut t = TextTable::new(
        format!(
            "Table 4: Normalized-X-Corr evaluation (trained {} epochs, early-stop={}).",
            trained_epochs, report.early_stopped
        ),
        &["Dataset", "Measure", "Similar", "Dissimilar"],
    );
    let push_block = |t: &mut TextTable, name: &str, e: &BinaryEvaluation| {
        t.row(vec![
            name.into(),
            "Precision".into(),
            fmt_f(e.similar.precision, 2),
            fmt_f(e.dissimilar.precision, 2),
        ]);
        t.row(vec![
            String::new(),
            "Recall".into(),
            fmt_f(e.similar.recall, 2),
            fmt_f(e.dissimilar.recall, 2),
        ]);
        t.row(vec![
            String::new(),
            "F1-score".into(),
            fmt_f(e.similar.f1, 2),
            fmt_f(e.dissimilar.f1, 2),
        ]);
        t.row(vec![
            String::new(),
            "Support".into(),
            e.similar.support.to_string(),
            e.dissimilar.support.to_string(),
        ]);
    };
    push_block(&mut t, "ShapeNetSet1 pairs", &eval_sns1);
    push_block(&mut t, "NYU+ShapeNetSet1 pairs", &eval_nyu);

    let mut text = t.render();
    let mut records = vec![
        ExperimentRecord {
            table: 4,
            approach: "Normalized-X-Corr".into(),
            dataset: "ShapeNetSet1 pairs".into(),
            cumulative_accuracy: Some(eval_sns1.accuracy),
            evaluation: None,
            binary: Some(eval_sns1),
        },
        ExperimentRecord {
            table: 4,
            approach: "Normalized-X-Corr".into(),
            dataset: "NYU+ShapeNetSet1 pairs".into(),
            cumulative_accuracy: Some(eval_nyu.accuracy),
            evaluation: None,
            binary: Some(eval_nyu),
        },
    ];

    if ablate {
        // Cosine exact-matching baseline trained on the same pairs.
        let train_pairs = taor_data::training_pairs(sns2, cfg.siamese.n_train_pairs, cfg.seed);
        let cosine = CosineSiamese::fit(&train_pairs, 6);
        let mut t2 = TextTable::new(
            format!(
                "Table 4 ablation: cosine exact-matching head (threshold {:.2}).",
                cosine.threshold
            ),
            &["Dataset", "Measure", "Similar", "Dissimilar"],
        );
        for (name, pairs) in
            [("ShapeNetSet1 pairs", &pairs_sns1), ("NYU+ShapeNetSet1 pairs", &pairs_nyu)]
        {
            let preds = cosine.predict(pairs);
            let truth: Vec<usize> = pairs.iter().map(|p| p.label).collect();
            let e = evaluate_binary(&truth, &preds);
            push_block(&mut t2, name, &e);
            records.push(ExperimentRecord {
                table: 4,
                approach: "Cosine exact matching".into(),
                dataset: name.into(),
                cumulative_accuracy: Some(e.accuracy),
                evaluation: None,
                binary: Some(e),
            });
        }
        text.push('\n');
        text.push_str(&t2.render());
    }
    // Throughput denominator: every training epoch scores every training
    // pair through the full network (a forward/backward pass is at least
    // one scoring of that pair), so training passes count alongside the
    // evaluation pairs — Table 4 is the only table that trains, and
    // counting eval pairs alone would bill the entire training wall time
    // to them.
    let train_passes = trained_epochs * cfg.siamese.n_train_pairs;
    let pairs = train_passes + (pairs_sns1.len() + pairs_nyu.len()) * (1 + usize::from(ablate));
    Ok(TableOutput { table: 4, text, records, pairs })
}

/// Shared builder for the class-wise tables 5–8.
fn classwise_table(
    table: usize,
    title: &str,
    rows: Vec<(String, Vec<ObjectClass>)>,
    truth: &[ObjectClass],
    decimals: usize,
    dataset: &str,
    pairs: usize,
) -> TableOutput {
    let mut t = TextTable::new(title, &classwise_headers());
    let mut records = Vec::new();
    for (label, preds) in rows {
        let e = evaluate(truth, &preds);
        classwise_rows(&mut t, &label, &e, decimals);
        records.push(ExperimentRecord {
            table,
            approach: label,
            dataset: dataset.into(),
            cumulative_accuracy: Some(e.cumulative_accuracy),
            evaluation: Some(e),
            binary: None,
        });
    }
    TableOutput { table, text: t.render(), records, pairs }
}

/// Table 5: class-wise shape-only results (NYU v SNS1).
pub fn table5(cfg: &ReproConfig) -> TableOutput {
    table5_with(&PreparedRepro::new(cfg.clone()))
}

/// Table 5 over a shared [`PreparedRepro`] cache.
pub fn table5_with(prep: &PreparedRepro) -> TableOutput {
    let refs = prep.refs_sns1();
    let queries = prep.q_nyu();
    let truth = truth_of(queries);
    let mut rows =
        vec![("Baseline".to_string(), random_baseline(&truth, prep.cfg().seed ^ 0xBA5E))];
    for scorer in ShapeScorer::ALL {
        rows.push((scorer.name(), per_view(queries, refs, &scorer, prep.diag())));
    }
    classwise_table(
        5,
        "Table 5: Class-wise results, shape-only matching (NYU v. SNS1).",
        rows,
        &truth,
        5,
        "NYU v. SNS1",
        ShapeScorer::ALL.len() * queries.len() * refs.len(),
    )
}

/// Table 6: class-wise colour-only results (NYU v SNS1).
pub fn table6(cfg: &ReproConfig) -> TableOutput {
    table6_with(&PreparedRepro::new(cfg.clone()))
}

/// Table 6 over a shared [`PreparedRepro`] cache.
pub fn table6_with(prep: &PreparedRepro) -> TableOutput {
    let refs = prep.refs_sns1();
    let queries = prep.q_nyu();
    let truth = truth_of(queries);
    let rows: Vec<_> = ColorScorer::ALL
        .iter()
        .map(|s| (s.name(), per_view(queries, refs, s, prep.diag())))
        .collect();
    classwise_table(
        6,
        "Table 6: Class-wise results, RGB-histogram matching (NYU v. SNS1).",
        rows,
        &truth,
        5,
        "NYU v. SNS1",
        ColorScorer::ALL.len() * queries.len() * refs.len(),
    )
}

/// Tables 7 and 8: class-wise hybrid results. Table 7 = NYU v SNS1;
/// Table 8 = SNS2 v SNS1.
pub fn table7or8(cfg: &ReproConfig, table: usize) -> TableOutput {
    table7or8_with(&PreparedRepro::new(cfg.clone()), table)
}

/// Tables 7/8 over a shared [`PreparedRepro`] cache.
pub fn table7or8_with(prep: &PreparedRepro, table: usize) -> TableOutput {
    assert!(table == 7 || table == 8, "only tables 7 and 8 share this layout");
    let cfg = prep.cfg();
    let refs = prep.refs_sns1();
    let (queries, dataset, decimals) = if table == 7 {
        (prep.q_nyu(), "NYU v. SNS1", 5)
    } else {
        (prep.refs_sns2(), "SNS2 v. SNS1", 2)
    };
    let truth = truth_of(queries);
    let hybrid = HybridConfig { alpha: cfg.alpha, beta: cfg.beta, ..Default::default() };
    let rows: Vec<_> = Aggregation::ALL
        .iter()
        .map(|&agg| {
            (agg.label().to_string(), hybrid_preds(queries, refs, &hybrid, agg, prep.diag()))
        })
        .collect();
    let title = format!(
        "Table {table}: Class-wise results, hybrid Hu-L3 + Hellinger (alpha=0.3, beta=0.7), {dataset}.",
    );
    classwise_table(
        table,
        &title,
        rows,
        &truth,
        decimals,
        dataset,
        2 * Aggregation::ALL.len() * queries.len() * refs.len(),
    )
}

/// Table 9: class-wise descriptor-matching results (SNS1 v SNS2, ratio 0.5).
pub fn table9(cfg: &ReproConfig) -> TableOutput {
    table9_with(&PreparedRepro::new(cfg.clone()))
}

/// Table 9 over a shared [`PreparedRepro`] cache.
pub fn table9_with(prep: &PreparedRepro) -> TableOutput {
    let truth: Vec<ObjectClass> = prep.sns1().images.iter().map(|i| i.class).collect();
    let rows: Vec<_> = DescriptorKind::ALL
        .iter()
        .zip(prep.descriptors_sns1().iter().zip(prep.descriptors_sns2()))
        .map(|(kind, (q, r))| {
            (kind.label().to_string(), descriptor_preds(q, r, 0.5, prep.diag(), prep.cfg().index))
        })
        .collect();
    classwise_table(
        9,
        "Table 9: Class-wise results, descriptor matching (SNS1 v. SNS2, ratio 0.5).",
        rows,
        &truth,
        2,
        "SNS1 v. SNS2",
        DescriptorKind::ALL.len() * truth.len() * prep.sns2().len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ReproConfig {
        let mut cfg = ReproConfig::quick(2019);
        cfg.nyu_per_class = Some(5);
        cfg.siamese = SiameseConfig::quick();
        cfg.siamese.n_train_pairs = 40;
        cfg.siamese.train.max_epochs = 1;
        cfg
    }

    #[test]
    fn table1_reproduces_catalog_counts() {
        let out = table1(&ReproConfig::quick(2019));
        assert!(out.text.contains("Chair"));
        assert!(out.text.contains("82"));
        assert!(out.text.contains("100"));
    }

    #[test]
    fn table2_has_eleven_rows_and_all_records() {
        let out = table2(&tiny());
        assert_eq!(out.records.len(), 22); // 11 approaches x 2 datasets
        assert!(out.text.contains("Baseline"));
        assert!(out.text.contains("Shape+Color (macro-avg)"));
    }

    #[test]
    fn table5_layout() {
        let out = table5(&tiny());
        // 4 approaches x 4 measures.
        assert_eq!(out.records.len(), 4);
        assert!(out.text.contains("Chair"));
        assert!(out.text.contains("Baseline"));
        assert!(out.text.contains("Shape only L3"));
    }

    #[test]
    fn table8_is_sns2_v_sns1() {
        let out = table7or8(&tiny(), 8);
        assert!(out.text.contains("SNS2 v. SNS1"));
        assert_eq!(out.records.len(), 3);
    }

    #[test]
    #[should_panic(expected = "only tables 7 and 8")]
    fn table7or8_rejects_other_ids() {
        let _ = table7or8(&tiny(), 9);
    }

    #[test]
    fn shared_cache_matches_fresh_builds() {
        // The `_with` variants over one shared cache must render exactly
        // what the per-table builders produce from scratch.
        let cfg = tiny();
        let prep = PreparedRepro::new(cfg.clone());
        assert_eq!(table2_with(&prep).text, table2(&cfg).text);
        assert_eq!(table5_with(&prep).text, table5(&cfg).text);
        assert_eq!(table7or8_with(&prep, 8).text, table7or8(&cfg, 8).text);
    }

    #[test]
    fn table4_undersized_net_is_a_typed_error() {
        let mut cfg = tiny();
        cfg.siamese.net.height = 6;
        cfg.siamese.net.width = 6;
        match table4(&cfg, false, false) {
            Err(taor_core::Error::Nn(taor_nn::TensorError::InputTooSmall { .. })) => {}
            Err(e) => panic!("expected InputTooSmall, got {e}"),
            Ok(_) => panic!("expected InputTooSmall, got a table"),
        }
    }

    #[test]
    fn clean_inputs_leave_diagnostics_clean() {
        let prep = PreparedRepro::new(tiny());
        let _ = table5_with(&prep);
        let _ = table7or8_with(&prep, 8);
        assert!(prep.diagnostics().is_clean());
    }

    #[test]
    fn pair_counts_are_consistent_with_set_sizes() {
        let cfg = tiny();
        let prep = PreparedRepro::new(cfg);
        let out = table5_with(&prep);
        let expected = 3 * prep.q_nyu().len() * prep.refs_sns1().len();
        assert_eq!(out.pairs, expected);
        assert_eq!(table1_with(&prep).pairs, 0);
    }
}
