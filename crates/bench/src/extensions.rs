//! Extension experiments beyond the paper's nine tables, implementing the
//! future-work directions its conclusion lays out:
//!
//! * **E1** — end-to-end recognition on whole robot frames, measuring the
//!   segmentation error propagation the paper's controlled setup excluded
//!   ("for further application on RGB frames captured by a mobile robot
//!   in a real-life scenario");
//! * **E2** — Normalized-X-Corr trained on heterogeneous (mixed-domain)
//!   pairs ("increasing the heterogeneity of our datasets"), with
//!   dropout + weight decay as the overfitting countermeasures the
//!   discussion motivates.

use crate::repro::{ReproConfig, TableOutput};
use taor_core::prelude::*;
use taor_data::{
    mixed_training_pairs, nyu_sns1_test_pairs, patrol_frames, shapenet_set1, shapenet_set2,
};
use taor_nn::{train, NormXCorrNet};

/// E1: end-to-end scene recognition.
///
/// Classifies (a) ground-truth crops (the paper's controlled condition)
/// and (b) automatically segmented crops of the same frames, quantifying
/// how much accuracy the segmentation stage costs.
pub fn table_e1(cfg: &ReproConfig, n_frames: usize) -> TableOutput {
    let sns1 = shapenet_set1(cfg.seed);
    let refs = prepare_views(&sns1, Background::White);
    let hybrid = HybridConfig { alpha: cfg.alpha, beta: cfg.beta, ..Default::default() };
    let classify = |crop: &taor_imgproc::RgbImage| {
        let q = RefView {
            class: taor_data::ObjectClass::Chair, // placeholder truth, unused
            model_id: 0,
            feat: preprocess(crop, Background::Black, HIST_BINS),
        };
        classify_hybrid(std::slice::from_ref(&q), &refs, &hybrid, Aggregation::WeightedSum)[0]
    };

    let frames = patrol_frames(cfg.seed, n_frames);
    let seg_cfg = SegmentConfig::default();

    let mut agg = SceneEvaluation::default();
    let mut gt_total = 0usize;
    let mut gt_correct = 0usize;
    for scene in &frames {
        // Condition (a): classify ground-truth crops (perfect
        // localisation). The crop is black-masked against the *frame's*
        // background model so both conditions see the NYU format.
        let bg = border_colors(&scene.image, seg_cfg.background_colors);
        for obj in &scene.objects {
            let Ok(crop) = scene.image.crop(obj.bbox) else {
                // A ground-truth box outside the frame is a data fault:
                // skip the crop rather than aborting the whole table.
                continue;
            };
            // An empty background model is a typed error now; degrade to
            // the raw crop instead of a fabricated full-frame mask.
            let masked = match mask_against(&crop, &bg, seg_cfg.color_threshold) {
                Ok(mask) => {
                    let mut masked = taor_imgproc::RgbImage::new(crop.width(), crop.height());
                    for (x, y, px) in crop.enumerate_pixels() {
                        if mask.get(x, y) > 0 {
                            masked.put_pixel(x, y, px);
                        }
                    }
                    masked
                }
                Err(_) => crop.clone(),
            };
            gt_total += 1;
            if classify(&masked) == obj.class {
                gt_correct += 1;
            }
        }
        // Condition (b): automatic segmentation. A segmentation error on
        // a frame contributes zero detections (its objects count as
        // missed) — never a full-frame "detection".
        let detections = try_recognise_frame(&scene.image, &seg_cfg, classify).unwrap_or_default();
        let eval = evaluate_scene(scene, &detections);
        agg.total_objects += eval.total_objects;
        agg.detected += eval.detected;
        agg.correctly_classified += eval.correctly_classified;
        agg.false_positives += eval.false_positives;
    }

    let mut t = TextTable::new(
        format!("Extension E1: end-to-end scene recognition over {n_frames} frames."),
        &["Condition", "Metric", "Value"],
    );
    let gt_acc = gt_correct as f64 / gt_total.max(1) as f64;
    t.row(vec!["Ground-truth crops".into(), "classification accuracy".into(), fmt_f(gt_acc, 3)]);
    t.row(vec![
        "Auto segmentation".into(),
        "detection rate (IoU>=0.3)".into(),
        fmt_f(agg.detection_rate(), 3),
    ]);
    t.row(vec![
        String::new(),
        "classification | detected".into(),
        fmt_f(agg.classification_rate(), 3),
    ]);
    t.row(vec![String::new(), "end-to-end recall".into(), fmt_f(agg.end_to_end_rate(), 3)]);
    t.row(vec![
        String::new(),
        "false positives / frame".into(),
        fmt_f(agg.false_positives as f64 / n_frames.max(1) as f64, 2),
    ]);
    TableOutput { table: 101, text: t.render(), records: Vec::new(), pairs: 0 }
}

/// E2: dataset heterogeneity for the Siamese pipeline.
///
/// Trains the identical architecture twice — catalog-only (the paper's
/// §3.4 recipe) vs. mixed-domain pairs with dropout + weight decay — and
/// evaluates both on the NYU+SNS1 test pairs where the paper's model
/// collapsed.
pub fn table_e2(cfg: &ReproConfig, verbose: bool) -> TableOutput {
    let sns2 = shapenet_set2(cfg.seed);
    let nyu = cfg_nyu(cfg);
    let sns1 = shapenet_set1(cfg.seed);
    let test_pairs = nyu_sns1_test_pairs(&nyu, &sns1, cfg.seed);

    // Condition (a): the paper's catalog-only training. An undersized
    // net resolution is a typed error; surface it as a degraded table
    // rather than a panic.
    let trained = taor_core::try_train_siamese(&sns2, &cfg.siamese, |s| {
        if verbose {
            eprintln!("  [catalog] epoch {} loss {:.5}", s.epoch, s.mean_loss);
        }
    });
    let (net_a, _) = match trained {
        Ok(out) => out,
        Err(e) => return degraded_e2(&e),
    };
    let eval_a = evaluate_siamese(&net_a, &test_pairs, &cfg.siamese.net);

    // Condition (b): mixed-domain pairs + regularisation.
    let mut net_cfg = cfg.siamese.net.clone();
    net_cfg.dropout = 0.3;
    let mut train_cfg = cfg.siamese.train.clone();
    train_cfg.weight_decay = 1e-4;
    let pairs = mixed_training_pairs(&sns2, &nyu, cfg.siamese.n_train_pairs, cfg.seed);
    let samples = pairs_to_samples(&pairs, &net_cfg);
    let mut net_b = match NormXCorrNet::new(net_cfg.clone()) {
        Ok(net) => net,
        Err(e) => return degraded_e2(&taor_core::Error::from(e)),
    };
    train(&mut net_b, &samples, &train_cfg, |s| {
        if verbose {
            eprintln!("  [mixed]   epoch {} loss {:.5}", s.epoch, s.mean_loss);
        }
    });
    let eval_b = evaluate_siamese(&net_b, &test_pairs, &net_cfg);

    let mut t = TextTable::new(
        "Extension E2: catalog-only vs heterogeneous training, NYU+SNS1 pairs.",
        &["Training", "Accuracy", "Sim P", "Sim R", "Dis P", "Dis R"],
    );
    let push = |t: &mut TextTable, name: &str, e: &BinaryEvaluation| {
        t.row(vec![
            name.into(),
            fmt_f(e.accuracy, 3),
            fmt_f(e.similar.precision, 2),
            fmt_f(e.similar.recall, 2),
            fmt_f(e.dissimilar.precision, 2),
            fmt_f(e.dissimilar.recall, 2),
        ]);
    };
    push(&mut t, "Catalog-only (paper §3.4)", &eval_a);
    push(&mut t, "Mixed-domain + dropout/WD", &eval_b);
    let records = vec![
        ExperimentRecord {
            table: 102,
            approach: "Catalog-only".into(),
            dataset: "NYU+SNS1 pairs".into(),
            cumulative_accuracy: Some(eval_a.accuracy),
            evaluation: None,
            binary: Some(eval_a),
        },
        ExperimentRecord {
            table: 102,
            approach: "Mixed-domain + dropout/WD".into(),
            dataset: "NYU+SNS1 pairs".into(),
            cumulative_accuracy: Some(eval_b.accuracy),
            evaluation: None,
            binary: Some(eval_b),
        },
    ];
    TableOutput { table: 102, text: t.render(), records, pairs: 0 }
}

/// A degraded E2 table: the typed error in place of results, so a bad
/// configuration reports itself instead of crashing the run.
fn degraded_e2(e: &taor_core::Error) -> TableOutput {
    let mut t = TextTable::new(
        "Extension E2: catalog-only vs heterogeneous training, NYU+SNS1 pairs.",
        &["Training", "Error"],
    );
    t.row(vec!["(degraded)".into(), e.to_string()]);
    TableOutput { table: 102, text: t.render(), records: Vec::new(), pairs: 0 }
}

/// E3: reference-set cardinality scaling ("augmenting the cardinality of
/// each class"): hybrid weighted-sum accuracy on the NYU queries as the
/// catalog grows from the paper's 2 models × ~4 views to larger sets.
pub fn table_e3(cfg: &ReproConfig) -> TableOutput {
    let nyu = cfg_nyu(cfg);
    let queries = prepare_views(&nyu, Background::Black);
    let truth = truth_of(&queries);
    let hybrid = HybridConfig { alpha: cfg.alpha, beta: cfg.beta, ..Default::default() };

    let mut t = TextTable::new(
        "Extension E3: hybrid accuracy vs catalog size (NYU queries).",
        &["Models/class", "Views/model", "Catalog size", "Accuracy"],
    );
    let mut records = Vec::new();
    for &(models, views) in &[(2usize, 4usize), (2, 8), (4, 8), (8, 8)] {
        let catalog = taor_data::catalog_custom(cfg.seed, models, views);
        let refs = prepare_views(&catalog, Background::White);
        let preds = classify_hybrid(&queries, &refs, &hybrid, Aggregation::WeightedSum);
        let e = evaluate(&truth, &preds);
        t.row(vec![
            models.to_string(),
            views.to_string(),
            catalog.len().to_string(),
            fmt_f(e.cumulative_accuracy, 3),
        ]);
        records.push(ExperimentRecord {
            table: 103,
            approach: format!("{models}x{views}"),
            dataset: "NYU v. custom catalog".into(),
            cumulative_accuracy: Some(e.cumulative_accuracy),
            evaluation: Some(e),
            binary: None,
        });
    }
    TableOutput { table: 103, text: t.render(), records, pairs: 0 }
}

fn cfg_nyu(cfg: &ReproConfig) -> taor_data::Dataset {
    match cfg.nyu_per_class {
        Some(n) => taor_data::nyu_set_subsampled(cfg.seed, n),
        None => taor_data::nyu_set(cfg.seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ReproConfig {
        let mut cfg = ReproConfig::quick(2019);
        // nyu_sns1_test_pairs samples 10 crops per class, so keep >= 10.
        cfg.nyu_per_class = Some(10);
        cfg.siamese = SiameseConfig::quick();
        cfg.siamese.n_train_pairs = 60;
        cfg.siamese.train.max_epochs = 1;
        cfg
    }

    #[test]
    fn e1_produces_all_metrics() {
        let out = table_e1(&tiny(), 2);
        for metric in [
            "classification accuracy",
            "detection rate",
            "classification | detected",
            "end-to-end recall",
            "false positives",
        ] {
            assert!(out.text.contains(metric), "missing {metric}\n{}", out.text);
        }
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "trains and evaluates two networks on the fixed 8,200-pair set; minutes in release, hours unoptimised — run with --release"
    )]
    fn e2_compares_two_conditions() {
        let out = table_e2(&tiny(), false);
        assert!(out.text.contains("Catalog-only"));
        assert!(out.text.contains("Mixed-domain"));
        assert_eq!(out.records.len(), 2);
    }

    #[test]
    fn e3_scales_the_catalog() {
        let out = table_e3(&tiny());
        assert_eq!(out.records.len(), 4);
        assert!(out.text.contains("Catalog size"));
        assert!(out.text.contains("640")); // 8 models x 8 views x 10 classes
    }
}
