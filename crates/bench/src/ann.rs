//! ANN-vs-brute gallery benchmark (`bench_ann` binary).
//!
//! The paper's matcher is brute force, which §3.3 justifies by the
//! "fairly limited size of the input datasets" (~10² views). This module
//! measures where that argument stops holding: it scales the procedural
//! catalog to ShapeNet-like view counts with [`gallery_grid`], extracts
//! one cheap global descriptor per view (a 256-d gist-style gray grid
//! plus a 256-bit BRIEF-style binary signature), and races the PR's
//! sub-linear indexes — HNSW for float rows, exact multi-index hashing
//! for binary codes — against per-query brute-force scans, reporting
//! recall@k alongside the speedup so the accuracy cost is never silent.
//!
//! Queries are near-duplicate re-renders of gallery cells (the same model
//! grid under a different jitter stream), i.e. the serving workload: "a
//! robot sees a view it has almost catalogued".

use std::time::Instant;

use serde::Serialize;
use taor_data::gallery_grid;
use taor_features::{
    exact_knn_binary, exact_knn_float, mean_recall, recall_at_k, recall_at_k_u32,
    BinaryDescriptors, FloatDescriptors, HnswIndex, HnswParams, MihIndex, MihParams,
};
use taor_imgproc::image::RgbImage;

/// Schema tag written into every record.
pub const ANN_PERF_SCHEMA: &str = "taor-bench-ann-perf-v1";

/// Cells per side of the gist grid; the float descriptor is
/// `GIST_GRID`² wide.
const GIST_GRID: usize = 16;
/// Bits in the binary signature (pairwise gist-cell comparisons).
const SIG_BITS: usize = 256;
const SIG_BYTES: usize = SIG_BITS / 8;

/// How the benchmark gallery is built and probed.
#[derive(Debug, Clone)]
pub struct AnnBenchConfig {
    /// Master seed: models, views and the signature's comparison pairs.
    pub seed: u64,
    /// Distinct procedural models per class.
    pub models_per_class: usize,
    /// Yaw steps in the view grid.
    pub yaw_steps: usize,
    /// Pitch steps in the view grid.
    pub pitch_steps: usize,
    /// Near-duplicate queries sampled evenly across the gallery.
    pub queries: usize,
    /// Neighbours requested per query.
    pub k: usize,
}

impl AnnBenchConfig {
    /// The committed-record scale: 10 classes × 42 models × 5×5 views
    /// = 10,500 gallery views.
    pub fn full(seed: u64) -> Self {
        AnnBenchConfig {
            seed,
            models_per_class: 42,
            yaw_steps: 5,
            pitch_steps: 5,
            queries: 200,
            k: 10,
        }
    }

    /// A debug-feasible smoke scale (240 views) for tests and CI sanity.
    pub fn quick(seed: u64) -> Self {
        AnnBenchConfig {
            seed,
            models_per_class: 6,
            yaw_steps: 2,
            pitch_steps: 2,
            queries: 24,
            k: 5,
        }
    }

    /// Total gallery views this config renders.
    pub fn gallery_views(&self) -> usize {
        taor_data::ObjectClass::COUNT * self.models_per_class * self.yaw_steps * self.pitch_steps
    }
}

/// One index's race against its brute-force oracle.
#[derive(Debug, Clone, Serialize)]
pub struct AnnModePerf {
    /// `hnsw` or `mih`.
    pub index: String,
    /// Index construction, milliseconds.
    pub build_ms: f64,
    /// Mean brute-force scan per query, microseconds.
    pub brute_us_per_query: f64,
    /// Mean indexed lookup per query, microseconds.
    pub ann_us_per_query: f64,
    /// `brute_us_per_query / ann_us_per_query`.
    pub speedup: f64,
    /// Fraction of queries whose top-1 matches an exact top-1 distance.
    pub recall_at_1: f64,
    /// Mean recall of the exact top-k set (tie-tolerant).
    pub recall_at_k: f64,
}

/// One full `bench_ann` run.
#[derive(Debug, Clone, Serialize)]
pub struct AnnPerfRecord {
    /// Always [`ANN_PERF_SCHEMA`].
    pub schema: String,
    pub seed: u64,
    /// Gallery size in views.
    pub gallery_views: usize,
    /// Near-duplicate queries probed.
    pub queries: usize,
    /// Float descriptor width.
    pub dim: usize,
    /// Binary signature width in bits.
    pub bits: usize,
    /// Neighbours requested per query.
    pub k: usize,
    /// HNSW over the gist descriptors vs a brute L2 scan.
    pub float: AnnModePerf,
    /// MIH over the binary signatures vs a brute Hamming scan.
    pub binary: AnnModePerf,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Gist-style global descriptor: mean gray level of each cell in a
/// `GIST_GRID`×`GIST_GRID` partition of the view.
pub fn gist_descriptor(img: &RgbImage) -> Vec<f32> {
    let (w, h) = (img.width() as usize, img.height() as usize);
    let mut sums = vec![0.0f64; GIST_GRID * GIST_GRID];
    let mut counts = vec![0u32; GIST_GRID * GIST_GRID];
    for y in 0..h {
        let cy = (y * GIST_GRID / h.max(1)).min(GIST_GRID - 1);
        for x in 0..w {
            let cx = (x * GIST_GRID / w.max(1)).min(GIST_GRID - 1);
            let p = img.pixel(x as u32, y as u32);
            let gray = (u32::from(p[0]) + u32::from(p[1]) + u32::from(p[2])) as f64 / 3.0;
            let cell = cy * GIST_GRID + cx;
            if let (Some(s), Some(c)) = (sums.get_mut(cell), counts.get_mut(cell)) {
                *s += gray;
                *c += 1;
            }
        }
    }
    sums.iter()
        .zip(&counts)
        .map(|(&s, &c)| if c == 0 { 0.0 } else { (s / f64::from(c)) as f32 })
        .collect()
}

/// BRIEF-style binary signature: bit `j` compares two gist cells drawn
/// from a seeded splitmix stream. Purely a function of `(gist, seed)`.
pub fn binary_signature(gist: &[f32], seed: u64) -> Vec<u8> {
    let mut out = vec![0u8; SIG_BYTES];
    let mut state = seed ^ 0xB51F_5EED_0000_0001;
    for bit in 0..SIG_BITS {
        let a = (splitmix(&mut state) as usize) % gist.len().max(1);
        let b = (splitmix(&mut state) as usize) % gist.len().max(1);
        let (ga, gb) = (gist.get(a).copied().unwrap_or(0.0), gist.get(b).copied().unwrap_or(0.0));
        if ga < gb {
            if let Some(byte) = out.get_mut(bit / 8) {
                *byte |= 1 << (bit % 8);
            }
        }
    }
    out
}

/// Descriptor tables for one rendered gallery (or query set).
pub struct DescribedViews {
    pub float: FloatDescriptors,
    pub binary: BinaryDescriptors,
}

/// Render `gallery_grid(cfg, jitter)` and describe every view.
pub fn describe_grid(cfg: &AnnBenchConfig, jitter: u64, take_every: usize) -> DescribedViews {
    let ds = gallery_grid(cfg.seed, cfg.models_per_class, cfg.yaw_steps, cfg.pitch_steps, jitter);
    let mut float = FloatDescriptors::new(GIST_GRID * GIST_GRID);
    let mut binary = BinaryDescriptors::new(SIG_BYTES);
    for li in ds.images.iter().step_by(take_every.max(1)) {
        let g = gist_descriptor(&li.image);
        binary.push(&binary_signature(&g, cfg.seed));
        float.push(&g);
    }
    DescribedViews { float, binary }
}

/// Run the full race: render, index, probe, report.
pub fn run_ann_bench(cfg: &AnnBenchConfig) -> taor_features::Result<AnnPerfRecord> {
    let gallery = describe_grid(cfg, 0, 1);
    let n = gallery.float.len();
    // Queries: the same grid cells re-rendered under jitter stream 1,
    // thinned to roughly `cfg.queries` evenly spaced views.
    let stride = (n / cfg.queries.max(1)).max(1);
    let queries = describe_grid(cfg, 1, stride);
    let nq = queries.float.len();
    let k = cfg.k.max(1);

    // --- Float: HNSW vs brute L2. -------------------------------------
    let started = Instant::now();
    let hnsw = HnswIndex::build(
        gallery.float.clone(),
        HnswParams { seed: cfg.seed, ..HnswParams::default() },
    )?;
    let hnsw_build_ms = started.elapsed().as_secs_f64() * 1e3;

    let started = Instant::now();
    let exact_f: Vec<Vec<(usize, f32)>> =
        (0..nq).map(|i| exact_knn_float(queries.float.row(i), &gallery.float, k)).collect();
    let brute_f_us = started.elapsed().as_secs_f64() * 1e6 / nq.max(1) as f64;

    let started = Instant::now();
    let approx_f: Vec<Vec<(usize, f32)>> =
        (0..nq).map(|i| hnsw.search(queries.float.row(i), k)).collect();
    let ann_f_us = started.elapsed().as_secs_f64() * 1e6 / nq.max(1) as f64;

    let r1_f: Vec<f64> = approx_f.iter().zip(&exact_f).map(|(a, e)| recall_at_k(a, e, 1)).collect();
    let rk_f: Vec<f64> = approx_f.iter().zip(&exact_f).map(|(a, e)| recall_at_k(a, e, k)).collect();
    let float = AnnModePerf {
        index: "hnsw".to_string(),
        build_ms: hnsw_build_ms,
        brute_us_per_query: brute_f_us,
        ann_us_per_query: ann_f_us,
        speedup: brute_f_us / ann_f_us.max(1e-9),
        recall_at_1: mean_recall(&r1_f),
        recall_at_k: mean_recall(&rk_f),
    };

    // --- Binary: MIH vs brute Hamming. --------------------------------
    let started = Instant::now();
    let mih = MihIndex::build(gallery.binary.clone(), MihParams::default())?;
    let mih_build_ms = started.elapsed().as_secs_f64() * 1e3;

    let qwords: Vec<Vec<u64>> = (0..nq)
        .map(|i| {
            let row = queries.binary.row(i);
            let mut words = vec![0u64; row.len().div_ceil(8)];
            for (w, chunk) in words.iter_mut().zip(row.chunks(8)) {
                let mut bytes = [0u8; 8];
                bytes[..chunk.len()].copy_from_slice(chunk);
                *w = u64::from_le_bytes(bytes);
            }
            words
        })
        .collect();

    let started = Instant::now();
    let exact_b: Vec<Vec<(usize, u32)>> =
        qwords.iter().map(|q| exact_knn_binary(q, &gallery.binary, k)).collect();
    let brute_b_us = started.elapsed().as_secs_f64() * 1e6 / nq.max(1) as f64;

    let started = Instant::now();
    let approx_b: Vec<Vec<(usize, u32)>> = qwords.iter().map(|q| mih.search_words(q, k)).collect();
    let ann_b_us = started.elapsed().as_secs_f64() * 1e6 / nq.max(1) as f64;

    let r1_b: Vec<f64> =
        approx_b.iter().zip(&exact_b).map(|(a, e)| recall_at_k_u32(a, e, 1)).collect();
    let rk_b: Vec<f64> =
        approx_b.iter().zip(&exact_b).map(|(a, e)| recall_at_k_u32(a, e, k)).collect();
    let binary = AnnModePerf {
        index: "mih".to_string(),
        build_ms: mih_build_ms,
        brute_us_per_query: brute_b_us,
        ann_us_per_query: ann_b_us,
        speedup: brute_b_us / ann_b_us.max(1e-9),
        recall_at_1: mean_recall(&r1_b),
        recall_at_k: mean_recall(&rk_b),
    };

    Ok(AnnPerfRecord {
        schema: ANN_PERF_SCHEMA.to_string(),
        seed: cfg.seed,
        gallery_views: n,
        queries: nq,
        dim: GIST_GRID * GIST_GRID,
        bits: SIG_BITS,
        k,
        float,
        binary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_gallery_indexes_hit_the_recall_floor() {
        // The scaled-gallery recall gate at a debug-feasible size: the
        // same pipeline CI runs at 10,500 views in release mode.
        let record = run_ann_bench(&AnnBenchConfig::quick(2019)).expect("bench runs");
        assert_eq!(record.gallery_views, 240);
        assert!(record.queries >= 20);
        assert!(record.float.recall_at_1 >= 0.99, "hnsw recall@1 = {}", record.float.recall_at_1);
        assert!(
            (record.binary.recall_at_1 - 1.0).abs() < 1e-12,
            "mih is exact, recall@1 = {}",
            record.binary.recall_at_1
        );
        assert!(
            (record.binary.recall_at_k - 1.0).abs() < 1e-12,
            "mih is exact, recall@k = {}",
            record.binary.recall_at_k
        );
    }

    #[test]
    fn descriptors_are_deterministic_and_jitter_streams_differ() {
        let cfg = AnnBenchConfig::quick(7);
        let a = describe_grid(&cfg, 0, 5);
        let b = describe_grid(&cfg, 0, 5);
        assert_eq!(a.float.as_slice(), b.float.as_slice(), "same jitter, same bytes");
        assert_eq!(a.binary.row(0), b.binary.row(0));
        let c = describe_grid(&cfg, 1, 5);
        assert_ne!(a.float.as_slice(), c.float.as_slice(), "jitter must perturb the views");
    }
}
