//! # taor-bench
//!
//! The reproduction harness: one generator per paper table (the paper has
//! nine tables and no figures), shared between the `repro` binary and the
//! integration tests, plus the Criterion microbenches under `benches/`.
//!
//! Table index (see DESIGN.md §3):
//!
//! * **Table 1** — dataset statistics,
//! * **Table 2** — cumulative accuracy of the exploratory pipelines
//!   (baseline, shape-only ×3, colour-only ×4, hybrid ×3) on NYU v SNS1
//!   and SNS1 v SNS2,
//! * **Table 3** — cumulative accuracy of SIFT/SURF/ORB on SNS1 v SNS2,
//! * **Table 4** — Normalized-X-Corr binary metrics on the SNS1 and
//!   NYU+SNS1 pair sets,
//! * **Tables 5–7** — class-wise shape / colour / hybrid results on NYU v
//!   SNS1,
//! * **Table 8** — class-wise hybrid results on SNS2 v SNS1,
//! * **Table 9** — class-wise SIFT/SURF/ORB results on SNS1 v SNS2.

#![forbid(unsafe_code)]

pub mod ann;
pub mod extensions;
pub mod perf;
pub mod repro;
pub mod serve_perf;

pub use ann::{run_ann_bench, AnnBenchConfig, AnnModePerf, AnnPerfRecord};
pub use perf::{PerfRecord, TablePerf};
pub use repro::{PreparedRepro, ReproConfig, TableOutput};
pub use serve_perf::{run_serve_bench, ConnMode, ServeBenchConfig, ServePerfRecord, WidthPerf};

use taor_core::prelude::*;

/// RANSAC-verified descriptor classification with the default geometry
/// parameters (shared by the Table 3 ablation).
pub(crate) fn repro_verified(
    queries: &DescriptorIndex,
    reference: &DescriptorIndex,
) -> Vec<taor_data::ObjectClass> {
    classify_descriptors_verified(queries, reference, 0.75, &taor_features::RansacParams::default())
}
