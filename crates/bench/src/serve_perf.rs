//! Load generator for the recognition service (`bench_serve` binary).
//!
//! Spins up an in-process [`taor_serve::Server`] per worker width, fires
//! a fixed request mix at it from concurrent client threads (optionally
//! laced with chaos-harness faults), and records per-width latency
//! percentiles, throughput and the shed/timeout/degraded counts into a
//! versioned JSON record under `bench_records/`.

use std::sync::Arc;
use std::time::{Duration, Instant};
use taor_model::sync::{AtomicUsize, Ordering};

use serde::Serialize;
use taor_core::wire::encode_rgb8;
use taor_imgproc::image::RgbImage;
use taor_serve::{chaos, RecognizerService, Server, ServerConfig, ServiceConfig};

/// Schema tag written into every record. v2 adds per-entry connection
/// modes: `close` opens a fresh TCP connection per request (the PR 7
/// baseline), `keepalive` reuses one connection per client thread for
/// its whole share of the load.
pub const SERVE_PERF_SCHEMA: &str = "taor-bench-serve-perf-v2";

/// How the load generator's clients use connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnMode {
    /// One TCP connection per request: connect, ask, read, close.
    Close,
    /// Each client thread keeps one connection open and sends its whole
    /// share of requests down it.
    KeepAlive,
}

impl ConnMode {
    /// The token used in `--modes` and in the record.
    pub fn token(self) -> &'static str {
        match self {
            ConnMode::Close => "close",
            ConnMode::KeepAlive => "keepalive",
        }
    }
}

impl std::str::FromStr for ConnMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "close" => Ok(ConnMode::Close),
            "keepalive" | "keep-alive" => Ok(ConnMode::KeepAlive),
            other => Err(format!("unknown connection mode {other:?}")),
        }
    }
}

/// Load-test results at one (worker-pool width, connection mode) point.
#[derive(Debug, Clone, Serialize)]
pub struct WidthPerf {
    /// Recognition worker threads in the server.
    pub width: usize,
    /// Connection mode: `close` or `keepalive`.
    pub mode: String,
    /// Connections the well-formed load used: one per request in
    /// `close` mode, one per client thread in `keepalive` mode
    /// (plus reconnects after server-side rotation).
    pub connections: usize,
    /// Well-formed requests fired.
    pub requests: usize,
    /// 200 answers.
    pub ok: usize,
    /// 429 answers (admission queue full).
    pub shed: usize,
    /// 504 answers (deadline missed).
    pub timeouts: usize,
    /// 200 answers whose body said `degraded: true`.
    pub degraded: usize,
    /// 400 answers to the deliberately malformed part of the mix.
    pub malformed: usize,
    /// Median request latency (well-formed requests only).
    pub p50_ms: f64,
    /// 99th-percentile request latency.
    pub p99_ms: f64,
    /// Well-formed requests answered per wall-clock second.
    pub req_per_sec: f64,
}

/// One full `bench_serve` run.
#[derive(Debug, Clone, Serialize)]
pub struct ServePerfRecord {
    /// Always [`SERVE_PERF_SCHEMA`].
    pub schema: String,
    /// Gallery/network seed the servers used.
    pub seed: u64,
    /// Whether the Siamese pipeline was enabled.
    pub siamese: bool,
    /// Whether chaos faults were interleaved with the load.
    pub chaos: bool,
    /// Results per (width, mode) pair, in the order benchmarked.
    pub widths: Vec<WidthPerf>,
}

/// Tunables for one load run.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Worker widths to benchmark, e.g. `[1, 4]`.
    pub widths: Vec<usize>,
    /// Well-formed requests per width.
    pub requests: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Gallery/network seed.
    pub seed: u64,
    /// Run the full Siamese pipeline (debug builds: keep off).
    pub siamese: bool,
    /// Interleave chaos-harness faults with the load.
    pub chaos: bool,
    /// Connection modes to benchmark at every width.
    pub modes: Vec<ConnMode>,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            widths: vec![1, 4],
            requests: 64,
            clients: 4,
            seed: 2019,
            siamese: true,
            chaos: false,
            modes: vec![ConnMode::Close, ConnMode::KeepAlive],
        }
    }
}

fn bench_crop() -> Vec<u8> {
    let mut img = RgbImage::new(48, 48);
    for y in 0..48 {
        for x in 0..48 {
            img.put_pixel(x, y, [(x * 5) as u8, (y * 5) as u8, ((x + y) * 2) as u8]);
        }
    }
    encode_rgb8(&img)
}

/// `q`-th percentile (0..=100) of `sorted` latencies, in milliseconds.
fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted.get(rank.min(sorted.len() - 1)).map(|d| d.as_secs_f64() * 1e3).unwrap_or(0.0)
}

/// One measured exchange in the chosen connection mode. In `keepalive`
/// mode the connection is lazily (re)opened — a server-side rotation or
/// error costs one reconnect, tallied by the caller.
fn measured_post(
    mode: ConnMode,
    addr: std::net::SocketAddr,
    conn: &mut Option<chaos::PersistentClient>,
    reconnects: &mut usize,
    crop: &[u8],
) -> std::io::Result<(u16, Vec<u8>)> {
    match mode {
        ConnMode::Close => chaos::post_crop(addr, crop),
        ConnMode::KeepAlive => {
            if conn.is_none() {
                *conn = Some(chaos::PersistentClient::connect(addr)?);
                *reconnects += 1;
            }
            let client = conn.as_mut().ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::NotConnected, "no connection")
            })?;
            match client.post_crop(crop) {
                Ok(answer) => Ok(answer),
                Err(e) => {
                    // Rotation or breakage: drop the socket; the next
                    // request reconnects.
                    *conn = None;
                    Err(e)
                }
            }
        }
    }
}

/// Run the load mix against one server and tally the outcome.
fn bench_width(cfg: &ServeBenchConfig, width: usize, mode: ConnMode) -> WidthPerf {
    let service = Arc::new(
        RecognizerService::new(ServiceConfig {
            seed: cfg.seed,
            use_siamese: cfg.siamese,
            ..ServiceConfig::default()
        })
        .expect("service builds"),
    );
    let server = Server::spawn(
        service,
        ServerConfig { workers: width, queue_cap: 32, ..ServerConfig::default() },
    )
    .expect("server binds");
    let addr = server.local_addr();
    let crop = Arc::new(bench_crop());

    let fired = Arc::new(AtomicUsize::new(0));
    let total = cfg.requests;
    let start = Instant::now();
    let clients: Vec<_> = (0..cfg.clients.max(1))
        .map(|c| {
            let crop = Arc::clone(&crop);
            let fired = Arc::clone(&fired);
            let chaos_on = cfg.chaos;
            std::thread::spawn(move || {
                let mut latencies = Vec::new();
                let (mut ok, mut shed, mut timeouts, mut degraded, mut malformed) =
                    (0usize, 0usize, 0usize, 0usize, 0usize);
                let mut conn: Option<chaos::PersistentClient> = None;
                let mut conns_used = 0usize;
                let mut i = 0usize;
                // Ordering::Relaxed — a shared work counter; clients only
                // need each increment to be unique, not ordered against
                // any other memory.
                while fired.fetch_add(1, Ordering::Relaxed) < total {
                    // One client interleaves faults with its load when
                    // chaos is on: every 8th request misbehaves.
                    if chaos_on && c == 0 && i % 8 == 3 {
                        let _ = chaos::truncated_body(addr);
                        let _ = chaos::disconnect_mid_request(addr);
                        let _ = chaos::smuggled_framing(addr);
                    }
                    if chaos_on && i % 8 == 5 {
                        if let Ok((status, _)) = chaos::post_crop(addr, b"not a TAOR buffer") {
                            if status == 400 {
                                malformed += 1;
                            }
                        }
                    }
                    let t0 = Instant::now();
                    if let Ok((status, body)) =
                        measured_post(mode, addr, &mut conn, &mut conns_used, &crop)
                    {
                        latencies.push(t0.elapsed());
                        match status {
                            200 => {
                                ok += 1;
                                if body.windows(16).any(|w| w == b"\"degraded\":true,") {
                                    degraded += 1;
                                }
                            }
                            429 => shed += 1,
                            504 => timeouts += 1,
                            _ => {}
                        }
                    }
                    if mode == ConnMode::Close {
                        conns_used += 1;
                    }
                    i += 1;
                }
                (latencies, ok, shed, timeouts, degraded, malformed, conns_used)
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let (mut ok, mut shed, mut timeouts, mut degraded, mut malformed, mut connections) =
        (0usize, 0usize, 0usize, 0usize, 0usize, 0usize);
    for h in clients {
        let (l, o, s, t, d, m, cu) = h.join().expect("client thread");
        latencies.extend(l);
        ok += o;
        shed += s;
        timeouts += t;
        degraded += d;
        malformed += m;
        connections += cu;
    }
    let elapsed = start.elapsed().as_secs_f64();
    server.shutdown();

    latencies.sort_unstable();
    let answered = latencies.len();
    WidthPerf {
        width,
        mode: mode.token().to_string(),
        connections,
        requests: answered,
        ok,
        shed,
        timeouts,
        degraded,
        malformed,
        p50_ms: percentile_ms(&latencies, 50.0),
        p99_ms: percentile_ms(&latencies, 99.0),
        req_per_sec: if elapsed > 0.0 { answered as f64 / elapsed } else { 0.0 },
    }
}

/// Benchmark every configured (width, mode) pair and assemble the
/// record: close-per-request first at each width, so the keep-alive
/// entry that follows reads as the delta over the baseline.
pub fn run_serve_bench(cfg: &ServeBenchConfig) -> ServePerfRecord {
    let mut modes = cfg.modes.clone();
    if modes.is_empty() {
        modes.push(ConnMode::Close);
    }
    let widths = cfg
        .widths
        .iter()
        .flat_map(|&w| modes.iter().map(move |&m| (w, m)))
        .map(|(w, m)| bench_width(cfg, w.max(1), m))
        .collect();
    ServePerfRecord {
        schema: SERVE_PERF_SCHEMA.to_string(),
        seed: cfg.seed,
        siamese: cfg.siamese,
        chaos: cfg.chaos,
        widths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    #[test]
    fn percentiles_on_small_sorted_sets() {
        assert_eq!(percentile_ms(&[], 50.0), 0.0);
        let one = [Duration::from_millis(10)];
        assert_eq!(percentile_ms(&one, 50.0), 10.0);
        assert_eq!(percentile_ms(&one, 99.0), 10.0);
        let four: Vec<Duration> = (1..=4).map(Duration::from_millis).collect();
        assert_eq!(percentile_ms(&four, 0.0), 1.0);
        assert_eq!(percentile_ms(&four, 100.0), 4.0);
        assert!(percentile_ms(&four, 50.0) >= 2.0);
    }

    /// A tiny end-to-end load run in both connection modes: every
    /// well-formed request is answered, both modes are tallied, the
    /// record round-trips through JSON.
    #[test]
    fn small_bench_run_produces_a_complete_record() {
        let cfg = ServeBenchConfig {
            widths: vec![1],
            requests: 6,
            clients: 2,
            siamese: false,
            chaos: false,
            ..ServeBenchConfig::default()
        };
        let rec = run_serve_bench(&cfg);
        assert_eq!(rec.widths.len(), 2, "one entry per (width, mode) pair");
        for w in &rec.widths {
            assert_eq!(w.width, 1);
            assert!(w.ok > 0, "some requests must be answered 200: {w:?}");
            assert_eq!(w.ok + w.shed + w.timeouts, w.requests, "every answer tallied: {w:?}");
            assert!(w.p99_ms >= w.p50_ms);
            assert!(w.connections > 0, "connection usage must be counted: {w:?}");
        }
        let close = &rec.widths[0];
        let keepalive = &rec.widths[1];
        assert_eq!(close.mode, "close");
        assert_eq!(keepalive.mode, "keepalive");
        assert!(
            keepalive.connections < close.connections,
            "keep-alive must reuse connections: {} vs {}",
            keepalive.connections,
            close.connections
        );

        let json = serde_json::to_string_pretty(&rec).expect("serialises");
        let v: Value = serde_json::from_str(&json).expect("parses back");
        let Value::Map(fields) = &v else { panic!("record must be a JSON object") };
        let get = |name: &str| serde::field(fields, name).expect(name);
        assert_eq!(get("schema"), &Value::Str(SERVE_PERF_SCHEMA.into()));
        let Value::Seq(widths) = get("widths") else { panic!("widths must be a list") };
        assert_eq!(widths.len(), 2);
    }

    #[test]
    fn conn_mode_tokens_roundtrip() {
        assert_eq!("close".parse::<ConnMode>(), Ok(ConnMode::Close));
        assert_eq!("keepalive".parse::<ConnMode>(), Ok(ConnMode::KeepAlive));
        assert_eq!("keep-alive".parse::<ConnMode>(), Ok(ConnMode::KeepAlive));
        assert!("quic".parse::<ConnMode>().is_err());
        assert_eq!(ConnMode::Close.token(), "close");
        assert_eq!(ConnMode::KeepAlive.token(), "keepalive");
    }
}
