//! Stress test for the thread pool's atomic chunk hand-off
//! (`vendor/rayon/src/pool.rs`): at width ≥ 8, many small parallel
//! regions in a row must deliver every index exactly once and publish
//! every chunk's writes to the caller.
//!
//! The hand-off under test is the `next.fetch_add(Relaxed)` chunk
//! allocator paired with the `finished.fetch_add(AcqRel)` completion
//! latch — the same `ChunkLatch` protocol that `taor-model` explores
//! exhaustively at small widths (`crates/model/tests/pool_handoff.rs`).
//! Both suites phrase the postconditions through
//! [`taor_model::invariants`], so the exhaustive checker and this
//! statistical-at-scale test can never drift apart on what "correct"
//! means: if the allocator double-delivered, `assert_exactly_once` sees
//! overlapping claims; if the latch's Release edge were dropped,
//! `assert_published` sees stale zeros after the region "completed".
//!
//! `TAOR_THREADS` is latched by a `OnceLock` on first pool use, so this
//! test pins it in its own process (each integration test binary is a
//! separate process) before any parallel call runs.

use rayon::prelude::*;
use taor_model::invariants::{assert_exactly_once, assert_published};
use taor_model::sync::{AtomicUsize, Ordering};

/// Force a wide pool before the first parallel region latches the
/// width. Safe in edition 2021; this binary is single-threaded here.
fn pin_width() {
    static PIN: std::sync::Once = std::sync::Once::new();
    PIN.call_once(|| std::env::set_var("TAOR_THREADS", "8"));
}

#[test]
fn every_index_is_delivered_exactly_once_under_contention() {
    pin_width();
    assert_eq!(rayon::current_num_threads(), 8, "width must latch to 8");
    // Many rounds of small regions maximise hand-off races: with ~4
    // chunks per thread, each round has ~32 fetch_add claims racing.
    for round in 0..200 {
        let n = 512 + round; // vary so chunk boundaries shift
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        (0..n).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        // Each observed delivery becomes a width-1 claim; the shared
        // invariant then demands a disjoint exact cover of 0..n — a
        // double delivery overlaps, a lost index leaves a gap.
        let claims: Vec<(usize, usize)> = hits
            .iter()
            .enumerate()
            .flat_map(|(i, h)| {
                // The AcqRel completion latch orders these loads after
                // every worker's writes, so Relaxed reads see final
                // counts.
                let c = h.load(Ordering::Relaxed);
                std::iter::repeat_n((i, i + 1), c)
            })
            .collect();
        assert_exactly_once(n, &claims);
    }
}

#[test]
fn completed_regions_publish_all_writes_to_the_caller() {
    pin_width();
    // par_iter_mut hands out disjoint &mut chunks; after the region
    // joins, the caller must see every slot's final value (the Release
    // half of the latch) — a missed write here means a lost chunk.
    for round in 0..100 {
        let n = 1000 + 7 * round;
        let mut v = vec![0usize; n];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * 2 + 1);
        assert_published(&v, |i| i * 2 + 1);
    }
}

#[test]
fn nested_regions_stay_exact_under_width_8() {
    pin_width();
    // Nested parallel calls run inline on the worker (no work stealing),
    // so totals must still be exact with parallel outer regions.
    let total: usize = (0..64usize)
        .into_par_iter()
        .map(|a| {
            let inner: usize = (0..100usize).into_par_iter().map(|b| a + b).sum();
            inner
        })
        .sum();
    let expected: usize = (0..64).map(|a: usize| 100 * a + 4950).sum();
    assert_eq!(total, expected);
}
