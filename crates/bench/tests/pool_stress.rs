//! Stress test for the thread pool's atomic chunk hand-off
//! (`vendor/rayon/src/pool.rs`): at width ≥ 8, many small parallel
//! regions in a row must deliver every index exactly once and publish
//! every chunk's writes to the caller.
//!
//! The hand-off under test is the `next.fetch_add(Relaxed)` chunk
//! allocator paired with the `finished.fetch_add(AcqRel)` completion
//! latch: if the allocator ever handed the same chunk to two threads,
//! the per-index counters below would read 2; if the latch's Release
//! edge were dropped, the caller could observe stale zeros after the
//! region "completed".
//!
//! `TAOR_THREADS` is latched by a `OnceLock` on first pool use, so this
//! test pins it in its own process (each integration test binary is a
//! separate process) before any parallel call runs.

use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Force a wide pool before the first parallel region latches the
/// width. Safe in edition 2021; this binary is single-threaded here.
fn pin_width() {
    static PIN: std::sync::Once = std::sync::Once::new();
    PIN.call_once(|| std::env::set_var("TAOR_THREADS", "8"));
}

#[test]
fn every_index_is_delivered_exactly_once_under_contention() {
    pin_width();
    assert_eq!(rayon::current_num_threads(), 8, "width must latch to 8");
    // Many rounds of small regions maximise hand-off races: with ~4
    // chunks per thread, each round has ~32 fetch_add claims racing.
    for round in 0..200 {
        let n = 512 + round; // vary so chunk boundaries shift
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        (0..n).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            // The AcqRel completion latch orders these loads after every
            // worker's writes, so Relaxed reads see the final counts.
            let c = h.load(Ordering::Relaxed);
            assert_eq!(c, 1, "round {round}: index {i} delivered {c} times");
        }
    }
}

#[test]
fn completed_regions_publish_all_writes_to_the_caller() {
    pin_width();
    // par_iter_mut hands out disjoint &mut chunks; after the region
    // joins, the caller must see every slot's final value (the Release
    // half of the latch) — a missed write here means a lost chunk.
    for round in 0..100 {
        let n = 1000 + 7 * round;
        let mut v = vec![0usize; n];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * 2 + 1);
        assert!(
            v.iter().enumerate().all(|(i, &x)| x == i * 2 + 1),
            "round {round}: a chunk's writes were lost or stale"
        );
    }
}

#[test]
fn nested_regions_stay_exact_under_width_8() {
    pin_width();
    // Nested parallel calls run inline on the worker (no work stealing),
    // so totals must still be exact with parallel outer regions.
    let total: usize = (0..64usize)
        .into_par_iter()
        .map(|a| {
            let inner: usize = (0..100usize).into_par_iter().map(|b| a + b).sum();
            inner
        })
        .sum();
    let expected: usize = (0..64).map(|a: usize| 100 * a + 4950).sum();
    assert_eq!(total, expected);
}
