//! Thread-count determinism: quick-mode repro output must be byte-identical
//! whether the worker pool is disabled (`TAOR_THREADS=1`, the sequential
//! fast path in `vendor/rayon`) or running four workers (`TAOR_THREADS=4`).
//!
//! This is the end-to-end guarantee behind the pool's ordered-collect and
//! deterministic-reduction contract: parallelism may change *when* work
//! runs, never *what* it produces. The matcher's GEMM fast path rides the
//! same guarantee via its exact-rescore step.
//!
//! Tables 2 and 3 cover both matcher families (float L2 and binary
//! Hamming) plus the classification pipelines. Table 4 runs at a reduced
//! scale (`--train-pairs/--train-epochs/--eval-pairs`) — enough to push
//! real batched training and batched inference through the pool at both
//! widths without debug-mode runtime dominating the suite.

use std::process::Command;

fn repro_stdout(threads: &str, table: &str) -> Vec<u8> {
    repro_stdout_with(threads, &["--quick", "--table", table, "--seed", "7"])
}

fn repro_stdout_with(threads: &str, args: &[&str]) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .env("TAOR_THREADS", threads)
        .output()
        .expect("failed to spawn repro binary");
    let table = args.iter().position(|&a| a == "--table").map(|i| args[i + 1]).unwrap_or("?");
    assert!(
        out.status.success(),
        "repro --table {table} failed with TAOR_THREADS={threads}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// Cross-*process* determinism: two fresh spawns of the repro binary must
/// agree byte-for-byte. This is the regression test for the HashMap
/// iteration-order hazard in `segment::border_colors` and
/// `hybrid::argmin_grouped` — std's `RandomState` reseeds per process, so
/// any surviving hash-order dependence shows up as a diff between spawns.
#[test]
fn quick_repro_is_byte_identical_across_process_restarts() {
    for table in ["2", "3"] {
        let first = repro_stdout("2", table);
        let second = repro_stdout("2", table);
        assert!(!first.is_empty(), "table {table} produced no output");
        assert_eq!(
            first, second,
            "table {table}: stdout differs between two spawns of the same binary"
        );
    }
}

#[test]
fn quick_repro_is_byte_identical_across_thread_counts() {
    for table in ["2", "3"] {
        let one = repro_stdout("1", table);
        let four = repro_stdout("4", table);
        assert!(!one.is_empty(), "table {table} produced no output at TAOR_THREADS=1");
        assert_eq!(
            one, four,
            "table {table}: stdout differs between TAOR_THREADS=1 and TAOR_THREADS=4"
        );
    }
}

/// The batched trainer's micro partitioning and fixed-order tree
/// reduction, and the batched evaluation path, must make Table 4 —
/// training included — byte-identical at pool widths 1 and 4. Reduced
/// scale: 32 training pairs for one epoch, 64 evaluation pairs per set.
#[test]
fn table4_reduced_is_byte_identical_across_thread_counts() {
    let args = [
        "--quick",
        "--table",
        "4",
        "--seed",
        "7",
        "--train-pairs",
        "32",
        "--train-epochs",
        "1",
        "--eval-pairs",
        "64",
    ];
    let one = repro_stdout_with("1", &args);
    let four = repro_stdout_with("4", &args);
    assert!(!one.is_empty(), "table 4 produced no output at TAOR_THREADS=1");
    assert_eq!(one, four, "table 4: stdout differs between TAOR_THREADS=1 and TAOR_THREADS=4");
}

/// The `--index` gallery modes carry the same end-to-end guarantee as
/// flat matching: byte-identical Table 3 output across process restarts
/// and pool widths. MIH is exact by construction, so its stdout must
/// additionally equal the brute-force run bit-for-bit; HNSW is allowed
/// to differ from flat but never from itself.
#[test]
fn indexed_table3_is_deterministic_and_mih_matches_flat() {
    let flat = repro_stdout_with("2", &["--quick", "--table", "3", "--seed", "7"]);
    for index in ["hnsw", "mih"] {
        let args = ["--quick", "--table", "3", "--seed", "7", "--index", index];
        let first = repro_stdout_with("2", &args);
        let second = repro_stdout_with("2", &args);
        let narrow = repro_stdout_with("1", &args);
        let wide = repro_stdout_with("4", &args);
        assert!(!first.is_empty(), "--index {index} produced no output");
        assert_eq!(first, second, "--index {index}: stdout differs between two spawns");
        assert_eq!(narrow, wide, "--index {index}: stdout differs across TAOR_THREADS widths");
        assert_eq!(first, narrow, "--index {index}: stdout differs across runs");
        if index == "mih" {
            assert_eq!(
                first, flat,
                "MIH is an exact index: its tables must be byte-identical to brute force"
            );
        }
    }
}
