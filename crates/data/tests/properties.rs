//! Property-based tests for the synthetic dataset substrate.

use proptest::prelude::*;
use rand::SeedableRng;
use taor_data::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_seed_gives_table1_cardinalities(seed in any::<u64>()) {
        let sns1 = shapenet_set1(seed);
        prop_assert_eq!(sns1.len(), 82);
        prop_assert_eq!(sns1.class_counts(), [14, 12, 8, 8, 8, 8, 6, 4, 8, 6]);
        let sns2 = shapenet_set2(seed);
        prop_assert_eq!(sns2.len(), 100);
    }

    #[test]
    fn every_catalog_view_contains_an_object(seed in any::<u64>()) {
        let sns1 = shapenet_set1(seed);
        for img in sns1.images.iter().step_by(11) {
            let non_white = img
                .image
                .as_raw()
                .chunks_exact(3)
                .filter(|px| *px != [255, 255, 255])
                .count();
            // Thin-silhouette classes (desk lamps) at minimum scale and
            // stretch can render barely above 100 px.
            prop_assert!(non_white > 90, "{:?} drew {} pixels", img.class, non_white);
        }
    }

    #[test]
    fn scene_crops_keep_object_visible(seed in any::<u64>(), class_idx in 0usize..10) {
        let class = ObjectClass::from_index(class_idx).unwrap();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let model = sample_model(class, &mut rng);
        let crop = render_scene_crop(&model, &mut rng);
        let visible = crop.as_raw().chunks_exact(3).filter(|px| *px != [0, 0, 0]).count();
        prop_assert!(visible > 120, "{class:?} nearly invisible: {visible}");
    }

    #[test]
    fn training_pair_ratio_holds_for_any_size(total in 50usize..800, seed in any::<u64>()) {
        let sns2 = shapenet_set2(1);
        let pairs = training_pairs(&sns2, total, seed);
        prop_assert_eq!(pairs.len(), total);
        let similar = pairs.iter().filter(|p| p.label == 1).count();
        let frac = similar as f64 / total as f64;
        prop_assert!((frac - 0.52).abs() < 0.02, "similar fraction {}", frac);
    }

    #[test]
    fn model_sampling_respects_class(seed in any::<u64>(), class_idx in 0usize..10) {
        let class = ObjectClass::from_index(class_idx).unwrap();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let m = sample_model(class, &mut rng);
        prop_assert_eq!(m.class, class);
        prop_assert!(m.aspect > 0.0 && m.elongation > 0.0);
        prop_assert!((0.0..=1.0).contains(&m.detail));
    }

    #[test]
    fn room_scene_objects_within_frame(seed in any::<u64>()) {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let scene = render_room(&[ObjectClass::Chair, ObjectClass::Box], &mut rng);
        for obj in &scene.objects {
            prop_assert!(obj.bbox.x + obj.bbox.width <= FRAME_W);
            prop_assert!(obj.bbox.y + obj.bbox.height <= FRAME_H);
            prop_assert!(obj.bbox.area() > 0);
        }
    }
}
