// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Catalog (ShapeNet-like) vs. scene (NYU-like) rendering.
//!
//! "the segmented regions from the NYUset were extracted through a
//! blackmask, while 2D views from ShapeNet lay on a white background"
//! (paper §3.2). The two modes reproduce exactly that asymmetry plus the
//! degradations that distinguish real segmented crops from clean catalog
//! views: lighting gain, sensor noise, partial occlusion and sloppy
//! segmentation margins.

use crate::shapes::{draw_object, ModelParams, ViewParams};
use rand::{Rng, SeedableRng};
use taor_imgproc::color::{hsv_to_pixel, pixel_to_hsv};
use taor_imgproc::draw::Canvas;
use taor_imgproc::image::RgbImage;

/// Canvas side for every generated image.
pub const CANVAS: u32 = 96;

/// Rendering mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenderMode {
    /// Clean white background, canonical pose set, no degradation — like a
    /// ShapeNet 2-D view.
    Catalog,
    /// Black mask background, heavy pose/lighting jitter, occlusion and
    /// noise — like a segmented NYU crop.
    Scene,
}

/// Render one catalog view: `view_idx` selects a canonical rotation
/// (ShapeNet views are a small set of fixed object rotations).
pub fn render_catalog_view(m: &ModelParams, view_idx: usize, rng: &mut impl Rng) -> RgbImage {
    let mut canvas = Canvas::new(CANVAS, CANVAS, [255, 255, 255]);
    // Canonical rotations: 0°, ±12°, ±24°, 36°… mild, like re-photographed
    // or manually rotated views (paper: views "manually-derived by
    // rotating an existing view, when not available").
    let base_angles = [0.0f32, 0.21, -0.21, 0.42, -0.42, 0.63, -0.63, 0.85];
    let rotation = base_angles[view_idx % base_angles.len()] + rng.gen_range(-0.03..0.03);
    let view = ViewParams {
        rotation,
        scale: CANVAS as f32 * rng.gen_range(0.30..0.38),
        cx: CANVAS as f32 / 2.0 + rng.gen_range(-2.0..2.0),
        cy: CANVAS as f32 / 2.0 + rng.gen_range(-2.0..2.0),
        flip: view_idx % 2 == 1 && view_idx >= 4,
        // Each canonical view corresponds to a different 3-D viewpoint,
        // which stretches the projected silhouette anisotropically.
        // Views of one model are a handful of nearby camera angles: the
        // per-view silhouette jitter is mild; it is the per-*model*
        // proportions (aspect, elongation, style) that vary wildly.
        stretch_x: rng.gen_range(0.78..1.25),
        stretch_y: rng.gen_range(0.82..1.2),
        shear: rng.gen_range(-0.28..0.28),
    };
    // A 3-D viewpoint change also alters the apparent proportions of the
    // model (seat depth, shade height, ...) slightly.
    let mut mv = m.clone();
    mv.detail = (m.detail + rng.gen_range(-0.12..0.12)).clamp(0.0, 1.0);
    draw_object(&mut canvas, &mv, view);
    let mut img = canvas.into_image();
    shade_catalog(&mut img, rng);
    img
}

/// ShapeNet 2-D views are *renders*: shaded, not flat fills. Apply a
/// directional lighting gradient plus mild sensor noise to the object
/// pixels (the white background stays clean). Without this, descriptor
/// matching is unrealistically easy — every view of a model would be a
/// pixel-exact template.
fn shade_catalog(img: &mut RgbImage, rng: &mut impl Rng) {
    let light_dir = rng.gen_range(0.0..std::f32::consts::TAU);
    let (lx, ly) = (light_dir.cos(), light_dir.sin());
    let (w, h) = (img.width() as f32, img.height() as f32);
    let mut noise_rng = rand::rngs::SmallRng::seed_from_u64(rng.gen());
    for y in 0..img.height() {
        for x in 0..img.width() {
            let px = img.pixel(x, y);
            if px == [255, 255, 255] {
                continue;
            }
            // Gain in [0.78, 1.08] across the object along the light axis.
            let t = (x as f32 / w - 0.5) * lx + (y as f32 / h - 0.5) * ly;
            let gain = 0.9 + 0.44 * t;
            let mut out = [0u8; 3];
            for c in 0..3 {
                let noise = noise_rng.gen_range(-12i16..=12);
                out[c] = ((px[c] as f32 * gain) as i16 + noise).clamp(0, 254) as u8;
            }
            img.put_pixel(x, y, out);
        }
    }
}

/// Render one cell of a yaw × pitch view grid: the regular camera orbit a
/// real ShapeNet rendering pipeline sweeps around each CAD model (the
/// gallery regime the ANN indexes are built for). `yaw` controls the
/// in-plane rotation plus the shear a turntable step induces on the
/// silhouette; `pitch` controls the anisotropic squash of looking down at
/// the object. A small jitter keeps two renders of the same cell from
/// being pixel-exact templates; the jitter draws come from `rng`, so the
/// same cell re-rendered with a differently seeded stream yields a
/// near-duplicate, not a copy.
pub fn render_grid_view(
    m: &ModelParams,
    yaw_idx: usize,
    pitch_idx: usize,
    yaw_steps: usize,
    pitch_steps: usize,
    rng: &mut impl Rng,
) -> RgbImage {
    let yaw_t = if yaw_steps > 1 { yaw_idx as f32 / (yaw_steps - 1) as f32 } else { 0.5 };
    let pitch_t = if pitch_steps > 1 { pitch_idx as f32 / (pitch_steps - 1) as f32 } else { 0.5 };
    let mut canvas = Canvas::new(CANVAS, CANVAS, [255, 255, 255]);
    let view = ViewParams {
        rotation: (yaw_t - 0.5) * 1.6 + rng.gen_range(-0.02..0.02),
        scale: CANVAS as f32 * (0.33 + rng.gen_range(-0.015..0.015)),
        cx: CANVAS as f32 / 2.0 + rng.gen_range(-1.5..1.5),
        cy: CANVAS as f32 / 2.0 + rng.gen_range(-1.5..1.5),
        flip: yaw_idx >= yaw_steps.div_ceil(2),
        stretch_x: 0.82 + 0.36 * yaw_t + rng.gen_range(-0.02..0.02),
        stretch_y: 1.18 - 0.38 * pitch_t + rng.gen_range(-0.02..0.02),
        shear: (pitch_t - 0.5) * 0.5 + rng.gen_range(-0.015..0.015),
    };
    let mut mv = m.clone();
    mv.detail = (m.detail + rng.gen_range(-0.08..0.08)).clamp(0.0, 1.0);
    draw_object(&mut canvas, &mv, view);
    let mut img = canvas.into_image();
    shade_catalog(&mut img, rng);
    img
}

/// Render one scene crop: black background, strong jitter, degradations.
pub fn render_scene_crop(m: &ModelParams, rng: &mut impl Rng) -> RgbImage {
    let mut canvas = Canvas::new(CANVAS, CANVAS, [0, 0, 0]);
    let view = ViewParams {
        rotation: rng.gen_range(-0.5..0.5),
        scale: CANVAS as f32 * rng.gen_range(0.26..0.40),
        cx: CANVAS as f32 / 2.0 + rng.gen_range(-8.0..8.0),
        cy: CANVAS as f32 / 2.0 + rng.gen_range(-8.0..8.0),
        flip: rng.gen_bool(0.5),
        stretch_x: rng.gen_range(0.7..1.35),
        stretch_y: rng.gen_range(0.75..1.3),
        shear: rng.gen_range(-0.3..0.3),
    };
    // NYU's segmented regions come from hand-drawn LabelMe-style polygon
    // masks: coarse outlines that keep a margin of wall/floor *inside*
    // the labelled region. Thresholding such a crop therefore recovers
    // the label polygon, not the object silhouette — the main reason the
    // paper's shape-only pipeline barely beats chance on the NYUSet.
    if rng.gen_bool(0.7) {
        let surface = [
            [196u8, 186, 168], // beige wall
            [168, 160, 150],   // grey wall
            [142, 110, 78],    // wooden floor
            [120, 120, 126],   // carpet
        ][rng.gen_range(0..4)];
        let n_vertices = rng.gen_range(5..=8);
        let pts: Vec<taor_imgproc::draw::P2> = (0..n_vertices)
            .map(|i| {
                let angle = i as f32 / n_vertices as f32 * std::f32::consts::TAU
                    + rng.gen_range(-0.25..0.25);
                let radius = view.scale * rng.gen_range(0.9..1.45);
                taor_imgproc::draw::p2(
                    view.cx + radius * angle.cos(),
                    view.cy + radius * angle.sin(),
                )
            })
            .collect();
        canvas.fill_polygon(&pts, surface);
    }
    let mut mv = m.clone();
    mv.detail = (m.detail + rng.gen_range(-0.2..0.2)).clamp(0.0, 1.0);
    draw_object(&mut canvas, &mv, view);
    let mut img = canvas.into_image();

    // Lighting: global value gain + slight hue drift, applied to the
    // non-mask pixels (the black mask stays black).
    let gain = rng.gen_range(0.75..1.15f32);
    let hue_shift = rng.gen_range(-6.0..6.0f32);
    for px in img.as_raw_mut().chunks_exact_mut(3) {
        if px == [0, 0, 0] {
            continue;
        }
        let mut hsv = pixel_to_hsv(px[0], px[1], px[2]);
        hsv.v = (hsv.v * gain).clamp(0.0, 1.0);
        hsv.h += hue_shift;
        let rgb = hsv_to_pixel(hsv);
        px.copy_from_slice(&rgb);
    }

    // Occlusion: with some probability, bite one or two black rectangles
    // out of the object (another object in front of it was masked away).
    if rng.gen_bool(0.5) {
        let bites = rng.gen_range(1..=3);
        let mut c = Canvas::new(CANVAS, CANVAS, [0, 0, 0]);
        std::mem::swap(c.image_mut(), &mut img);
        for _ in 0..bites {
            let w = rng.gen_range(10.0..30.0f32);
            let h = rng.gen_range(10.0..30.0f32);
            let x = rng.gen_range(0.0..CANVAS as f32 - w);
            let y = rng.gen_range(0.0..CANVAS as f32 - h);
            c.fill_rect(x, y, w, h, [0, 0, 0]);
        }
        img = c.into_image();
    }

    // Sloppy segmentation: occasionally a sliver of some *other* surface
    // survives at a border of the mask.
    if rng.gen_bool(0.25) {
        let mut c = Canvas::new(CANVAS, CANVAS, [0, 0, 0]);
        std::mem::swap(c.image_mut(), &mut img);
        let color = [rng.gen_range(60..220u8), rng.gen_range(60..220u8), rng.gen_range(60..220u8)];
        let along_x = rng.gen_bool(0.5);
        let thickness = rng.gen_range(3.0..8.0f32);
        if along_x {
            let y = if rng.gen_bool(0.5) { 0.0 } else { CANVAS as f32 - thickness };
            c.fill_rect(0.0, y, CANVAS as f32, thickness, color);
        } else {
            let x = if rng.gen_bool(0.5) { 0.0 } else { CANVAS as f32 - thickness };
            c.fill_rect(x, 0.0, thickness, CANVAS as f32, color);
        }
        img = c.into_image();
    }

    // Sensor noise on object pixels.
    for px in img.as_raw_mut().chunks_exact_mut(3) {
        if px == [0, 0, 0] {
            continue;
        }
        for v in px.iter_mut() {
            let noise = rng.gen_range(-10i16..=10);
            *v = (*v as i16 + noise).clamp(0, 255) as u8;
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::ObjectClass;
    use crate::shapes::sample_model;
    use rand::SeedableRng;

    fn model(seed: u64) -> ModelParams {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        sample_model(ObjectClass::Chair, &mut rng)
    }

    #[test]
    fn catalog_has_white_background() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let img = render_catalog_view(&model(1), 0, &mut rng);
        assert_eq!(img.pixel(0, 0), [255, 255, 255]);
        assert_eq!(img.pixel(CANVAS - 1, CANVAS - 1), [255, 255, 255]);
    }

    #[test]
    fn scene_has_black_background() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        let img = render_scene_crop(&model(2), &mut rng);
        // Corners are outside any plausible object placement most of the
        // time; check that a majority of border pixels are black.
        let mut black = 0;
        let mut total = 0;
        for x in 0..CANVAS {
            for &y in &[0, CANVAS - 1] {
                total += 1;
                if img.pixel(x, y) == [0, 0, 0] {
                    black += 1;
                }
            }
        }
        assert!(black * 2 > total, "{black}/{total} border pixels black");
    }

    #[test]
    fn views_of_same_model_share_palette_but_differ() {
        let m = model(3);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let v0 = render_catalog_view(&m, 0, &mut rng);
        let v1 = render_catalog_view(&m, 3, &mut rng);
        assert_ne!(v0, v1);
        // Both contain pixels near the model's primary colour (shading and
        // sensor noise perturb, but do not replace, the palette).
        let has_primary = |img: &RgbImage| {
            img.as_raw().chunks_exact(3).any(|px| {
                px.iter().zip(&m.primary).all(|(&a, &b)| (a as i16 - b as i16).abs() <= 40)
            })
        };
        assert!(has_primary(&v0) && has_primary(&v1));
    }

    #[test]
    fn scene_rendering_is_seeded() {
        let m = model(4);
        let mut r1 = rand::rngs::SmallRng::seed_from_u64(77);
        let mut r2 = rand::rngs::SmallRng::seed_from_u64(77);
        assert_eq!(render_scene_crop(&m, &mut r1), render_scene_crop(&m, &mut r2));
    }

    #[test]
    fn scene_crops_vary_across_draws() {
        let m = model(5);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(6);
        let a = render_scene_crop(&m, &mut rng);
        let b = render_scene_crop(&m, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn object_survives_degradations() {
        // Even with occlusion, a meaningful number of non-black pixels
        // must remain (the paper's crops always contain the object).
        let m = model(8);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(8);
        for _ in 0..20 {
            let img = render_scene_crop(&m, &mut rng);
            let visible = img.as_raw().chunks_exact(3).filter(|px| *px != [0, 0, 0]).count();
            assert!(visible > 150, "object almost fully erased: {visible} px");
        }
    }
}
