//! The ten object classes of the paper's evaluation (Table 1), their
//! dataset cardinalities, and WordNet-style synset links.
//!
//! ShapeNet "is linked with the ImageNet set as well" and its annotation
//! "is based on synsets"; the paper's motivation is that matching against
//! ShapeNet models yields not just a label but an entry point into a
//! concept graph for knowledge grounding. The [`Synset`] table preserves
//! that linkage for the semantic-mapping example.

use serde::{Deserialize, Serialize};

/// The ten target classes, in Table 1 order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ObjectClass {
    Chair,
    Bottle,
    Paper,
    Book,
    Table,
    Box,
    Window,
    Door,
    Sofa,
    Lamp,
}

impl ObjectClass {
    /// All classes in Table 1 order.
    pub const ALL: [ObjectClass; 10] = [
        ObjectClass::Chair,
        ObjectClass::Bottle,
        ObjectClass::Paper,
        ObjectClass::Book,
        ObjectClass::Table,
        ObjectClass::Box,
        ObjectClass::Window,
        ObjectClass::Door,
        ObjectClass::Sofa,
        ObjectClass::Lamp,
    ];

    /// Number of classes.
    pub const COUNT: usize = 10;

    /// Stable index in `0..10` (Table 1 order).
    pub fn index(&self) -> usize {
        Self::ALL.iter().position(|c| c == self).expect("class is in ALL") // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
    }

    /// Class from its index.
    pub fn from_index(i: usize) -> Option<ObjectClass> {
        Self::ALL.get(i).copied()
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            ObjectClass::Chair => "Chair",
            ObjectClass::Bottle => "Bottle",
            ObjectClass::Paper => "Paper",
            ObjectClass::Book => "Book",
            ObjectClass::Table => "Table",
            ObjectClass::Box => "Box",
            ObjectClass::Window => "Window",
            ObjectClass::Door => "Door",
            ObjectClass::Sofa => "Sofa",
            ObjectClass::Lamp => "Lamp",
        }
    }

    /// Number of 2-D views in ShapeNetSet1 (Table 1).
    pub fn sns1_count(&self) -> usize {
        match self {
            ObjectClass::Chair => 14,
            ObjectClass::Bottle => 12,
            ObjectClass::Paper
            | ObjectClass::Book
            | ObjectClass::Table
            | ObjectClass::Box
            | ObjectClass::Sofa => 8,
            ObjectClass::Window | ObjectClass::Lamp => 6,
            ObjectClass::Door => 4,
        }
    }

    /// Number of 2-D views in ShapeNetSet2 (Table 1: ten per class).
    pub fn sns2_count(&self) -> usize {
        10
    }

    /// Number of segmented crops in the NYUSet (Table 1; chairs
    /// down-sampled to 1000 by the authors).
    pub fn nyu_count(&self) -> usize {
        match self {
            ObjectClass::Chair => 1000,
            ObjectClass::Bottle => 920,
            ObjectClass::Paper => 790,
            ObjectClass::Book => 760,
            ObjectClass::Table => 726,
            ObjectClass::Box => 637,
            ObjectClass::Window => 617,
            ObjectClass::Door => 511,
            ObjectClass::Sofa => 495,
            ObjectClass::Lamp => 478,
        }
    }

    /// WordNet-style synset record for knowledge grounding.
    pub fn synset(&self) -> Synset {
        match self {
            ObjectClass::Chair => Synset {
                id: "n03001627",
                lemma: "chair",
                gloss: "a seat for one person, with a support for the back",
                hypernyms: &["seat", "furniture", "furnishing", "artifact"],
            },
            ObjectClass::Bottle => Synset {
                id: "n02876657",
                lemma: "bottle",
                gloss: "a glass or plastic vessel used for storing drinks or other liquids",
                hypernyms: &["vessel", "container", "instrumentality", "artifact"],
            },
            ObjectClass::Paper => Synset {
                id: "n14974264",
                lemma: "paper",
                gloss: "a material made of cellulose pulp",
                hypernyms: &["material", "substance", "matter"],
            },
            ObjectClass::Book => Synset {
                id: "n02870092",
                lemma: "book",
                gloss: "a written work or composition that has been published",
                hypernyms: &["publication", "work", "artifact"],
            },
            ObjectClass::Table => Synset {
                id: "n04379243",
                lemma: "table",
                gloss: "a piece of furniture having a smooth flat top supported by legs",
                hypernyms: &["furniture", "furnishing", "artifact"],
            },
            ObjectClass::Box => Synset {
                id: "n02883344",
                lemma: "box",
                gloss: "a (usually rectangular) container; may have a lid",
                hypernyms: &["container", "instrumentality", "artifact"],
            },
            ObjectClass::Window => Synset {
                id: "n04587648",
                lemma: "window",
                gloss: "a framework of wood or metal that contains a glass windowpane",
                hypernyms: &["framework", "supporting structure", "structure"],
            },
            ObjectClass::Door => Synset {
                id: "n03221720",
                lemma: "door",
                gloss: "a swinging or sliding barrier that will close the entrance to a room",
                hypernyms: &["movable barrier", "barrier", "structure"],
            },
            ObjectClass::Sofa => Synset {
                id: "n04256520",
                lemma: "sofa",
                gloss: "an upholstered seat for more than one person",
                hypernyms: &["seat", "furniture", "furnishing", "artifact"],
            },
            ObjectClass::Lamp => Synset {
                id: "n03636649",
                lemma: "lamp",
                gloss: "a piece of furniture holding one or more electric light bulbs",
                hypernyms: &["furniture", "furnishing", "artifact"],
            },
        }
    }
}

/// A WordNet-style synset entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Synset {
    /// WordNet 3.0 offset-style identifier.
    pub id: &'static str,
    /// Primary lemma.
    pub lemma: &'static str,
    /// Dictionary gloss.
    pub gloss: &'static str,
    /// Hypernym chain towards the root.
    pub hypernyms: &'static [&'static str],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals() {
        let sns1: usize = ObjectClass::ALL.iter().map(|c| c.sns1_count()).sum();
        let sns2: usize = ObjectClass::ALL.iter().map(|c| c.sns2_count()).sum();
        let nyu: usize = ObjectClass::ALL.iter().map(|c| c.nyu_count()).sum();
        assert_eq!(sns1, 82);
        assert_eq!(sns2, 100);
        assert_eq!(nyu, 6934);
    }

    #[test]
    fn index_roundtrip() {
        for (i, c) in ObjectClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(ObjectClass::from_index(i), Some(*c));
        }
        assert_eq!(ObjectClass::from_index(10), None);
    }

    #[test]
    fn names_match_paper_order() {
        let names: Vec<_> = ObjectClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            ["Chair", "Bottle", "Paper", "Book", "Table", "Box", "Window", "Door", "Sofa", "Lamp"]
        );
    }

    #[test]
    fn synsets_are_complete() {
        for c in ObjectClass::ALL {
            let s = c.synset();
            assert!(s.id.starts_with('n'));
            assert!(!s.hypernyms.is_empty());
            assert!(!s.gloss.is_empty());
        }
    }

    #[test]
    fn chair_and_sofa_share_seat_hypernym() {
        // The grounding the paper motivates: related classes share concepts.
        let chair = ObjectClass::Chair.synset();
        let sofa = ObjectClass::Sofa.synset();
        assert!(chair.hypernyms.contains(&"seat"));
        assert!(sofa.hypernyms.contains(&"seat"));
    }
}
