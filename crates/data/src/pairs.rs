// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Image-pair construction for the Siamese pipeline (§3.4).
//!
//! The paper's three pair sets:
//!
//! * **Training** — "ShapeNetSet2 as baseline to form a training set,
//!   comprising of 9,450 RGB image pairs, with 52% being examples of
//!   similar images and the remainder 48% … dissimilar". With ten views ×
//!   ten classes, exhaustive same-class pairs cannot reach 52%, so the
//!   similar half is necessarily resampled; we draw same-class pairs with
//!   replacement for the similar quota and cross-class pairs for the rest
//!   (documented substitution — the paper does not spell out its sampler).
//! * **SNS1 test** — 3,321 pairs = C(82, 2), i.e. all unordered pairs of
//!   distinct SNS1 views; "similar" = same class, giving an ~9% positive
//!   rate matching the paper's 295/3,026 support split.
//! * **NYU+SNS1 test** — 8,200 pairs from 100 NYU crops (10 per class) ×
//!   82 SNS1 views; the paper's support of 4,160/4,040 implies balanced
//!   resampling rather than the raw cross product (which would be ~10%
//!   positive), so we draw 4,160 same-class and 4,040 cross-class pairs.

use crate::classes::ObjectClass;
use crate::dataset::{sample_per_class, Dataset, LabeledImage};
use rand::{Rng, SeedableRng};

/// One labelled pair (by reference into the source datasets).
#[derive(Debug, Clone, Copy)]
pub struct ImagePair<'a> {
    pub a: &'a LabeledImage,
    pub b: &'a LabeledImage,
    /// 1 = similar (same class), 0 = dissimilar.
    pub label: usize,
}

/// Paper §3.4 constants.
pub const TRAIN_PAIRS: usize = 9_450;
pub const TRAIN_SIMILAR_FRACTION: f64 = 0.52;
pub const SNS1_TEST_PAIRS: usize = 3_321;
pub const NYU_TEST_SIMILAR: usize = 4_160;
pub const NYU_TEST_DISSIMILAR: usize = 4_040;

/// Build the SNS2 training pairs (9,450; 52% similar).
///
/// Pass a smaller `total` to subsample proportionally (CPU-budget training
/// runs); `total = TRAIN_PAIRS` reproduces the paper's set size.
pub fn training_pairs(sns2: &Dataset, total: usize, seed: u64) -> Vec<ImagePair<'_>> {
    assert!(!sns2.is_empty(), "SNS2 must not be empty");
    let n_similar = (total as f64 * TRAIN_SIMILAR_FRACTION).round() as usize;
    let n_dissimilar = total - n_similar;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ 0x7EA1);

    let by_class: Vec<Vec<&LabeledImage>> =
        ObjectClass::ALL.iter().map(|&c| sns2.of_class(c).collect()).collect();

    let mut pairs = Vec::with_capacity(total);
    for _ in 0..n_similar {
        let c = rng.gen_range(0..ObjectClass::COUNT);
        let pool = &by_class[c];
        let i = rng.gen_range(0..pool.len());
        let mut j = rng.gen_range(0..pool.len());
        while j == i && pool.len() > 1 {
            j = rng.gen_range(0..pool.len());
        }
        pairs.push(ImagePair { a: pool[i], b: pool[j], label: 1 });
    }
    for _ in 0..n_dissimilar {
        let ca = rng.gen_range(0..ObjectClass::COUNT);
        let mut cb = rng.gen_range(0..ObjectClass::COUNT);
        while cb == ca {
            cb = rng.gen_range(0..ObjectClass::COUNT);
        }
        let a = by_class[ca][rng.gen_range(0..by_class[ca].len())];
        let b = by_class[cb][rng.gen_range(0..by_class[cb].len())];
        pairs.push(ImagePair { a, b, label: 0 });
    }
    // Interleave classes for SGD (deterministic shuffle).
    shuffle(&mut pairs, &mut rng);
    pairs
}

/// All C(82, 2) unordered pairs of SNS1 views (the 3,321-pair test set).
pub fn sns1_test_pairs(sns1: &Dataset) -> Vec<ImagePair<'_>> {
    let n = sns1.len();
    let mut pairs = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in i + 1..n {
            let a = &sns1.images[i];
            let b = &sns1.images[j];
            pairs.push(ImagePair { a, b, label: usize::from(a.class == b.class) });
        }
    }
    pairs
}

/// The 8,200-pair NYU+SNS1 test set, balanced per the paper's support
/// counts (4,160 similar / 4,040 dissimilar).
pub fn nyu_sns1_test_pairs<'a>(
    nyu: &'a Dataset,
    sns1: &'a Dataset,
    seed: u64,
) -> Vec<ImagePair<'a>> {
    let nyu_subset = sample_per_class(nyu, 10, seed ^ 0x9A);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ 0x9B);

    let sns1_by_class: Vec<Vec<&LabeledImage>> =
        ObjectClass::ALL.iter().map(|&c| sns1.of_class(c).collect()).collect();

    let mut pairs = Vec::with_capacity(NYU_TEST_SIMILAR + NYU_TEST_DISSIMILAR);
    for _ in 0..NYU_TEST_SIMILAR {
        let q = nyu_subset[rng.gen_range(0..nyu_subset.len())];
        let pool = &sns1_by_class[q.class.index()];
        pairs.push(ImagePair { a: q, b: pool[rng.gen_range(0..pool.len())], label: 1 });
    }
    for _ in 0..NYU_TEST_DISSIMILAR {
        let q = nyu_subset[rng.gen_range(0..nyu_subset.len())];
        let mut c = rng.gen_range(0..ObjectClass::COUNT);
        while c == q.class.index() {
            c = rng.gen_range(0..ObjectClass::COUNT);
        }
        let pool = &sns1_by_class[c];
        pairs.push(ImagePair { a: q, b: pool[rng.gen_range(0..pool.len())], label: 0 });
    }
    shuffle(&mut pairs, &mut rng);
    pairs
}

/// Heterogeneous training pairs — the paper's proposed fix ("increasing
/// the heterogeneity of our datasets … for further application on RGB
/// frames captured by a mobile robot"): half the pairs come from the
/// catalog as in [`training_pairs`], half mix one NYU crop with one
/// catalog view, so the network sees both background conventions and the
/// scene degradations during training.
pub fn mixed_training_pairs<'a>(
    sns2: &'a Dataset,
    nyu: &'a Dataset,
    total: usize,
    seed: u64,
) -> Vec<ImagePair<'a>> {
    assert!(!sns2.is_empty() && !nyu.is_empty(), "both corpora required");
    let catalog_half = training_pairs(sns2, total / 2, seed);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ 0x313D);
    let sns2_by_class: Vec<Vec<&LabeledImage>> =
        ObjectClass::ALL.iter().map(|&c| sns2.of_class(c).collect()).collect();
    let nyu_all: Vec<&LabeledImage> = nyu.images.iter().collect();

    let cross_total = total - catalog_half.len();
    let n_similar = (cross_total as f64 * TRAIN_SIMILAR_FRACTION).round() as usize;
    let mut pairs = catalog_half;
    for i in 0..cross_total {
        let a = nyu_all[rng.gen_range(0..nyu_all.len())];
        let (b, label) = if i < n_similar {
            let pool = &sns2_by_class[a.class.index()];
            (pool[rng.gen_range(0..pool.len())], 1)
        } else {
            let mut c = rng.gen_range(0..ObjectClass::COUNT);
            while c == a.class.index() {
                c = rng.gen_range(0..ObjectClass::COUNT);
            }
            let pool = &sns2_by_class[c];
            (pool[rng.gen_range(0..pool.len())], 0)
        };
        pairs.push(ImagePair { a, b, label });
    }
    shuffle(&mut pairs, &mut rng);
    pairs
}

fn shuffle<T>(items: &mut [T], rng: &mut impl Rng) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.gen_range(0..=i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{nyu_set_subsampled, shapenet_set1, shapenet_set2};

    #[test]
    fn training_pairs_match_paper_ratio() {
        let sns2 = shapenet_set2(1);
        let pairs = training_pairs(&sns2, TRAIN_PAIRS, 1);
        assert_eq!(pairs.len(), 9_450);
        let similar = pairs.iter().filter(|p| p.label == 1).count();
        let frac = similar as f64 / pairs.len() as f64;
        assert!((frac - 0.52).abs() < 0.001, "similar fraction {frac}");
        // Labels are consistent with classes.
        for p in pairs.iter().take(500) {
            assert_eq!(p.label == 1, p.a.class == p.b.class);
        }
    }

    #[test]
    fn sns1_pairs_are_all_unordered_pairs() {
        let sns1 = shapenet_set1(1);
        let pairs = sns1_test_pairs(&sns1);
        assert_eq!(pairs.len(), SNS1_TEST_PAIRS);
        let similar = pairs.iter().filter(|p| p.label == 1).count();
        // Σ_c C(n_c, 2) for Table 1 SNS1 counts.
        assert_eq!(similar, 333);
    }

    #[test]
    fn nyu_pairs_match_paper_support() {
        let nyu = nyu_set_subsampled(1, 12);
        let sns1 = shapenet_set1(1);
        let pairs = nyu_sns1_test_pairs(&nyu, &sns1, 1);
        assert_eq!(pairs.len(), 8_200);
        let similar = pairs.iter().filter(|p| p.label == 1).count();
        assert_eq!(similar, NYU_TEST_SIMILAR);
        for p in pairs.iter().take(500) {
            assert_eq!(p.label == 1, p.a.class == p.b.class);
        }
    }

    #[test]
    fn pair_sets_are_deterministic() {
        let sns2 = shapenet_set2(3);
        let p1 = training_pairs(&sns2, 200, 9);
        let p2 = training_pairs(&sns2, 200, 9);
        for (a, b) in p1.iter().zip(&p2) {
            assert_eq!(a.label, b.label);
            assert!(std::ptr::eq(a.a, b.a));
        }
    }

    #[test]
    fn mixed_pairs_cover_both_domains() {
        let sns2 = shapenet_set2(5);
        let nyu = nyu_set_subsampled(5, 6);
        let pairs = mixed_training_pairs(&sns2, &nyu, 400, 7);
        assert_eq!(pairs.len(), 400);
        // Cross-domain pairs have a black-background side.
        let cross = pairs
            .iter()
            .filter(|p| p.a.image.pixel(0, 0) == [0, 0, 0] || p.b.image.pixel(0, 0) == [0, 0, 0])
            .count();
        assert!(cross > 100, "only {cross} cross-domain pairs");
        // Labels stay class-consistent.
        for p in &pairs {
            assert_eq!(p.label == 1, p.a.class == p.b.class);
        }
    }

    #[test]
    fn subsampled_training_set_size() {
        let sns2 = shapenet_set2(2);
        let pairs = training_pairs(&sns2, 500, 4);
        assert_eq!(pairs.len(), 500);
    }
}
