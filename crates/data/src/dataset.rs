// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Dataset builders matching Table 1 of the paper.
//!
//! * **ShapeNetSet1 (SNS1)** — 82 catalog views: two models per class,
//!   views split between them per the Table 1 class counts.
//! * **ShapeNetSet2 (SNS2)** — 100 catalog views: ten per class, again
//!   spread over two (fresh) models per class.
//! * **NYUSet** — 6,934 scene crops with the Table 1 class counts; every
//!   crop is a *new* model draw (real scenes contain object instances, not
//!   the ShapeNet meshes).
//!
//! Everything is deterministic in the builder seed.

use crate::classes::ObjectClass;
use crate::render::{render_catalog_view, render_scene_crop};
use crate::shapes::sample_model;
use rand::{Rng, SeedableRng};
use taor_imgproc::image::RgbImage;

/// Which corpus an image belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    ShapeNetSet1,
    ShapeNetSet2,
    NyuSet,
}

impl DatasetKind {
    /// Short name used in reports ("SNS1", "SNS2", "NYU").
    pub fn short(&self) -> &'static str {
        match self {
            DatasetKind::ShapeNetSet1 => "SNS1",
            DatasetKind::ShapeNetSet2 => "SNS2",
            DatasetKind::NyuSet => "NYU",
        }
    }
}

/// One labelled image.
#[derive(Debug, Clone)]
pub struct LabeledImage {
    pub image: RgbImage,
    pub class: ObjectClass,
    /// Model identity within `(kind, class)` — catalog views of the same
    /// model share it; every NYU crop has a unique one.
    pub model_id: usize,
    /// View index within the model.
    pub view_id: usize,
}

/// A labelled image collection.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub kind: DatasetKind,
    pub images: Vec<LabeledImage>,
}

impl Dataset {
    /// Number of images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Per-class image count, Table 1 order.
    pub fn class_counts(&self) -> [usize; ObjectClass::COUNT] {
        let mut counts = [0usize; ObjectClass::COUNT];
        for img in &self.images {
            counts[img.class.index()] += 1;
        }
        counts
    }

    /// Iterate images of one class.
    pub fn of_class(&self, class: ObjectClass) -> impl Iterator<Item = &LabeledImage> {
        self.images.iter().filter(move |i| i.class == class)
    }
}

/// Mix a stable stream id into a seed so that the three datasets (and the
/// models inside them) never share RNG streams.
fn substream(seed: u64, stream: u64) -> rand::rngs::SmallRng {
    rand::rngs::SmallRng::seed_from_u64(seed ^ (stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

fn catalog_set(
    kind: DatasetKind,
    seed: u64,
    stream: u64,
    count_of: impl Fn(ObjectClass) -> usize,
) -> Dataset {
    let mut images = Vec::new();
    for class in ObjectClass::ALL {
        let n_views = count_of(class);
        // Two models per class (paper: "two for each of the ten object
        // classes"); views split as evenly as possible.
        let mut rng = substream(seed, stream ^ (class.index() as u64) << 8);
        let models = [sample_model(class, &mut rng), sample_model(class, &mut rng)];
        for v in 0..n_views {
            let model_id = v % 2;
            let view_id = v / 2;
            images.push(LabeledImage {
                image: render_catalog_view(&models[model_id], view_id, &mut rng),
                class,
                model_id,
                view_id,
            });
        }
    }
    Dataset { kind, images }
}

/// Build ShapeNetSet1 (82 views, Table 1 cardinalities).
///
/// ```
/// let sns1 = taor_data::shapenet_set1(2019);
/// assert_eq!(sns1.len(), 82);
/// assert_eq!(sns1.class_counts(), [14, 12, 8, 8, 8, 8, 6, 4, 8, 6]);
/// ```
pub fn shapenet_set1(seed: u64) -> Dataset {
    catalog_set(DatasetKind::ShapeNetSet1, seed, 0x51, |c| c.sns1_count())
}

/// Build a custom catalog: `models_per_class` distinct models, each with
/// `views_per_model` views — the "augmenting the cardinality of each
/// class" direction of the paper's conclusion. Uses the SNS2 stream so
/// the first two models coincide with [`shapenet_set2`]'s.
pub fn catalog_custom(seed: u64, models_per_class: usize, views_per_model: usize) -> Dataset {
    assert!(models_per_class >= 1 && views_per_model >= 1, "need at least one model and view");
    let mut images = Vec::new();
    for class in ObjectClass::ALL {
        let mut rng = substream(seed, 0x52 ^ (class.index() as u64) << 8);
        let models: Vec<_> = (0..models_per_class).map(|_| sample_model(class, &mut rng)).collect();
        for (model_id, model) in models.iter().enumerate() {
            for view_id in 0..views_per_model {
                images.push(LabeledImage {
                    image: render_catalog_view(model, view_id, &mut rng),
                    class,
                    model_id,
                    view_id,
                });
            }
        }
    }
    Dataset { kind: DatasetKind::ShapeNetSet2, images }
}

/// Build ShapeNetSet2 (100 views, ten per class, fresh models).
pub fn shapenet_set2(seed: u64) -> Dataset {
    catalog_set(DatasetKind::ShapeNetSet2, seed, 0x52, |c| c.sns2_count())
}

/// Build a ShapeNet-scale gallery: `models_per_class` *distinct* models
/// per class, each rendered over a regular `yaw_steps × pitch_steps`
/// camera grid (`view_id = yaw · pitch_steps + pitch`). Total size is
/// `10 · models_per_class · yaw_steps · pitch_steps` views — the regime
/// the `taor-features` ANN indexes exist for.
///
/// The model draws depend only on `seed`, while every per-view jitter
/// draw comes from a stream keyed additionally by `jitter`: two calls
/// with equal `seed` and different `jitter` render the *same* models on
/// the *same* grid cells as near-duplicates, which is exactly what a
/// recall@k harness needs for realistic (non-pixel-identical) queries.
pub fn gallery_grid(
    seed: u64,
    models_per_class: usize,
    yaw_steps: usize,
    pitch_steps: usize,
    jitter: u64,
) -> Dataset {
    assert!(
        models_per_class >= 1 && yaw_steps >= 1 && pitch_steps >= 1,
        "need at least one model and a non-empty grid"
    );
    let mut images = Vec::new();
    for class in ObjectClass::ALL {
        let mut model_rng = substream(seed, 0x53 ^ (class.index() as u64) << 8);
        let models: Vec<_> =
            (0..models_per_class).map(|_| sample_model(class, &mut model_rng)).collect();
        for (model_id, model) in models.iter().enumerate() {
            for yaw in 0..yaw_steps {
                for pitch in 0..pitch_steps {
                    let view_id = yaw * pitch_steps + pitch;
                    let cell =
                        (class.index() as u64) << 40 | (model_id as u64) << 20 | view_id as u64;
                    let mut view_rng = substream(
                        seed.wrapping_add(jitter.wrapping_mul(0xB5AD_4ECE_DA1C_E2A9)),
                        0x54 ^ cell,
                    );
                    images.push(LabeledImage {
                        image: crate::render::render_grid_view(
                            model,
                            yaw,
                            pitch,
                            yaw_steps,
                            pitch_steps,
                            &mut view_rng,
                        ),
                        class,
                        model_id,
                        view_id,
                    });
                }
            }
        }
    }
    Dataset { kind: DatasetKind::ShapeNetSet2, images }
}

/// Build the full NYUSet (6,934 scene crops, Table 1 cardinalities).
pub fn nyu_set(seed: u64) -> Dataset {
    nyu_set_with(seed, |c| c.nyu_count())
}

/// Build a down-sampled NYUSet with `per_class` crops per class — used by
/// the examples and the quick mode of the repro harness.
pub fn nyu_set_subsampled(seed: u64, per_class: usize) -> Dataset {
    nyu_set_with(seed, |_| per_class)
}

fn nyu_set_with(seed: u64, count_of: impl Fn(ObjectClass) -> usize) -> Dataset {
    let mut images = Vec::new();
    for class in ObjectClass::ALL {
        let mut rng = substream(seed, 0xA7 ^ (class.index() as u64) << 8);
        for i in 0..count_of(class) {
            let model = sample_model(class, &mut rng);
            images.push(LabeledImage {
                image: render_scene_crop(&model, &mut rng),
                class,
                model_id: i,
                view_id: 0,
            });
        }
    }
    Dataset { kind: DatasetKind::NyuSet, images }
}

/// Pick `per_class` random images of every class (used for the 100-image
/// NYU test subset of §3.4: "10 where randomly-picked from each of the 10
/// classes").
pub fn sample_per_class(dataset: &Dataset, per_class: usize, seed: u64) -> Vec<&LabeledImage> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(per_class * ObjectClass::COUNT);
    for class in ObjectClass::ALL {
        let pool: Vec<&LabeledImage> = dataset.of_class(class).collect();
        assert!(
            pool.len() >= per_class,
            "class {class:?} has only {} images, need {per_class}",
            pool.len()
        );
        let mut indices: Vec<usize> = (0..pool.len()).collect();
        // Partial Fisher–Yates.
        for i in 0..per_class {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
        }
        out.extend(indices[..per_class].iter().map(|&i| pool[i]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sns1_matches_table1() {
        let d = shapenet_set1(2019);
        assert_eq!(d.len(), 82);
        let counts = d.class_counts();
        assert_eq!(counts, [14, 12, 8, 8, 8, 8, 6, 4, 8, 6]);
    }

    #[test]
    fn sns2_matches_table1() {
        let d = shapenet_set2(2019);
        assert_eq!(d.len(), 100);
        assert!(d.class_counts().iter().all(|&c| c == 10));
    }

    #[test]
    fn gallery_grid_shape_and_determinism() {
        let a = gallery_grid(7, 2, 3, 2, 0);
        assert_eq!(a.len(), 10 * 2 * 3 * 2);
        let counts = a.class_counts();
        assert!(counts.iter().all(|&c| c == 12), "balanced classes: {counts:?}");
        // view_id encodes the grid cell.
        assert_eq!(a.images[0].view_id, 0);
        assert_eq!(a.images[5].view_id, 5);
        // Deterministic in the seed…
        let b = gallery_grid(7, 2, 3, 2, 0);
        assert_eq!(a.images[17].image.as_raw(), b.images[17].image.as_raw());
        // …and a different jitter stream re-renders the same cells as
        // near-duplicates, not pixel-identical copies.
        let j = gallery_grid(7, 2, 3, 2, 1);
        assert_eq!(j.len(), a.len());
        assert_eq!(j.images[17].class, a.images[17].class);
        assert_eq!(j.images[17].view_id, a.images[17].view_id);
        assert_ne!(j.images[17].image.as_raw(), a.images[17].image.as_raw());
    }

    #[test]
    fn nyu_subsample_counts() {
        let d = nyu_set_subsampled(2019, 20);
        assert_eq!(d.len(), 200);
        assert!(d.class_counts().iter().all(|&c| c == 20));
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = shapenet_set1(42);
        let b = shapenet_set1(42);
        assert_eq!(a.images[0].image, b.images[0].image);
        assert_eq!(a.images[81].image, b.images[81].image);
        let c = shapenet_set1(43);
        assert_ne!(a.images[0].image, c.images[0].image);
    }

    #[test]
    fn sns1_and_sns2_use_different_models() {
        // Same seed, different streams: the two ShapeNet subsets must not
        // contain identical renders (SNS2 is "a second, larger, subset").
        let a = shapenet_set1(7);
        let b = shapenet_set2(7);
        assert_ne!(a.images[0].image, b.images[0].image);
    }

    #[test]
    fn model_ids_partition_views() {
        let d = shapenet_set1(1);
        for class in ObjectClass::ALL {
            let views: Vec<_> = d.of_class(class).collect();
            assert!(views.iter().all(|v| v.model_id < 2));
            let m0 = views.iter().filter(|v| v.model_id == 0).count();
            let m1 = views.iter().filter(|v| v.model_id == 1).count();
            assert_eq!(m0 + m1, class.sns1_count());
            assert!(m0.abs_diff(m1) <= 1, "{class:?} split {m0}/{m1}");
        }
    }

    #[test]
    fn sample_per_class_returns_balanced_subset() {
        let d = nyu_set_subsampled(5, 15);
        let sampled = sample_per_class(&d, 10, 99);
        assert_eq!(sampled.len(), 100);
        for class in ObjectClass::ALL {
            assert_eq!(sampled.iter().filter(|i| i.class == class).count(), 10);
        }
    }

    #[test]
    fn catalog_custom_scales() {
        let d = catalog_custom(3, 4, 5);
        assert_eq!(d.len(), 10 * 4 * 5);
        for class in ObjectClass::ALL {
            let views: Vec<_> = d.of_class(class).collect();
            assert_eq!(views.len(), 20);
            assert!(views.iter().all(|v| v.model_id < 4 && v.view_id < 5));
        }
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn catalog_custom_rejects_zero() {
        let _ = catalog_custom(1, 0, 5);
    }

    #[test]
    #[should_panic(expected = "has only")]
    fn sample_per_class_panics_when_insufficient() {
        let d = nyu_set_subsampled(5, 3);
        let _ = sample_per_class(&d, 10, 99);
    }

    #[test]
    #[ignore = "builds the full 6,934-image corpus; run with --ignored"]
    fn full_nyu_matches_table1() {
        let d = nyu_set(2019);
        assert_eq!(d.len(), 6934);
        assert_eq!(d.class_counts(), [1000, 920, 790, 760, 726, 637, 617, 511, 495, 478]);
    }
}
