// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Parametric 2-D object generators — the stand-in for ShapeNet models.
//!
//! Each class has a generator that samples a *model* (persistent geometry
//! and palette parameters, like one ShapeNet mesh) and a renderer that
//! draws a *view* of that model (in-plane rotation + scale + position,
//! like one of the dataset's 2D views). Palettes deliberately overlap
//! across classes (wood browns shared by chair/table/door/box; whites
//! shared by paper/window/door frames) so that colour histograms are
//! informative but far from perfectly discriminative — the regime the
//! paper's Table 2 numbers live in.

use crate::classes::ObjectClass;
use rand::Rng;
use taor_imgproc::draw::{p2, Canvas, P2};

/// Persistent parameters of one synthetic model.
#[derive(Debug, Clone)]
pub struct ModelParams {
    pub class: ObjectClass,
    /// Primary body colour.
    pub primary: [u8; 3],
    /// Secondary / accent colour.
    pub secondary: [u8; 3],
    /// Width/height aspect jitter factor.
    pub aspect: f32,
    /// Per-model vertical elongation — two "chairs" can be a squat club
    /// chair and a tall bar stool; inter-model silhouette diversity is
    /// what defeats Hu matching on real ShapeNet categories.
    pub elongation: f32,
    /// Discrete style variant (legs count, panel layout, …).
    pub style: u32,
    /// Continuous detail knob in `[0, 1]` (proportions).
    pub detail: f32,
}

/// A view of a model: in-plane pose plus the anisotropic stretch that a
/// change of 3-D viewpoint induces on the 2-D silhouette. The stretch is
/// what keeps Hu moments from being trivially discriminative: Hu is
/// invariant to rotation/scale/translation but *not* to the aspect
/// changes real re-projections produce.
#[derive(Debug, Clone, Copy)]
pub struct ViewParams {
    /// In-plane rotation (radians).
    pub rotation: f32,
    /// Half-size of the object in pixels.
    pub scale: f32,
    /// Centre position on the canvas.
    pub cx: f32,
    pub cy: f32,
    /// Horizontal mirror.
    pub flip: bool,
    /// Viewpoint-induced horizontal stretch.
    pub stretch_x: f32,
    /// Viewpoint-induced vertical stretch.
    pub stretch_y: f32,
    /// Viewpoint-induced shear (x += shear · y), the first-order effect
    /// of out-of-plane rotation on a projected silhouette.
    pub shear: f32,
}

impl ViewParams {
    /// A canonical front-facing view (no stretch).
    pub fn frontal(scale: f32, cx: f32, cy: f32) -> Self {
        ViewParams {
            rotation: 0.0,
            scale,
            cx,
            cy,
            flip: false,
            stretch_x: 1.0,
            stretch_y: 1.0,
            shear: 0.0,
        }
    }
}

/// Small per-model colour jitter so two models of a class differ.
/// Channels cap at 254, never 255: a pure-white model would be invisible
/// against the catalog background (white paper at +22 jitter saturated
/// to [255,255,255] and rendered zero pixels).
fn jitter_color(rng: &mut impl Rng, c: [u8; 3], amount: i16) -> [u8; 3] {
    let mut out = [0u8; 3];
    for i in 0..3 {
        let d = rng.gen_range(-amount..=amount);
        out[i] = (c[i] as i16 + d).clamp(0, 254) as u8;
    }
    out
}

const WOODS: [[u8; 3]; 4] = [[139, 90, 43], [160, 120, 60], [96, 64, 38], [178, 132, 80]];
const WHITES: [[u8; 3]; 3] = [[236, 234, 228], [245, 244, 240], [222, 221, 214]];
const GRAYS: [[u8; 3]; 3] = [[150, 150, 148], [120, 122, 126], [178, 180, 178]];
const DARKS: [[u8; 3]; 2] = [[52, 50, 48], [70, 66, 72]];
const REDS: [[u8; 3]; 2] = [[178, 52, 48], [142, 40, 52]];
const BLUES: [[u8; 3]; 2] = [[58, 82, 152], [84, 110, 168]];
const GREENS: [[u8; 3]; 2] = [[52, 118, 62], [88, 128, 84]];
const YELLOWS: [[u8; 3]; 2] = [[214, 168, 60], [228, 196, 110]];
const TANS: [[u8; 3]; 2] = [[192, 152, 104], [172, 134, 88]];

/// Weighted palette draw: a class *biases* towards certain colour pools
/// but can take almost any indoor colour — real ShapeNet categories have
/// no tight palette, which is why colour histograms help but never solve
/// the paper's task.
fn weighted_color(rng: &mut impl Rng, pools: &[(&[[u8; 3]], u32)]) -> [u8; 3] {
    let total: u32 = pools.iter().map(|(_, w)| w).sum();
    let mut pick_at = rng.gen_range(0..total);
    for (pool, w) in pools {
        if pick_at < *w {
            return pool[rng.gen_range(0..pool.len())];
        }
        pick_at -= w;
    }
    unreachable!("weights cover the range")
}

/// Sample a model of the given class.
pub fn sample_model(class: ObjectClass, rng: &mut impl Rng) -> ModelParams {
    let any: [(&[[u8; 3]], u32); 7] = [
        (&GRAYS, 2),
        (&DARKS, 2),
        (&REDS, 1),
        (&BLUES, 1),
        (&GREENS, 1),
        (&WOODS, 2),
        (&WHITES, 1),
    ];
    let (primary, secondary) = match class {
        ObjectClass::Chair => (
            weighted_color(rng, &[(&WOODS, 4), (&DARKS, 2), (&REDS, 1), (&BLUES, 1), (&GRAYS, 2)]),
            weighted_color(rng, &[(&DARKS, 3), (&WOODS, 2), (&GRAYS, 1)]),
        ),
        ObjectClass::Bottle => (
            weighted_color(
                rng,
                &[(&GREENS, 3), (&BLUES, 2), (&GRAYS, 2), (&TANS, 1), (&WHITES, 1)],
            ),
            weighted_color(rng, &[(&REDS, 1), (&WHITES, 1), (&DARKS, 1)]),
        ),
        ObjectClass::Paper => (
            weighted_color(rng, &[(&WHITES, 8), (&GRAYS, 1), (&YELLOWS, 1)]),
            weighted_color(rng, &[(&GRAYS, 1), (&BLUES, 1)]),
        ),
        ObjectClass::Book => {
            (weighted_color(rng, &any), weighted_color(rng, &[(&WHITES, 2), (&YELLOWS, 1)]))
        }
        ObjectClass::Table => (
            weighted_color(rng, &[(&WOODS, 5), (&WHITES, 1), (&GRAYS, 1), (&DARKS, 1)]),
            weighted_color(rng, &[(&WOODS, 2), (&DARKS, 2), (&GRAYS, 1)]),
        ),
        ObjectClass::Box => (
            weighted_color(rng, &[(&TANS, 5), (&WHITES, 1), (&GRAYS, 1), (&WOODS, 1)]),
            weighted_color(rng, &[(&TANS, 2), (&GRAYS, 1), (&DARKS, 1)]),
        ),
        ObjectClass::Window => (
            weighted_color(rng, &[(&WHITES, 4), (&WOODS, 2), (&GRAYS, 2)]),
            // Glass keeps a pale blue-grey bias.
            weighted_color(
                rng,
                &[(&[[188u8, 214, 234], [206, 226, 240], [170, 200, 224]][..], 3), (&GRAYS, 1)],
            ),
        ),
        ObjectClass::Door => (
            weighted_color(rng, &[(&WOODS, 4), (&WHITES, 3), (&GRAYS, 1), (&DARKS, 1)]),
            weighted_color(rng, &[(&YELLOWS, 2), (&GRAYS, 1), (&DARKS, 1)]),
        ),
        ObjectClass::Sofa => (
            weighted_color(
                rng,
                &[(&REDS, 2), (&BLUES, 2), (&GRAYS, 2), (&GREENS, 1), (&TANS, 1), (&DARKS, 1)],
            ),
            weighted_color(rng, &[(&DARKS, 2), (&GRAYS, 1)]),
        ),
        ObjectClass::Lamp => (
            weighted_color(rng, &[(&YELLOWS, 3), (&WHITES, 3), (&GRAYS, 1), (&TANS, 1)]),
            weighted_color(rng, &[(&DARKS, 2), (&GRAYS, 2), (&WOODS, 1)]),
        ),
    };
    ModelParams {
        class,
        primary: jitter_color(rng, primary, 22),
        secondary: jitter_color(rng, secondary, 22),
        aspect: rng.gen_range(0.55..1.7),
        elongation: rng.gen_range(0.7..1.45),
        style: rng.gen_range(0..4),
        detail: rng.gen_range(0.0..1.0),
    }
}

/// Local→canvas transform for a view: local coordinates live in roughly
/// `[-1, 1]²` with +y pointing down.
struct Frame {
    view: ViewParams,
    aspect: f32,
    elongation: f32,
}

impl Frame {
    fn map(&self, x: f32, y: f32) -> P2 {
        let x = if self.view.flip { -x } else { x } * self.aspect * self.view.stretch_x;
        let y = y * self.elongation * self.view.stretch_y;
        let x = x + self.view.shear * y;
        let p = p2(self.view.cx + x * self.view.scale, self.view.cy + y * self.view.scale);
        p.rotated(p2(self.view.cx, self.view.cy), self.view.rotation)
    }

    fn poly(&self, c: &mut Canvas, pts: &[(f32, f32)], color: [u8; 3]) {
        let mapped: Vec<P2> = pts.iter().map(|&(x, y)| self.map(x, y)).collect();
        c.fill_polygon(&mapped, color);
    }

    fn rect(&self, c: &mut Canvas, x0: f32, y0: f32, x1: f32, y1: f32, color: [u8; 3]) {
        self.poly(c, &[(x0, y0), (x1, y0), (x1, y1), (x0, y1)], color);
    }

    fn ellipse(&self, c: &mut Canvas, cx: f32, cy: f32, rx: f32, ry: f32, color: [u8; 3]) {
        // Rasterise a rotated ellipse as a polygon.
        let pts: Vec<(f32, f32)> = (0..24)
            .map(|i| {
                let t = i as f32 / 24.0 * std::f32::consts::TAU;
                (cx + rx * t.cos(), cy + ry * t.sin())
            })
            .collect();
        self.poly(c, &pts, color);
    }
}

/// Draw one view of a model onto the canvas.
/// Draw one view of a model onto the canvas.
///
/// Every class has several *structural* style variants (selected by
/// `style`), mirroring the heterogeneity of real ShapeNet categories —
/// a "chair" can be a four-legged dining chair, an armchair or a stool;
/// a "lamp" a floor, desk or bedside lamp. This intra-class silhouette
/// diversity is what keeps Hu-moment matching in the weak regime the
/// paper reports.
pub fn draw_object(canvas: &mut Canvas, m: &ModelParams, view: ViewParams) {
    let f = Frame { view, aspect: m.aspect, elongation: m.elongation };
    let d = m.detail;
    match m.class {
        ObjectClass::Chair => match m.style % 4 {
            0 | 1 => {
                // Dining chair: backrest + seat + legs.
                let seat_y = 0.1 + 0.1 * d;
                f.rect(canvas, -0.55, -1.0, 0.55, seat_y, m.primary);
                if m.style == 0 {
                    f.rect(canvas, -0.35, -0.8, -0.15, seat_y - 0.15, m.secondary);
                    f.rect(canvas, 0.15, -0.8, 0.35, seat_y - 0.15, m.secondary);
                }
                f.rect(canvas, -0.65, seat_y, 0.65, seat_y + 0.22, m.primary);
                for &lx in &[-0.6f32, -0.2, 0.15, 0.5] {
                    f.rect(canvas, lx, seat_y + 0.22, lx + 0.1, 1.0, m.secondary);
                }
            }
            2 => {
                // Armchair: fat body, low back, stubby legs.
                f.rect(canvas, -0.75, -0.55, 0.75, 0.55, m.primary);
                f.rect(canvas, -0.9, -0.2 - 0.2 * d, -0.6, 0.55, m.secondary);
                f.rect(canvas, 0.6, -0.2 - 0.2 * d, 0.9, 0.55, m.secondary);
                f.rect(canvas, -0.6, 0.55, -0.45, 0.8, m.secondary);
                f.rect(canvas, 0.45, 0.55, 0.6, 0.8, m.secondary);
            }
            _ => {
                // Stool: seat disc + splayed legs, no backrest.
                f.ellipse(canvas, 0.0, -0.3, 0.55, 0.18, m.primary);
                f.poly(
                    canvas,
                    &[(-0.45, -0.2), (-0.7, 0.9), (-0.55, 0.9), (-0.3, -0.2)],
                    m.secondary,
                );
                f.poly(canvas, &[(0.45, -0.2), (0.7, 0.9), (0.55, 0.9), (0.3, -0.2)], m.secondary);
                f.rect(canvas, -0.06, -0.2, 0.06, 0.9, m.secondary);
            }
        },
        ObjectClass::Bottle => match m.style % 3 {
            0 => {
                // Wine bottle: tall, thin neck.
                let neck_w = 0.1 + 0.06 * d;
                f.rect(canvas, -0.32, -0.3, 0.32, 0.9, m.primary);
                f.poly(
                    canvas,
                    &[(-0.32, -0.3), (-neck_w, -0.62), (neck_w, -0.62), (0.32, -0.3)],
                    m.primary,
                );
                f.rect(canvas, -neck_w, -1.0, neck_w, -0.55, m.primary);
                f.rect(canvas, -neck_w - 0.02, -1.05, neck_w + 0.02, -0.94, m.secondary);
                if m.style == 0 && d > 0.4 {
                    f.rect(canvas, -0.32, 0.15, 0.32, 0.5, m.secondary);
                }
            }
            1 => {
                // Jar: wide cylinder, wide lid, no neck.
                f.rect(canvas, -0.5, -0.6, 0.5, 0.8, m.primary);
                f.ellipse(canvas, 0.0, 0.8, 0.5, 0.12, m.primary);
                f.rect(canvas, -0.54, -0.82, 0.54, -0.58, m.secondary);
            }
            _ => {
                // Flask: round body, medium neck.
                f.ellipse(canvas, 0.0, 0.3, 0.55, 0.55, m.primary);
                let neck_w = 0.12 + 0.05 * d;
                f.rect(canvas, -neck_w, -0.9, neck_w, -0.1, m.primary);
                f.rect(canvas, -neck_w - 0.04, -1.0, neck_w + 0.04, -0.86, m.secondary);
            }
        },
        ObjectClass::Paper => match m.style % 3 {
            0 => {
                // Portrait sheet with ruled lines.
                f.rect(canvas, -0.68, -0.92, 0.68, 0.92, m.primary);
                let lines = 4 + (d * 4.0) as i32;
                for i in 0..lines {
                    let y = -0.7 + 1.4 * i as f32 / lines as f32;
                    f.rect(canvas, -0.55, y, 0.55, y + 0.035, m.secondary);
                }
            }
            1 => {
                // Landscape sheet, blank.
                f.rect(canvas, -0.92, -0.64, 0.92, 0.64, m.primary);
            }
            _ => {
                // Slightly crumpled sheet: irregular pentagon.
                f.poly(
                    canvas,
                    &[(-0.62, -0.85), (0.55, -0.95), (0.72, 0.1), (0.5, 0.9), (-0.7, 0.8)],
                    m.primary,
                );
            }
        },
        ObjectClass::Book => match m.style % 3 {
            0 | 1 => {
                // Upright cover with spine stripe and title block.
                f.rect(canvas, -0.62, -0.88, 0.62, 0.88, m.primary);
                f.rect(canvas, -0.62, -0.88, -0.45, 0.88, m.secondary);
                if m.style == 0 {
                    f.rect(canvas, -0.25, -0.55, 0.45, -0.25 + 0.2 * d, m.secondary);
                }
            }
            _ => {
                // Lying flat: wide slab with page edge visible.
                f.rect(canvas, -0.9, -0.35, 0.9, 0.35, m.primary);
                f.rect(canvas, -0.9, 0.2, 0.9, 0.35, m.secondary);
            }
        },
        ObjectClass::Table => match m.style % 3 {
            0 => {
                // Four-leg table.
                let top_y = -0.45 + 0.15 * d;
                f.rect(canvas, -1.0, top_y, 1.0, top_y + 0.18, m.primary);
                let inset = 0.12 + 0.1 * d;
                f.rect(canvas, -1.0 + inset, top_y + 0.18, -0.82 + inset, 0.95, m.secondary);
                f.rect(canvas, 0.82 - inset, top_y + 0.18, 1.0 - inset, 0.95, m.secondary);
            }
            1 => {
                // Pedestal table.
                f.rect(canvas, -0.95, -0.5, 0.95, -0.3, m.primary);
                f.rect(canvas, -0.12, -0.3, 0.12, 0.75, m.secondary);
                f.poly(canvas, &[(-0.5, 0.95), (0.5, 0.95), (0.2, 0.7), (-0.2, 0.7)], m.secondary);
            }
            _ => {
                // Desk with side drawers (box-like silhouette).
                f.rect(canvas, -1.0, -0.5, 1.0, -0.3, m.primary);
                f.rect(canvas, 0.35, -0.3, 0.95, 0.9, m.secondary);
                f.rect(canvas, -0.95, -0.3, -0.8, 0.9, m.secondary);
                f.rect(canvas, 0.42, -0.1 - 0.1 * d, 0.88, 0.05, m.primary);
                f.rect(canvas, 0.42, 0.25, 0.88, 0.4, m.primary);
            }
        },
        ObjectClass::Box => match m.style % 3 {
            0 => {
                // Closed carton with tape.
                f.rect(canvas, -0.7, -0.6, 0.7, 0.75, m.primary);
                f.rect(canvas, -0.7, -0.62, 0.7, -0.52, m.secondary);
                f.rect(canvas, -0.08, -0.6, 0.08, 0.75, m.secondary);
            }
            1 => {
                // Open box with raised flaps.
                f.rect(canvas, -0.65, -0.4, 0.65, 0.8, m.primary);
                f.poly(
                    canvas,
                    &[(-0.65, -0.4), (-0.95, -0.85), (-0.75, -0.9), (-0.5, -0.4)],
                    m.secondary,
                );
                f.poly(
                    canvas,
                    &[(0.65, -0.4), (0.95, -0.85), (0.75, -0.9), (0.5, -0.4)],
                    m.secondary,
                );
            }
            _ => {
                // Flat parcel.
                f.rect(canvas, -0.9, -0.2 - 0.2 * d, 0.9, 0.55, m.primary);
                f.rect(canvas, -0.9, 0.1, 0.9, 0.2, m.secondary);
            }
        },
        ObjectClass::Window => match m.style % 3 {
            0 | 1 => {
                // Rectangular frame with mullions.
                f.rect(canvas, -0.8, -0.9, 0.8, 0.9, m.primary);
                f.rect(canvas, -0.68, -0.78, 0.68, 0.78, m.secondary);
                f.rect(canvas, -0.06, -0.78, 0.06, 0.78, m.primary);
                if m.style == 0 {
                    f.rect(canvas, -0.68, -0.06, 0.68, 0.06, m.primary);
                }
            }
            _ => {
                // Arched window.
                f.rect(canvas, -0.7, -0.3, 0.7, 0.9, m.primary);
                f.ellipse(canvas, 0.0, -0.3, 0.7, 0.6, m.primary);
                f.rect(canvas, -0.58, -0.25, 0.58, 0.78, m.secondary);
                f.ellipse(canvas, 0.0, -0.3, 0.55, 0.45, m.secondary);
                f.rect(canvas, -0.05, -0.75, 0.05, 0.78, m.primary);
            }
        },
        ObjectClass::Door => match m.style % 3 {
            0 | 1 => {
                // Panelled door with knob.
                f.rect(canvas, -0.48, -1.0, 0.48, 1.0, m.primary);
                let panel = [
                    (m.primary[0] as i16 - 25).max(0) as u8,
                    (m.primary[1] as i16 - 25).max(0) as u8,
                    (m.primary[2] as i16 - 25).max(0) as u8,
                ];
                f.rect(canvas, -0.32, -0.8, 0.32, -0.15, panel);
                f.rect(canvas, -0.32, 0.05, 0.32, 0.8, panel);
                f.ellipse(canvas, 0.34, -0.02, 0.07, 0.07, m.secondary);
            }
            _ => {
                // Door with arched glazing at the top.
                f.rect(canvas, -0.48, -1.0, 0.48, 1.0, m.primary);
                f.ellipse(canvas, 0.0, -0.55, 0.3, 0.3 + 0.1 * d, m.secondary);
                f.ellipse(canvas, -0.34, 0.05, 0.06, 0.06, m.secondary);
            }
        },
        ObjectClass::Sofa => match m.style % 3 {
            0 | 1 => {
                // Two-seater with armrests.
                f.rect(canvas, -0.95, -0.55, 0.95, 0.1, m.primary);
                f.rect(canvas, -0.95, 0.1, 0.95, 0.55, m.primary);
                f.rect(canvas, -1.0, -0.25, -0.78, 0.55, m.secondary);
                f.rect(canvas, 0.78, -0.25, 1.0, 0.55, m.secondary);
                if m.style == 0 {
                    f.rect(canvas, -0.03, 0.1, 0.03, 0.55, m.secondary);
                }
                f.rect(canvas, -0.85, 0.55, -0.72, 0.75, m.secondary);
                f.rect(canvas, 0.72, 0.55, 0.85, 0.75, m.secondary);
            }
            _ => {
                // Chaise longue: asymmetric, one armrest, long seat.
                f.rect(canvas, -1.0, -0.5, -0.6, 0.55, m.secondary);
                f.rect(canvas, -1.0, 0.0, 1.0, 0.55, m.primary);
                f.poly(canvas, &[(0.6, 0.0), (1.0, 0.0), (1.0, -0.25), (0.75, -0.2)], m.primary);
                f.rect(canvas, -0.85, 0.55, -0.72, 0.75, m.secondary);
                f.rect(canvas, 0.72, 0.55, 0.85, 0.75, m.secondary);
            }
        },
        ObjectClass::Lamp => match m.style % 3 {
            0 => {
                // Floor lamp: tall thin pole, trapezoid shade.
                let top = 0.22 + 0.15 * d;
                f.poly(
                    canvas,
                    &[(-top, -1.0), (top, -1.0), (0.45, -0.55), (-0.45, -0.55)],
                    m.primary,
                );
                f.rect(canvas, -0.04, -0.55, 0.04, 0.8, m.secondary);
                f.ellipse(canvas, 0.0, 0.85, 0.35, 0.1, m.secondary);
            }
            1 => {
                // Desk lamp: big shade, short bent arm, heavy base.
                f.ellipse(canvas, -0.2, -0.5, 0.55, 0.35, m.primary);
                f.poly(
                    canvas,
                    &[(0.1, -0.3), (0.55, 0.5), (0.45, 0.55), (0.0, -0.25)],
                    m.secondary,
                );
                f.rect(canvas, 0.15, 0.5, 0.85, 0.7, m.secondary);
            }
            _ => {
                // Bedside lamp: round shade on a squat base.
                f.ellipse(canvas, 0.0, -0.4, 0.5, 0.42, m.primary);
                f.rect(canvas, -0.08, 0.0, 0.08, 0.45, m.secondary);
                f.poly(
                    canvas,
                    &[(-0.4, 0.85), (0.4, 0.85), (0.15, 0.4), (-0.15, 0.4)],
                    m.secondary,
                );
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use taor_imgproc::prelude::*;

    fn render(class: ObjectClass, seed: u64) -> taor_imgproc::RgbImage {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let m = sample_model(class, &mut rng);
        let mut canvas = Canvas::new(96, 96, [255, 255, 255]);
        draw_object(&mut canvas, &m, ViewParams::frontal(36.0, 48.0, 48.0));
        canvas.into_image()
    }

    #[test]
    fn every_class_draws_something() {
        for class in ObjectClass::ALL {
            let img = render(class, 7);
            let non_white =
                img.as_raw().chunks_exact(3).filter(|px| *px != [255, 255, 255]).count();
            assert!(non_white > 200, "{class:?} drew only {non_white} pixels");
        }
    }

    #[test]
    fn object_produces_one_dominant_contour() {
        for class in ObjectClass::ALL {
            let img = render(class, 3);
            let gray = rgb_to_gray(&img);
            let bin = threshold_binary_inv(&gray, 250);
            let contours = find_contours(&bin);
            let largest = largest_contour(&contours).expect("object visible");
            assert!(largest.area() > 100.0, "{class:?} area {}", largest.area());
        }
    }

    #[test]
    fn models_of_same_class_differ() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let a = sample_model(ObjectClass::Chair, &mut rng);
        let b = sample_model(ObjectClass::Chair, &mut rng);
        assert!(
            a.primary != b.primary || a.style != b.style || a.aspect != b.aspect,
            "independent samples should differ"
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut r1 = rand::rngs::SmallRng::seed_from_u64(11);
        let mut r2 = rand::rngs::SmallRng::seed_from_u64(11);
        let a = sample_model(ObjectClass::Sofa, &mut r1);
        let b = sample_model(ObjectClass::Sofa, &mut r2);
        assert_eq!(a.primary, b.primary);
        assert_eq!(a.style, b.style);
    }

    #[test]
    fn rotation_changes_the_render() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let m = sample_model(ObjectClass::Lamp, &mut rng);
        let mut c1 = Canvas::new(96, 96, [255, 255, 255]);
        let mut c2 = Canvas::new(96, 96, [255, 255, 255]);
        let base = ViewParams::frontal(34.0, 48.0, 48.0);
        draw_object(&mut c1, &m, base);
        draw_object(&mut c2, &m, ViewParams { rotation: 0.8, ..base });
        assert_ne!(c1.into_image(), c2.into_image());
    }

    #[test]
    fn flip_mirrors_the_render() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(13);
        let m = sample_model(ObjectClass::Door, &mut rng);
        let base = ViewParams::frontal(34.0, 48.0, 48.0);
        let mut c1 = Canvas::new(96, 96, [255, 255, 255]);
        draw_object(&mut c1, &m, base);
        let mut c2 = Canvas::new(96, 96, [255, 255, 255]);
        draw_object(&mut c2, &m, ViewParams { flip: true, ..base });
        let i1 = c1.into_image();
        let i2 = c2.into_image();
        assert_ne!(i1, i2, "door knob breaks mirror symmetry");
    }
}
