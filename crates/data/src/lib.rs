//! # taor-data
//!
//! Synthetic stand-ins for the two corpora of Chiatti et al. (EDBT/ICDT
//! 2019 workshops, Table 1): the ShapeNet 2-D view subsets (SNS1, SNS2)
//! and the segmented NYU Depth V2 crops (NYUSet).
//!
//! The original data cannot ship with a self-contained reproduction
//! (ShapeNet requires registration; NYU Depth V2 is a 2.8 GB Matlab
//! archive), and the paper's pipelines consume nothing but *segmented
//! single-object RGB crops*. This crate therefore renders the ten target
//! classes procedurally:
//!
//! * [`shapes`] — parametric per-class generators with class palettes
//!   that deliberately overlap (wood browns, whites) the way real indoor
//!   objects do,
//! * [`render`] — catalog mode (white background, canonical rotations —
//!   ShapeNet-like) vs. scene mode (black segmentation mask, pose and
//!   lighting jitter, occlusion bites, sloppy mask margins — NYU-like),
//! * [`dataset`] — builders reproducing Table 1's cardinalities exactly,
//! * [`pairs`] — the Siamese pair sets of §3.4 (9,450 training pairs at
//!   52 % similar; the 3,321-pair SNS1 test; the 8,200-pair NYU+SNS1
//!   test with the paper's 4,160/4,040 support split),
//! * [`classes`] — the ten classes, Table 1 counts, and WordNet-style
//!   synsets for the knowledge-grounding motivation.
//!
//! Everything is deterministic in a `u64` seed.

#![forbid(unsafe_code)]

pub mod classes;
pub mod dataset;
pub mod pairs;
pub mod render;
pub mod scene;
pub mod shapes;

pub use classes::{ObjectClass, Synset};
pub use dataset::{
    catalog_custom, gallery_grid, nyu_set, nyu_set_subsampled, sample_per_class, shapenet_set1,
    shapenet_set2, Dataset, DatasetKind, LabeledImage,
};
pub use pairs::{
    mixed_training_pairs, nyu_sns1_test_pairs, sns1_test_pairs, training_pairs, ImagePair,
    NYU_TEST_DISSIMILAR, NYU_TEST_SIMILAR, SNS1_TEST_PAIRS, TRAIN_PAIRS,
};
pub use render::{render_catalog_view, render_grid_view, render_scene_crop, RenderMode, CANVAS};
pub use scene::{patrol_frames, render_room, RoomScene, SceneObject, FRAME_H, FRAME_W};
pub use shapes::{draw_object, sample_model, ModelParams, ViewParams};
