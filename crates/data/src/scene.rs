// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Multi-object room frames — the mobile-robot setting the paper's
//! conclusion targets ("for further application on RGB frames captured by
//! a mobile robot in a real-life scenario").
//!
//! The paper deliberately evaluated on pre-segmented crops "leaving
//! potential error-propagation from segmentation faults out of the
//! picture". This module renders whole frames (wall + floor + several
//! objects with ground-truth boxes) so that `taor-core::segment` can
//! close the loop and *measure* that error propagation.

use crate::classes::ObjectClass;
use crate::shapes::{draw_object, sample_model, ViewParams};
use rand::Rng;
use taor_imgproc::draw::Canvas;
use taor_imgproc::image::{Rect, RgbImage};

/// Frame dimensions (w, h) of a simulated robot camera.
pub const FRAME_W: u32 = 320;
pub const FRAME_H: u32 = 200;

/// One placed object with its ground truth.
#[derive(Debug, Clone)]
pub struct SceneObject {
    pub class: ObjectClass,
    /// Ground-truth bounding box of the drawn object.
    pub bbox: Rect,
}

/// A rendered room frame.
#[derive(Debug, Clone)]
pub struct RoomScene {
    pub image: RgbImage,
    pub objects: Vec<SceneObject>,
    /// The wall / floor colours used (the segmentation front-end estimates
    /// these from the image borders; tests can compare).
    pub wall: [u8; 3],
    pub floor: [u8; 3],
}

/// Render a room with `n_objects` objects drawn from `classes` (cycled).
pub fn render_room(classes: &[ObjectClass], rng: &mut impl Rng) -> RoomScene {
    assert!(!classes.is_empty(), "at least one class required");
    let wall = [
        196u8.saturating_add_signed(rng.gen_range(-20..20)),
        188u8.saturating_add_signed(rng.gen_range(-20..20)),
        172u8.saturating_add_signed(rng.gen_range(-20..20)),
    ];
    let floor = [
        140u8.saturating_add_signed(rng.gen_range(-20..20)),
        108u8.saturating_add_signed(rng.gen_range(-16..16)),
        76u8.saturating_add_signed(rng.gen_range(-14..14)),
    ];
    let mut canvas = Canvas::new(FRAME_W, FRAME_H, wall);
    // Floor: lower third, with plank seams.
    let horizon = FRAME_H as f32 * rng.gen_range(0.6..0.72);
    canvas.fill_rect(0.0, horizon, FRAME_W as f32, FRAME_H as f32 - horizon, floor);
    for i in 0..6 {
        let y = horizon + (FRAME_H as f32 - horizon) * i as f32 / 6.0;
        let seam =
            [floor[0].saturating_sub(14), floor[1].saturating_sub(12), floor[2].saturating_sub(10)];
        canvas.fill_rect(0.0, y, FRAME_W as f32, 1.5, seam);
    }

    // Place the objects left to right with jitter; objects sit on the
    // floor line.
    let n = classes.len();
    let slot_w = FRAME_W as f32 / n as f32;
    let mut objects = Vec::with_capacity(n);
    for (i, &class) in classes.iter().enumerate() {
        let model = sample_model(class, rng);
        // Keep objects comfortably inside their slot so neighbouring
        // silhouettes do not merge into one connected component.
        let max_scale = (slot_w / 4.5).min(30.0);
        let scale = rng.gen_range(max_scale * 0.65..max_scale);
        let cx = slot_w * (i as f32 + 0.5) + rng.gen_range(-8.0..8.0);
        let cy = horizon - scale * 0.35 + rng.gen_range(-8.0..4.0);
        let view = ViewParams {
            rotation: rng.gen_range(-0.15..0.15),
            scale,
            cx,
            cy,
            flip: rng.gen_bool(0.5),
            stretch_x: rng.gen_range(0.8..1.2),
            stretch_y: rng.gen_range(0.85..1.15),
            shear: rng.gen_range(-0.15..0.15),
        };
        // Exact ground truth: diff the canvas around the draw call and
        // box the changed pixels.
        let before = canvas.image().clone();
        draw_object(&mut canvas, &model, view);
        let after = canvas.image();
        let (mut x0, mut y0, mut x1, mut y1) = (u32::MAX, u32::MAX, 0u32, 0u32);
        for (x, y, px) in after.enumerate_pixels() {
            if px != before.pixel(x, y) {
                x0 = x0.min(x);
                y0 = y0.min(y);
                x1 = x1.max(x);
                y1 = y1.max(y);
            }
        }
        if x0 <= x1 && y0 <= y1 {
            objects.push(SceneObject { class, bbox: Rect::new(x0, y0, x1 - x0 + 1, y1 - y0 + 1) });
        }
    }

    // Mild sensor noise over the whole frame.
    let mut img = canvas.into_image();
    for v in img.as_raw_mut().iter_mut() {
        let noise = rng.gen_range(-5i16..=5);
        *v = (*v as i16 + noise).clamp(0, 255) as u8;
    }
    RoomScene { image: img, objects, wall, floor }
}

/// A deterministic patrol of room frames covering all ten classes.
pub fn patrol_frames(seed: u64, n_frames: usize) -> Vec<RoomScene> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ 0x500C);
    (0..n_frames)
        .map(|i| {
            let k = 3 + (i % 3);
            let classes: Vec<ObjectClass> = (0..k)
                .map(|j| ObjectClass::ALL[(i * 3 + j * 7 + 1) % ObjectClass::COUNT])
                .collect();
            render_room(&classes, &mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn room_contains_all_requested_objects() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let scene =
            render_room(&[ObjectClass::Chair, ObjectClass::Lamp, ObjectClass::Table], &mut rng);
        assert_eq!(scene.objects.len(), 3);
        assert_eq!(scene.image.dimensions(), (FRAME_W, FRAME_H));
        for obj in &scene.objects {
            assert!(obj.bbox.width > 10 && obj.bbox.height > 10);
            assert!(obj.bbox.x + obj.bbox.width <= FRAME_W);
            assert!(obj.bbox.y + obj.bbox.height <= FRAME_H);
        }
    }

    #[test]
    fn background_dominates_border_pixels() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        let scene = render_room(&[ObjectClass::Box], &mut rng);
        // Top row should be wall-ish.
        let mut close = 0;
        for x in 0..FRAME_W {
            let px = scene.image.pixel(x, 0);
            if px.iter().zip(&scene.wall).all(|(&a, &b)| (a as i16 - b as i16).abs() < 20) {
                close += 1;
            }
        }
        assert!(close * 10 > FRAME_W * 9, "{close}/{FRAME_W} wall-coloured");
    }

    #[test]
    fn patrol_is_deterministic_and_nonempty() {
        let a = patrol_frames(9, 4);
        let b = patrol_frames(9, 4);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.image, y.image);
        }
        assert!(a.iter().all(|s| !s.objects.is_empty()));
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_class_list_panics() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        render_room(&[], &mut rng);
    }
}
