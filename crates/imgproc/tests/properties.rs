//! Property-based tests for the image-processing substrate.

use proptest::prelude::*;
use taor_imgproc::prelude::*;

/// Arbitrary small grayscale image with at least one foreground pixel.
fn arb_gray(max_side: u32) -> impl Strategy<Value = GrayImage> {
    (2..=max_side, 2..=max_side).prop_flat_map(|(w, h)| {
        proptest::collection::vec(any::<u8>(), (w * h) as usize)
            .prop_map(move |data| GrayImage::from_vec(w, h, data).unwrap())
    })
}

fn arb_rgb(max_side: u32) -> impl Strategy<Value = RgbImage> {
    (2..=max_side, 2..=max_side).prop_flat_map(|(w, h)| {
        proptest::collection::vec(any::<u8>(), (w * h * 3) as usize)
            .prop_map(move |data| RgbImage::from_vec(w, h, data).unwrap())
    })
}

proptest! {
    #[test]
    fn threshold_outputs_only_0_and_255(img in arb_gray(24), t in any::<u8>()) {
        let bin = threshold_binary(&img, t);
        prop_assert!(bin.as_raw().iter().all(|&v| v == 0 || v == 255));
        let inv = threshold_binary_inv(&img, t);
        for (a, b) in bin.as_raw().iter().zip(inv.as_raw()) {
            prop_assert_eq!(a ^ b, 255);
        }
    }

    #[test]
    fn otsu_threshold_is_a_valid_level(img in arb_gray(16)) {
        // Applying the returned threshold must never panic and must binarise.
        let t = otsu_threshold(&img);
        let bin = threshold_binary(&img, t);
        prop_assert!(bin.as_raw().iter().all(|&v| v == 0 || v == 255));
    }

    #[test]
    fn contours_cover_every_component_start(img in arb_gray(20)) {
        let bin = threshold_binary(&img, 127);
        let contours = find_contours(&bin);
        // Every contour's bounding rect lies inside the image.
        for c in &contours {
            let r = c.bounding_rect();
            prop_assert!(r.x + r.width <= bin.width());
            prop_assert!(r.y + r.height <= bin.height());
            // Every traced point is a foreground pixel.
            for p in &c.points {
                prop_assert!(bin.get(p.x as u32, p.y as u32) > 0);
            }
        }
    }

    #[test]
    fn contour_area_bounded_by_bounding_box(img in arb_gray(20)) {
        // Traced borders of thin 8-connected structures may self-intersect,
        // in which case the shoelace value double-counts wound regions (the
        // same caveat OpenCV documents for `contourArea`). The area is still
        // bounded by a small multiple of the bounding box.
        let bin = threshold_binary(&img, 100);
        for c in find_contours(&bin) {
            let bb = c.bounding_rect().area() as f64;
            prop_assert!(
                c.area() <= 2.0 * bb + 1.0,
                "polygon area {} >> bbox {}",
                c.area(),
                bb
            );
        }
    }

    #[test]
    fn hu_translation_invariance_prop(w in 2u32..10, h in 2u32..10, ox in 0u32..12, oy in 0u32..12) {
        let mut a = GrayImage::new(32, 32);
        let mut b = GrayImage::new(32, 32);
        for y in 0..h {
            for x in 0..w {
                a.put(x + 1, y + 1, 255);
                b.put(x + ox + 1, y + oy + 1, 255);
            }
        }
        let ha = hu_moments(&moments(&a, true));
        let hb = hu_moments(&moments(&b, true));
        for i in 0..7 {
            prop_assert!((ha[i] - hb[i]).abs() < 1e-9, "hu[{}]: {} vs {}", i, ha[i], hb[i]);
        }
    }

    #[test]
    fn match_shapes_symmetry_i2(img1 in arb_gray(16), img2 in arb_gray(16)) {
        let h1 = hu_moments(&moments(&threshold_binary(&img1, 127), true));
        let h2 = hu_moments(&moments(&threshold_binary(&img2, 127), true));
        let d12 = match_shapes(&h1, &h2, MatchShapesMode::I2);
        let d21 = match_shapes(&h2, &h1, MatchShapesMode::I2);
        // Degenerate (empty-contour) Hu vectors yield +inf on both sides;
        // finite distances must agree exactly.
        if d12.is_finite() || d21.is_finite() {
            prop_assert!((d12 - d21).abs() < 1e-12);
        } else {
            prop_assert_eq!(d12, f64::INFINITY);
            prop_assert_eq!(d21, f64::INFINITY);
        }
        prop_assert!(!d12.is_nan());
    }

    #[test]
    fn histogram_metrics_well_behaved(a in arb_rgb(12), b in arb_rgb(12)) {
        let ha = rgb_histogram(&a, 16).unwrap();
        let hb = rgb_histogram(&b, 16).unwrap();
        let corr = compare_hist(&ha, &hb, HistCompare::Correlation).unwrap();
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&corr));
        let hell = compare_hist(&ha, &hb, HistCompare::Hellinger).unwrap();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&hell));
        let inter = compare_hist(&ha, &hb, HistCompare::Intersection).unwrap();
        prop_assert!((0.0..=3.0 + 1e-9).contains(&inter));
        let chi = compare_hist(&ha, &hb, HistCompare::ChiSquare).unwrap();
        prop_assert!(chi >= 0.0 && chi.is_finite());
    }

    #[test]
    fn hellinger_triangleish_self_identity(a in arb_rgb(10)) {
        let h = rgb_histogram(&a, 8).unwrap();
        prop_assert!(compare_hist(&h, &h, HistCompare::Hellinger).unwrap() < 1e-6);
        prop_assert_eq!(compare_hist(&h, &h, HistCompare::ChiSquare).unwrap(), 0.0);
    }

    #[test]
    fn resize_dimensions_honoured(img in arb_gray(16), w in 1u32..40, h in 1u32..40) {
        let r = resize_bilinear(&img, w, h).unwrap();
        prop_assert_eq!(r.dimensions(), (w, h));
        let n = resize_nearest(&img, w, h).unwrap();
        prop_assert_eq!(n.dimensions(), (w, h));
    }

    #[test]
    fn resize_output_within_input_range(img in arb_gray(12)) {
        let lo = *img.as_raw().iter().min().unwrap();
        let hi = *img.as_raw().iter().max().unwrap();
        let r = resize_bilinear(&img, 7, 9).unwrap();
        for &v in r.as_raw() {
            prop_assert!(v >= lo && v <= hi);
        }
    }

    #[test]
    fn gaussian_blur_stays_in_range(img in arb_gray(12), sigma in 0.3f32..3.0) {
        let f = img.to_f32();
        let b = gaussian_blur(&f, sigma).unwrap();
        for &v in b.as_raw() {
            prop_assert!((-0.5..=255.5).contains(&v));
        }
    }

    #[test]
    fn integral_box_sum_nonnegative_and_monotone(img in arb_gray(14)) {
        let ii = IntegralImage::from_gray(&img);
        let w = img.width() as i64;
        let h = img.height() as i64;
        let inner = ii.box_sum(1, 1, w - 2, h - 2);
        let outer = ii.box_sum(0, 0, w, h);
        prop_assert!(inner >= 0.0);
        prop_assert!(outer + 1e-9 >= inner);
    }

    #[test]
    fn crop_roundtrip_pixels(img in arb_rgb(12)) {
        let (w, h) = img.dimensions();
        let rect = Rect::new(0, 0, w, h);
        let c = img.crop(rect).unwrap();
        prop_assert_eq!(c, img);
    }

    #[test]
    fn gray_conversion_is_bounded_by_channel_extremes(img in arb_rgb(10)) {
        let g = rgb_to_gray(&img);
        for (x, y, [r, gr, b]) in img.enumerate_pixels() {
            let lo = r.min(gr).min(b);
            let hi = r.max(gr).max(b);
            let v = g.get(x, y);
            prop_assert!(v >= lo.saturating_sub(1) && v <= hi.saturating_add(1));
        }
    }
}
