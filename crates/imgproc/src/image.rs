// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Image containers.
//!
//! [`ImageBuf`] is a dense, row-major, interleaved-channel image with a
//! compile-time channel count. The three aliases used throughout the
//! workspace are [`GrayImage`] (`u8`, 1 channel), [`RgbImage`] (`u8`, 3
//! channels) and [`GrayF32`] (`f32`, 1 channel, used by the scale-space
//! code in `taor-features`).

use crate::error::{ImgError, Result};

/// Maximum supported image side, to keep `width * height * C` comfortably
/// inside `usize` and catch corrupted dimensions early.
pub const MAX_DIM: u32 = 1 << 16;

/// An axis-aligned rectangle (`x`, `y` is the top-left corner, inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rect {
    pub x: u32,
    pub y: u32,
    pub width: u32,
    pub height: u32,
}

impl Rect {
    /// Construct a rectangle.
    pub fn new(x: u32, y: u32, width: u32, height: u32) -> Self {
        Rect { x, y, width, height }
    }

    /// Area in pixels.
    pub fn area(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Whether `(px, py)` lies inside the rectangle.
    pub fn contains(&self, px: u32, py: u32) -> bool {
        px >= self.x && py >= self.y && px < self.x + self.width && py < self.y + self.height
    }

    /// Intersection with another rectangle, or `None` when disjoint.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = (self.x + self.width).min(other.x + other.width);
        let y1 = (self.y + self.height).min(other.y + other.height);
        if x1 > x0 && y1 > y0 {
            Some(Rect::new(x0, y0, x1 - x0, y1 - y0))
        } else {
            None
        }
    }
}

/// A dense, row-major image with `C` interleaved channels of type `T`.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageBuf<T, const C: usize> {
    width: u32,
    height: u32,
    data: Vec<T>,
}

/// Single-channel 8-bit image.
pub type GrayImage = ImageBuf<u8, 1>;
/// Interleaved 8-bit RGB image.
pub type RgbImage = ImageBuf<u8, 3>;
/// Single-channel `f32` image (scale-space / filtering workhorse).
pub type GrayF32 = ImageBuf<f32, 1>;

impl<T: Copy + Default, const C: usize> ImageBuf<T, C> {
    /// Create a `width` x `height` image filled with `T::default()`.
    ///
    /// # Panics
    /// Panics if either dimension is zero or exceeds [`MAX_DIM`]; use
    /// [`ImageBuf::try_new`] for a fallible variant.
    pub fn new(width: u32, height: u32) -> Self {
        Self::try_new(width, height).expect("invalid image dimensions") // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
    }

    /// Fallible constructor.
    pub fn try_new(width: u32, height: u32) -> Result<Self> {
        if width == 0 || height == 0 || width > MAX_DIM || height > MAX_DIM {
            return Err(ImgError::InvalidDimensions { width, height });
        }
        Ok(ImageBuf {
            width,
            height,
            data: vec![T::default(); width as usize * height as usize * C],
        })
    }

    /// Create an image filled with one value per channel.
    pub fn filled(width: u32, height: u32, value: [T; C]) -> Self {
        let mut img = Self::new(width, height);
        for px in img.data.chunks_exact_mut(C) {
            px.copy_from_slice(&value);
        }
        img
    }

    /// Wrap an existing buffer; `data.len()` must equal `width*height*C`.
    pub fn from_vec(width: u32, height: u32, data: Vec<T>) -> Result<Self> {
        if width == 0 || height == 0 || width > MAX_DIM || height > MAX_DIM {
            return Err(ImgError::InvalidDimensions { width, height });
        }
        let expected = width as usize * height as usize * C;
        if data.len() != expected {
            return Err(ImgError::InvalidRect {
                msg: format!("buffer length {} != {}x{}x{C}", data.len(), width, height),
            });
        }
        Ok(ImageBuf { width, height, data })
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// `(width, height)` pair.
    #[inline]
    pub fn dimensions(&self) -> (u32, u32) {
        (self.width, self.height)
    }

    /// Number of channels (the const parameter `C`).
    #[inline]
    pub fn channels(&self) -> usize {
        C
    }

    /// Whole-image rectangle.
    pub fn bounds(&self) -> Rect {
        Rect::new(0, 0, self.width, self.height)
    }

    /// Flat index of pixel `(x, y)` channel 0.
    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        (y as usize * self.width as usize + x as usize) * C
    }

    /// Whether `(x, y)` lies inside the image.
    #[inline]
    pub fn in_bounds(&self, x: i64, y: i64) -> bool {
        x >= 0 && y >= 0 && (x as u32) < self.width && (y as u32) < self.height
    }

    /// Read the pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics when out of bounds (debug-friendly; hot loops use
    /// [`ImageBuf::pixel_unchecked_math`]-style accessors on validated
    /// coordinates).
    #[inline]
    pub fn pixel(&self, x: u32, y: u32) -> [T; C] {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds for {}x{}",
            self.width,
            self.height
        );
        let i = self.idx(x, y);
        let mut out = [self.data[i]; C];
        out[..C].copy_from_slice(&self.data[i..i + C]);
        out
    }

    /// Fallible pixel read.
    pub fn try_pixel(&self, x: u32, y: u32) -> Result<[T; C]> {
        if x < self.width && y < self.height {
            Ok(self.pixel(x, y))
        } else {
            Err(ImgError::OutOfBounds { x, y, width: self.width, height: self.height })
        }
    }

    /// Write the pixel at `(x, y)`.
    #[inline]
    pub fn put_pixel(&mut self, x: u32, y: u32, value: [T; C]) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds for {}x{}",
            self.width,
            self.height
        );
        let i = self.idx(x, y);
        self.data[i..i + C].copy_from_slice(&value);
    }

    /// Pixel read clamped to the image border (replicate padding).
    #[inline]
    pub fn pixel_clamped(&self, x: i64, y: i64) -> [T; C] {
        let cx = x.clamp(0, self.width as i64 - 1) as u32;
        let cy = y.clamp(0, self.height as i64 - 1) as u32;
        self.pixel(cx, cy)
    }

    /// Raw interleaved buffer.
    #[inline]
    pub fn as_raw(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw interleaved buffer.
    #[inline]
    pub fn as_raw_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the image, returning the raw buffer.
    pub fn into_raw(self) -> Vec<T> {
        self.data
    }

    /// One image row as an interleaved slice.
    #[inline]
    pub fn row(&self, y: u32) -> &[T] {
        let start = y as usize * self.width as usize * C;
        &self.data[start..start + self.width as usize * C]
    }

    /// Iterate `(x, y, pixel)` over the whole image in row-major order.
    pub fn enumerate_pixels(&self) -> impl Iterator<Item = (u32, u32, [T; C])> + '_ {
        let w = self.width;
        self.data.chunks_exact(C).enumerate().map(move |(i, px)| {
            let mut v = [px[0]; C];
            v.copy_from_slice(px);
            ((i as u32) % w, (i as u32) / w, v)
        })
    }

    /// Copy out the sub-image delimited by `rect`.
    pub fn crop(&self, rect: Rect) -> Result<Self> {
        if rect.width == 0 || rect.height == 0 {
            return Err(ImgError::InvalidRect { msg: "zero-sized crop".into() });
        }
        if rect.x + rect.width > self.width || rect.y + rect.height > self.height {
            return Err(ImgError::InvalidRect {
                msg: format!("crop {:?} exceeds image {}x{}", rect, self.width, self.height),
            });
        }
        let mut out = Self::new(rect.width, rect.height);
        for dy in 0..rect.height {
            let src = self.idx(rect.x, rect.y + dy);
            let len = rect.width as usize * C;
            let dst = out.idx(0, dy);
            out.data[dst..dst + len].copy_from_slice(&self.data[src..src + len]);
        }
        Ok(out)
    }

    /// Apply `f` to every channel value, producing a same-shaped image.
    pub fn map<U: Copy + Default>(&self, f: impl Fn(T) -> U) -> ImageBuf<U, C> {
        ImageBuf {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }
}

impl GrayImage {
    /// Scalar read for single-channel images.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> u8 {
        self.pixel(x, y)[0]
    }

    /// Scalar write for single-channel images.
    #[inline]
    pub fn put(&mut self, x: u32, y: u32, v: u8) {
        self.put_pixel(x, y, [v]);
    }

    /// Scalar read with replicate border handling.
    #[inline]
    pub fn get_clamped(&self, x: i64, y: i64) -> u8 {
        self.pixel_clamped(x, y)[0]
    }

    /// Convert to `f32` values in `[0, 255]`.
    pub fn to_f32(&self) -> GrayF32 {
        self.map(|v| v as f32)
    }
}

impl GrayF32 {
    /// Scalar read for single-channel images.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> f32 {
        self.pixel(x, y)[0]
    }

    /// Scalar write for single-channel images.
    #[inline]
    pub fn put(&mut self, x: u32, y: u32, v: f32) {
        self.put_pixel(x, y, [v]);
    }

    /// Scalar read with replicate border handling.
    #[inline]
    pub fn get_clamped(&self, x: i64, y: i64) -> f32 {
        self.pixel_clamped(x, y)[0]
    }

    /// Quantise back to `u8` with clamping.
    pub fn to_u8(&self) -> GrayImage {
        self.map(|v| v.round().clamp(0.0, 255.0) as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_image_is_zeroed() {
        let img = GrayImage::new(4, 3);
        assert_eq!(img.dimensions(), (4, 3));
        assert!(img.as_raw().iter().all(|&v| v == 0));
    }

    #[test]
    fn try_new_rejects_zero_dims() {
        assert!(GrayImage::try_new(0, 5).is_err());
        assert!(GrayImage::try_new(5, 0).is_err());
        assert!(RgbImage::try_new(MAX_DIM + 1, 1).is_err());
    }

    #[test]
    fn put_and_get_roundtrip() {
        let mut img = RgbImage::new(5, 5);
        img.put_pixel(2, 3, [10, 20, 30]);
        assert_eq!(img.pixel(2, 3), [10, 20, 30]);
        assert_eq!(img.pixel(0, 0), [0, 0, 0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(GrayImage::from_vec(2, 2, vec![0; 4]).is_ok());
        assert!(GrayImage::from_vec(2, 2, vec![0; 5]).is_err());
        assert!(RgbImage::from_vec(2, 2, vec![0; 12]).is_ok());
        assert!(RgbImage::from_vec(2, 2, vec![0; 4]).is_err());
    }

    #[test]
    fn clamped_access_replicates_border() {
        let mut img = GrayImage::new(3, 3);
        img.put(0, 0, 7);
        img.put(2, 2, 9);
        assert_eq!(img.get_clamped(-5, -5), 7);
        assert_eq!(img.get_clamped(10, 10), 9);
    }

    #[test]
    fn crop_extracts_expected_region() {
        let mut img = GrayImage::new(6, 6);
        for y in 0..6 {
            for x in 0..6 {
                img.put(x, y, (y * 6 + x) as u8);
            }
        }
        let c = img.crop(Rect::new(1, 2, 3, 2)).unwrap();
        assert_eq!(c.dimensions(), (3, 2));
        assert_eq!(c.get(0, 0), 13);
        assert_eq!(c.get(2, 1), 21);
    }

    #[test]
    fn crop_rejects_out_of_bounds() {
        let img = GrayImage::new(4, 4);
        assert!(img.crop(Rect::new(2, 2, 3, 1)).is_err());
        assert!(img.crop(Rect::new(0, 0, 0, 1)).is_err());
    }

    #[test]
    fn rect_intersection() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(2, 2, 4, 4);
        assert_eq!(a.intersect(&b), Some(Rect::new(2, 2, 2, 2)));
        let c = Rect::new(10, 10, 2, 2);
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn enumerate_pixels_row_major() {
        let mut img = GrayImage::new(2, 2);
        img.put(1, 0, 5);
        let coords: Vec<_> = img.enumerate_pixels().collect();
        assert_eq!(coords[0], (0, 0, [0]));
        assert_eq!(coords[1], (1, 0, [5]));
        assert_eq!(coords[2], (0, 1, [0]));
    }

    #[test]
    fn map_converts_types() {
        let mut img = GrayImage::new(2, 1);
        img.put(0, 0, 100);
        let f = img.to_f32();
        assert_eq!(f.get(0, 0), 100.0);
        let back = f.to_u8();
        assert_eq!(back.get(0, 0), 100);
    }

    #[test]
    fn filled_sets_every_pixel() {
        let img = RgbImage::filled(3, 2, [1, 2, 3]);
        for (_, _, px) in img.enumerate_pixels() {
            assert_eq!(px, [1, 2, 3]);
        }
    }
}
