//! Separable Gaussian smoothing and Sobel gradients.
//!
//! These are the scale-space substrate for SIFT (Gaussian pyramid, DoG) and
//! the gradient source for descriptor orientation histograms.

use crate::error::{ImgError, Result};
use crate::image::GrayF32;

/// Build a normalised 1-D Gaussian kernel for standard deviation `sigma`.
/// Radius is `ceil(3σ)` (99.7 % of mass), matching common practice.
pub fn gaussian_kernel(sigma: f32) -> Result<Vec<f32>> {
    if sigma <= 0.0 || !sigma.is_finite() {
        return Err(ImgError::InvalidParameter {
            name: "sigma",
            msg: format!("{sigma} must be finite and > 0"),
        });
    }
    let radius = (3.0 * sigma).ceil() as i32;
    let mut kernel = Vec::with_capacity((2 * radius + 1) as usize);
    let denom = 2.0 * sigma * sigma;
    for i in -radius..=radius {
        kernel.push((-(i * i) as f32 / denom).exp());
    }
    let sum: f32 = kernel.iter().sum();
    for v in &mut kernel {
        *v /= sum;
    }
    Ok(kernel)
}

/// Horizontal 1-D convolution with replicate borders.
fn convolve_h(img: &GrayF32, kernel: &[f32]) -> GrayF32 {
    let (w, h) = img.dimensions();
    let radius = (kernel.len() / 2) as i64;
    let mut out = GrayF32::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for (k, &kv) in kernel.iter().enumerate() {
                acc += kv * img.get_clamped(x as i64 + k as i64 - radius, y as i64);
            }
            out.put(x, y, acc);
        }
    }
    out
}

/// Vertical 1-D convolution with replicate borders.
fn convolve_v(img: &GrayF32, kernel: &[f32]) -> GrayF32 {
    let (w, h) = img.dimensions();
    let radius = (kernel.len() / 2) as i64;
    let mut out = GrayF32::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for (k, &kv) in kernel.iter().enumerate() {
                acc += kv * img.get_clamped(x as i64, y as i64 + k as i64 - radius);
            }
            out.put(x, y, acc);
        }
    }
    out
}

/// Separable Gaussian blur with standard deviation `sigma`.
pub fn gaussian_blur(img: &GrayF32, sigma: f32) -> Result<GrayF32> {
    let kernel = gaussian_kernel(sigma)?;
    Ok(convolve_v(&convolve_h(img, &kernel), &kernel))
}

/// Sobel gradients: returns `(gx, gy)` images using the 3×3 Sobel kernels.
pub fn sobel(img: &GrayF32) -> (GrayF32, GrayF32) {
    let (w, h) = img.dimensions();
    let mut gx = GrayF32::new(w, h);
    let mut gy = GrayF32::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let xi = x as i64;
            let yi = y as i64;
            let p = |dx: i64, dy: i64| img.get_clamped(xi + dx, yi + dy);
            let sx = -p(-1, -1) + p(1, -1) - 2.0 * p(-1, 0) + 2.0 * p(1, 0) - p(-1, 1) + p(1, 1);
            let sy = -p(-1, -1) - 2.0 * p(0, -1) - p(1, -1) + p(-1, 1) + 2.0 * p(0, 1) + p(1, 1);
            gx.put(x, y, sx);
            gy.put(x, y, sy);
        }
    }
    (gx, gy)
}

/// Central-difference gradients (used by SIFT orientation/descriptor code,
/// which follows Lowe's pixel-difference convention rather than Sobel).
pub fn central_gradients(img: &GrayF32) -> (GrayF32, GrayF32) {
    let (w, h) = img.dimensions();
    let mut gx = GrayF32::new(w, h);
    let mut gy = GrayF32::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let xi = x as i64;
            let yi = y as i64;
            gx.put(x, y, (img.get_clamped(xi + 1, yi) - img.get_clamped(xi - 1, yi)) * 0.5);
            gy.put(x, y, (img.get_clamped(xi, yi + 1) - img.get_clamped(xi, yi - 1)) * 0.5);
        }
    }
    (gx, gy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_normalised_and_symmetric() {
        let k = gaussian_kernel(1.5).unwrap();
        let sum: f32 = k.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        for i in 0..k.len() / 2 {
            assert!((k[i] - k[k.len() - 1 - i]).abs() < 1e-7);
        }
        assert_eq!(k.len() % 2, 1);
    }

    #[test]
    fn invalid_sigma_rejected() {
        assert!(gaussian_kernel(0.0).is_err());
        assert!(gaussian_kernel(-1.0).is_err());
        assert!(gaussian_kernel(f32::NAN).is_err());
    }

    #[test]
    fn blur_preserves_constant_images() {
        let img = GrayF32::filled(9, 9, [42.0]);
        let b = gaussian_blur(&img, 2.0).unwrap();
        for (_, _, [v]) in b.enumerate_pixels() {
            assert!((v - 42.0).abs() < 1e-4);
        }
    }

    #[test]
    fn blur_reduces_variance() {
        let mut img = GrayF32::new(16, 16);
        for (i, v) in img.as_raw_mut().iter_mut().enumerate() {
            *v = if i % 2 == 0 { 0.0 } else { 255.0 };
        }
        let var = |im: &GrayF32| {
            let n = im.as_raw().len() as f32;
            let mean: f32 = im.as_raw().iter().sum::<f32>() / n;
            im.as_raw().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n
        };
        let b = gaussian_blur(&img, 1.0).unwrap();
        assert!(var(&b) < var(&img) * 0.5);
    }

    #[test]
    fn sobel_detects_vertical_edge() {
        let mut img = GrayF32::new(8, 8);
        for y in 0..8 {
            for x in 4..8 {
                img.put(x, y, 100.0);
            }
        }
        let (gx, gy) = sobel(&img);
        assert!(gx.get(3, 4).abs() > 100.0, "gx at edge = {}", gx.get(3, 4));
        assert!(gy.get(3, 4).abs() < 1e-4, "gy should vanish on pure vertical edge");
    }

    #[test]
    fn central_gradient_of_ramp_is_slope() {
        let mut img = GrayF32::new(8, 4);
        for y in 0..4 {
            for x in 0..8 {
                img.put(x, y, 3.0 * x as f32);
            }
        }
        let (gx, gy) = central_gradients(&img);
        assert!((gx.get(4, 2) - 3.0).abs() < 1e-6);
        assert!(gy.get(4, 2).abs() < 1e-6);
    }
}
