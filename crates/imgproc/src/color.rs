//! Colour-space conversion.
//!
//! The paper's preprocessing step (i) "converted to grayscale"; OpenCV's
//! `cvtColor(BGR2GRAY)` uses the ITU-R BT.601 luma weights, reproduced here.

use crate::image::{GrayImage, RgbImage};

/// A pixel in HSV space: `h` in degrees `[0, 360)`, `s`/`v` in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hsv {
    pub h: f32,
    pub s: f32,
    pub v: f32,
}

/// Luma of one RGB triple (ITU-R BT.601: 0.299 R + 0.587 G + 0.114 B).
#[inline]
pub fn luma(r: u8, g: u8, b: u8) -> u8 {
    (0.299 * r as f32 + 0.587 * g as f32 + 0.114 * b as f32).round() as u8
}

/// Convert an RGB image to grayscale with BT.601 weights.
pub fn rgb_to_gray(img: &RgbImage) -> GrayImage {
    let mut out = GrayImage::new(img.width(), img.height());
    for (x, y, [r, g, b]) in img.enumerate_pixels() {
        out.put(x, y, luma(r, g, b));
    }
    out
}

/// Convert one RGB triple to HSV.
pub fn pixel_to_hsv(r: u8, g: u8, b: u8) -> Hsv {
    let rf = r as f32 / 255.0;
    let gf = g as f32 / 255.0;
    let bf = b as f32 / 255.0;
    let max = rf.max(gf).max(bf);
    let min = rf.min(gf).min(bf);
    let delta = max - min;
    // taor-lint: allow(float::eq) — exact achromatic guard: delta is max-min of the same three values
    let h = if delta == 0.0 {
        0.0
    } else if max == rf {
        60.0 * (((gf - bf) / delta).rem_euclid(6.0))
    } else if max == gf {
        60.0 * ((bf - rf) / delta + 2.0)
    } else {
        60.0 * ((rf - gf) / delta + 4.0)
    };
    let s = if max == 0.0 { 0.0 } else { delta / max }; // taor-lint: allow(float::eq) — exact black guard protecting the division
    Hsv { h, s, v: max }
}

/// Convert one HSV value back to an RGB triple.
pub fn hsv_to_pixel(hsv: Hsv) -> [u8; 3] {
    let c = hsv.v * hsv.s;
    let hp = (hsv.h.rem_euclid(360.0)) / 60.0;
    let x = c * (1.0 - (hp % 2.0 - 1.0).abs());
    let (r1, g1, b1) = match hp as u32 {
        0 => (c, x, 0.0),
        1 => (x, c, 0.0),
        2 => (0.0, c, x),
        3 => (0.0, x, c),
        4 => (x, 0.0, c),
        _ => (c, 0.0, x),
    };
    let m = hsv.v - c;
    [
        ((r1 + m) * 255.0).round().clamp(0.0, 255.0) as u8,
        ((g1 + m) * 255.0).round().clamp(0.0, 255.0) as u8,
        ((b1 + m) * 255.0).round().clamp(0.0, 255.0) as u8,
    ]
}

/// Per-pixel HSV view of an RGB image (used by the dataset renderer for
/// lighting jitter).
pub fn rgb_to_hsv(img: &RgbImage) -> Vec<Hsv> {
    img.as_raw().chunks_exact(3).map(|px| pixel_to_hsv(px[0], px[1], px[2])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luma_of_primaries() {
        assert_eq!(luma(255, 255, 255), 255);
        assert_eq!(luma(0, 0, 0), 0);
        assert_eq!(luma(255, 0, 0), 76);
        assert_eq!(luma(0, 255, 0), 150);
        assert_eq!(luma(0, 0, 255), 29);
    }

    #[test]
    fn gray_conversion_shape_preserved() {
        let img = RgbImage::filled(5, 4, [10, 20, 30]);
        let g = rgb_to_gray(&img);
        assert_eq!(g.dimensions(), (5, 4));
        let expected = luma(10, 20, 30);
        assert!(g.as_raw().iter().all(|&v| v == expected));
    }

    #[test]
    fn hsv_primary_hues() {
        assert_eq!(pixel_to_hsv(255, 0, 0).h, 0.0);
        assert_eq!(pixel_to_hsv(0, 255, 0).h, 120.0);
        assert_eq!(pixel_to_hsv(0, 0, 255).h, 240.0);
    }

    #[test]
    fn hsv_gray_has_zero_saturation() {
        let hsv = pixel_to_hsv(128, 128, 128);
        assert_eq!(hsv.s, 0.0);
        assert!((hsv.v - 128.0 / 255.0).abs() < 1e-6);
    }

    #[test]
    fn hsv_roundtrip_is_lossless_enough() {
        for &(r, g, b) in &[(12u8, 200u8, 99u8), (255, 1, 77), (0, 0, 0), (250, 250, 250)] {
            let back = hsv_to_pixel(pixel_to_hsv(r, g, b));
            assert!((back[0] as i32 - r as i32).abs() <= 1, "{:?} vs {:?}", (r, g, b), back);
            assert!((back[1] as i32 - g as i32).abs() <= 1);
            assert!((back[2] as i32 - b as i32).abs() <= 1);
        }
    }
}
