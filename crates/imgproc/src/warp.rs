// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Affine warping.
//!
//! Used by the detector-evaluation harness (`taor-features::evaluation`)
//! to generate image pairs under a *known* transform, and generally
//! useful for augmenting the synthetic datasets.

use crate::error::{ImgError, Result};
use crate::image::{GrayF32, GrayImage, RgbImage};
use crate::resize::sample_bilinear;

/// A 2×3 affine transform `p' = A·p + t` in row-major order
/// `[a00, a01, tx, a10, a11, ty]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Affine {
    pub m: [f32; 6],
}

impl Affine {
    /// Identity.
    pub fn identity() -> Self {
        Affine { m: [1.0, 0.0, 0.0, 0.0, 1.0, 0.0] }
    }

    /// Translation.
    pub fn translation(tx: f32, ty: f32) -> Self {
        Affine { m: [1.0, 0.0, tx, 0.0, 1.0, ty] }
    }

    /// Rotation by `angle` radians around `(cx, cy)` with uniform `scale`.
    pub fn rotation_about(cx: f32, cy: f32, angle: f32, scale: f32) -> Self {
        let (s, c) = angle.sin_cos();
        let (a, b) = (scale * c, scale * s);
        // p' = R(p - c) + c
        Affine { m: [a, -b, cx - a * cx + b * cy, b, a, cy - b * cx - a * cy] }
    }

    /// Apply to a point.
    #[inline]
    pub fn apply(&self, x: f32, y: f32) -> (f32, f32) {
        (self.m[0] * x + self.m[1] * y + self.m[2], self.m[3] * x + self.m[4] * y + self.m[5])
    }

    /// Inverse transform; errors when the linear part is singular.
    pub fn inverse(&self) -> Result<Affine> {
        let [a, b, tx, c, d, ty] = self.m;
        let det = a * d - b * c;
        if det.abs() < 1e-12 {
            return Err(ImgError::InvalidParameter {
                name: "affine",
                msg: "singular linear part".into(),
            });
        }
        let inv = 1.0 / det;
        let (ia, ib, ic, id) = (d * inv, -b * inv, -c * inv, a * inv);
        Affine { m: [ia, ib, -(ia * tx + ib * ty), ic, id, -(ic * tx + id * ty)] }.into_ok()
    }

    fn into_ok(self) -> Result<Affine> {
        Ok(self)
    }

    /// Composition: `self ∘ other` (apply `other` first).
    pub fn then(&self, other: &Affine) -> Affine {
        // self(other(p))
        let [a, b, tx, c, d, ty] = self.m;
        let [e, f, ux, g, h, uy] = other.m;
        Affine {
            m: [
                a * e + b * g,
                a * f + b * h,
                a * ux + b * uy + tx,
                c * e + d * g,
                c * f + d * h,
                c * ux + d * uy + ty,
            ],
        }
    }
}

/// Warp a grayscale image by `transform` (forward mapping semantics:
/// output pixel `q` samples the input at `transform⁻¹(q)` bilinearly).
/// Out-of-source pixels become `fill`.
pub fn warp_affine(img: &GrayImage, transform: &Affine, fill: u8) -> Result<GrayImage> {
    let inv = transform.inverse()?;
    let (w, h) = img.dimensions();
    let f32img: GrayF32 = img.to_f32();
    let mut out = GrayImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let (sx, sy) = inv.apply(x as f32, y as f32);
            if sx >= -0.5 && sy >= -0.5 && sx <= w as f32 - 0.5 && sy <= h as f32 - 0.5 {
                out.put(x, y, sample_bilinear(&f32img, sx, sy).round().clamp(0.0, 255.0) as u8);
            } else {
                out.put(x, y, fill);
            }
        }
    }
    Ok(out)
}

/// Warp an RGB image by `transform`, channelwise bilinear.
pub fn warp_affine_rgb(img: &RgbImage, transform: &Affine, fill: [u8; 3]) -> Result<RgbImage> {
    let inv = transform.inverse()?;
    let (w, h) = img.dimensions();
    let mut planes = [GrayF32::new(w, h), GrayF32::new(w, h), GrayF32::new(w, h)];
    for (x, y, px) in img.enumerate_pixels() {
        for c in 0..3 {
            planes[c].put(x, y, px[c] as f32);
        }
    }
    let mut out = RgbImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let (sx, sy) = inv.apply(x as f32, y as f32);
            if sx >= -0.5 && sy >= -0.5 && sx <= w as f32 - 0.5 && sy <= h as f32 - 0.5 {
                let px = [
                    sample_bilinear(&planes[0], sx, sy).round().clamp(0.0, 255.0) as u8,
                    sample_bilinear(&planes[1], sx, sy).round().clamp(0.0, 255.0) as u8,
                    sample_bilinear(&planes[2], sx, sy).round().clamp(0.0, 255.0) as u8,
                ];
                out.put_pixel(x, y, px);
            } else {
                out.put_pixel(x, y, fill);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker() -> GrayImage {
        let mut img = GrayImage::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                img.put(x, y, if (x / 4 + y / 4) % 2 == 0 { 40 } else { 210 });
            }
        }
        img
    }

    #[test]
    fn identity_warp_is_noop() {
        let img = checker();
        let w = warp_affine(&img, &Affine::identity(), 0).unwrap();
        assert_eq!(w, img);
    }

    #[test]
    fn translation_moves_content() {
        let mut img = GrayImage::new(16, 16);
        img.put(4, 4, 200);
        let t = Affine::translation(3.0, 2.0);
        let w = warp_affine(&img, &t, 0).unwrap();
        assert_eq!(w.get(7, 6), 200);
        assert_eq!(w.get(4, 4), 0);
    }

    #[test]
    fn rotation_roundtrip_approximately_identity() {
        let img = checker();
        let fwd = Affine::rotation_about(16.0, 16.0, 0.6, 1.0);
        let back = Affine::rotation_about(16.0, 16.0, -0.6, 1.0);
        let once = warp_affine(&img, &fwd, 128).unwrap();
        let twice = warp_affine(&once, &back, 128).unwrap();
        // Compare interior pixels (borders lose content to the fill).
        let mut diff = 0.0f64;
        let mut n = 0usize;
        for y in 10..22 {
            for x in 10..22 {
                diff += (twice.get(x, y) as f64 - img.get(x, y) as f64).abs();
                n += 1;
            }
        }
        assert!(diff / (n as f64) < 30.0, "mean abs diff {}", diff / n as f64);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let t = Affine::rotation_about(5.0, 7.0, 1.1, 1.4).then(&Affine::translation(3.0, -2.0));
        let inv = t.inverse().unwrap();
        let both = t.then(&inv);
        let p = both.apply(11.0, -4.0);
        assert!((p.0 - 11.0).abs() < 1e-3 && (p.1 + 4.0).abs() < 1e-3);
    }

    #[test]
    fn singular_transform_rejected() {
        let t = Affine { m: [1.0, 2.0, 0.0, 2.0, 4.0, 0.0] };
        assert!(t.inverse().is_err());
        let img = checker();
        assert!(warp_affine(&img, &t, 0).is_err());
    }

    #[test]
    fn out_of_bounds_filled() {
        let img = GrayImage::filled(8, 8, [100]);
        let w = warp_affine(&img, &Affine::translation(6.0, 0.0), 7).unwrap();
        assert_eq!(w.get(0, 0), 7);
        assert_eq!(w.get(7, 0), 100);
    }

    #[test]
    fn rgb_warp_keeps_channels() {
        let img = RgbImage::filled(10, 10, [10, 100, 200]);
        let w = warp_affine_rgb(&img, &Affine::translation(1.0, 1.0), [0, 0, 0]).unwrap();
        assert_eq!(w.pixel(5, 5), [10, 100, 200]);
        assert_eq!(w.pixel(0, 0), [0, 0, 0]);
    }
}
