// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Canny edge detection.
//!
//! Completes the substrate's contour story: the paper's pipelines
//! binarise by global threshold because their inputs are pre-segmented,
//! but any extension to raw robot frames (see `taor-core::segment`) wants
//! a gradient-based edge map. Standard four stages: Gaussian smoothing,
//! Sobel gradients, non-maximum suppression along the gradient direction,
//! and double-threshold hysteresis.

use crate::error::{ImgError, Result};
use crate::filter::{gaussian_blur, sobel};
use crate::image::{GrayF32, GrayImage};

/// Canny edge detector.
///
/// `low`/`high` are hysteresis thresholds on gradient magnitude
/// (`high > low > 0`); `sigma` is the pre-smoothing Gaussian. Edges are
/// 255 in the returned map.
pub fn canny(img: &GrayImage, sigma: f32, low: f32, high: f32) -> Result<GrayImage> {
    if !(high > low && low > 0.0) {
        return Err(ImgError::InvalidParameter {
            name: "thresholds",
            msg: format!("need high > low > 0, got low={low}, high={high}"),
        });
    }
    let smoothed = gaussian_blur(&img.to_f32(), sigma)?;
    let (gx, gy) = sobel(&smoothed);
    let (w, h) = img.dimensions();

    // Gradient magnitude and quantised direction (0=E/W, 1=NE/SW, 2=N/S,
    // 3=NW/SE).
    let mut mag = GrayF32::new(w, h);
    let mut dir = vec![0u8; (w * h) as usize];
    for y in 0..h {
        for x in 0..w {
            let dx = gx.get(x, y);
            let dy = gy.get(x, y);
            mag.put(x, y, (dx * dx + dy * dy).sqrt());
            let angle = dy.atan2(dx);
            let octant = ((angle / std::f32::consts::PI * 4.0).round() as i32).rem_euclid(4);
            dir[(y * w + x) as usize] = octant as u8;
        }
    }

    // Non-maximum suppression along the gradient direction.
    let offsets = [(1i64, 0i64), (1, 1), (0, 1), (-1, 1)];
    let mut nms = GrayF32::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let m = mag.get(x, y);
            if m < low {
                continue;
            }
            let (dx, dy) = offsets[dir[(y * w + x) as usize] as usize];
            let fwd = mag.get_clamped(x as i64 + dx, y as i64 + dy);
            let bwd = mag.get_clamped(x as i64 - dx, y as i64 - dy);
            if m >= fwd && m >= bwd {
                nms.put(x, y, m);
            }
        }
    }

    // Hysteresis: strong pixels seed; weak pixels join if 8-connected to a
    // strong one.
    let mut out = GrayImage::new(w, h);
    let mut stack: Vec<(u32, u32)> = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if nms.get(x, y) >= high {
                out.put(x, y, 255);
                stack.push((x, y));
            }
        }
    }
    while let Some((cx, cy)) = stack.pop() {
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if out.in_bounds(nx, ny) {
                    let (nx, ny) = (nx as u32, ny as u32);
                    if out.get(nx, ny) == 0 && nms.get(nx, ny) >= low {
                        out.put(nx, ny, 255);
                        stack.push((nx, ny));
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bright_square() -> GrayImage {
        let mut img = GrayImage::new(40, 40);
        for y in 10..30 {
            for x in 10..30 {
                img.put(x, y, 220);
            }
        }
        img
    }

    #[test]
    fn finds_edges_of_a_square() {
        let edges = canny(&bright_square(), 1.0, 40.0, 120.0).unwrap();
        let n_edges = edges.as_raw().iter().filter(|&&v| v > 0).count();
        // Perimeter of a 20x20 square smoothed by sigma 1: roughly 80-240
        // edge pixels (thin bands on each side).
        assert!((60..400).contains(&n_edges), "{n_edges} edge pixels");
        // Interior is edge-free.
        assert_eq!(edges.get(20, 20), 0);
        // The left edge is detected near x = 10.
        let hit = (8..13).any(|x| edges.get(x, 20) > 0);
        assert!(hit, "no left edge found");
    }

    #[test]
    fn flat_image_has_no_edges() {
        let img = GrayImage::filled(32, 32, [123]);
        let edges = canny(&img, 1.2, 30.0, 90.0).unwrap();
        assert!(edges.as_raw().iter().all(|&v| v == 0));
    }

    #[test]
    fn hysteresis_extends_strong_edges_over_weak_links() {
        // A line whose middle section has weaker contrast: plain double
        // thresholding would break it, hysteresis keeps it connected.
        let mut img = GrayImage::new(60, 20);
        for x in 5..55 {
            let v = if (25..35).contains(&x) { 70 } else { 200 };
            for y in 9..11 {
                img.put(x, y, v);
            }
        }
        let edges = canny(&img, 1.0, 15.0, 100.0).unwrap();
        // Some edge pixel exists in the weak middle zone, attached to the
        // strong flanks. (The exact row depends on NMS.)
        let weak_zone: usize =
            (25..35).map(|x| (5..15).filter(|&y| edges.get(x, y) > 0).count()).sum();
        assert!(weak_zone > 0, "hysteresis lost the weak segment");
    }

    #[test]
    fn invalid_thresholds_rejected() {
        let img = bright_square();
        assert!(canny(&img, 1.0, 100.0, 50.0).is_err());
        assert!(canny(&img, 1.0, 0.0, 50.0).is_err());
    }

    #[test]
    fn higher_thresholds_give_fewer_edges() {
        let img = bright_square();
        let lo = canny(&img, 1.0, 20.0, 60.0).unwrap();
        let hi = canny(&img, 1.0, 120.0, 300.0).unwrap();
        let count = |e: &GrayImage| e.as_raw().iter().filter(|&&v| v > 0).count();
        assert!(count(&lo) >= count(&hi));
    }
}
