// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Image resizing (nearest-neighbour and bilinear).
//!
//! The Siamese pipeline resizes every input crop to a fixed resolution
//! before feeding the network (60×160×3 in the paper); the descriptor
//! pipelines normalise reference views to a common scale.

use crate::error::{ImgError, Result};
use crate::image::{GrayF32, GrayImage, RgbImage};

fn check_dims(w: u32, h: u32) -> Result<()> {
    if w == 0 || h == 0 {
        Err(ImgError::InvalidDimensions { width: w, height: h })
    } else {
        Ok(())
    }
}

/// Nearest-neighbour resize of a grayscale image.
pub fn resize_nearest(img: &GrayImage, new_w: u32, new_h: u32) -> Result<GrayImage> {
    check_dims(new_w, new_h)?;
    let mut out = GrayImage::new(new_w, new_h);
    let sx = img.width() as f32 / new_w as f32;
    let sy = img.height() as f32 / new_h as f32;
    for y in 0..new_h {
        for x in 0..new_w {
            let src_x = ((x as f32 + 0.5) * sx) as u32;
            let src_y = ((y as f32 + 0.5) * sy) as u32;
            out.put(x, y, img.get(src_x.min(img.width() - 1), src_y.min(img.height() - 1)));
        }
    }
    Ok(out)
}

/// Bilinear sample of a grayscale f32 image at fractional coordinates.
#[inline]
pub fn sample_bilinear(img: &GrayF32, x: f32, y: f32) -> f32 {
    let x0 = x.floor();
    let y0 = y.floor();
    let fx = x - x0;
    let fy = y - y0;
    let xi = x0 as i64;
    let yi = y0 as i64;
    let p00 = img.get_clamped(xi, yi);
    let p10 = img.get_clamped(xi + 1, yi);
    let p01 = img.get_clamped(xi, yi + 1);
    let p11 = img.get_clamped(xi + 1, yi + 1);
    p00 * (1.0 - fx) * (1.0 - fy) + p10 * fx * (1.0 - fy) + p01 * (1.0 - fx) * fy + p11 * fx * fy
}

/// Bilinear resize of a grayscale f32 image.
pub fn resize_bilinear_f32(img: &GrayF32, new_w: u32, new_h: u32) -> Result<GrayF32> {
    check_dims(new_w, new_h)?;
    let mut out = GrayF32::new(new_w, new_h);
    let sx = img.width() as f32 / new_w as f32;
    let sy = img.height() as f32 / new_h as f32;
    for y in 0..new_h {
        for x in 0..new_w {
            let src_x = (x as f32 + 0.5) * sx - 0.5;
            let src_y = (y as f32 + 0.5) * sy - 0.5;
            out.put(x, y, sample_bilinear(img, src_x, src_y));
        }
    }
    Ok(out)
}

/// Bilinear resize of a grayscale u8 image.
pub fn resize_bilinear(img: &GrayImage, new_w: u32, new_h: u32) -> Result<GrayImage> {
    Ok(resize_bilinear_f32(&img.to_f32(), new_w, new_h)?.to_u8())
}

/// Bilinear resize of an RGB image, channel by channel.
pub fn resize_bilinear_rgb(img: &RgbImage, new_w: u32, new_h: u32) -> Result<RgbImage> {
    check_dims(new_w, new_h)?;
    let (w, h) = img.dimensions();
    let mut out = RgbImage::new(new_w, new_h);
    // Split channels into f32 planes once, then sample.
    let mut planes = [GrayF32::new(w, h), GrayF32::new(w, h), GrayF32::new(w, h)];
    for (x, y, px) in img.enumerate_pixels() {
        for c in 0..3 {
            planes[c].put(x, y, px[c] as f32);
        }
    }
    let sx = w as f32 / new_w as f32;
    let sy = h as f32 / new_h as f32;
    for y in 0..new_h {
        for x in 0..new_w {
            let src_x = (x as f32 + 0.5) * sx - 0.5;
            let src_y = (y as f32 + 0.5) * sy - 0.5;
            let px = [
                sample_bilinear(&planes[0], src_x, src_y).round().clamp(0.0, 255.0) as u8,
                sample_bilinear(&planes[1], src_x, src_y).round().clamp(0.0, 255.0) as u8,
                sample_bilinear(&planes[2], src_x, src_y).round().clamp(0.0, 255.0) as u8,
            ];
            out.put_pixel(x, y, px);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_identity() {
        let mut img = GrayImage::new(3, 3);
        img.put(1, 1, 100);
        let r = resize_nearest(&img, 3, 3).unwrap();
        assert_eq!(r, img);
    }

    #[test]
    fn nearest_upscale_replicates() {
        let mut img = GrayImage::new(2, 1);
        img.put(0, 0, 10);
        img.put(1, 0, 200);
        let r = resize_nearest(&img, 4, 1).unwrap();
        assert_eq!(r.as_raw(), &[10, 10, 200, 200]);
    }

    #[test]
    fn bilinear_constant_image_stays_constant() {
        let img = GrayImage::filled(5, 5, [77]);
        let r = resize_bilinear(&img, 13, 9).unwrap();
        assert!(r.as_raw().iter().all(|&v| v == 77));
    }

    #[test]
    fn bilinear_preserves_mean_approximately() {
        let mut img = GrayImage::new(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                img.put(x, y, (x * 30) as u8);
            }
        }
        let r = resize_bilinear(&img, 16, 16).unwrap();
        let mean_src: f64 =
            img.as_raw().iter().map(|&v| v as f64).sum::<f64>() / img.as_raw().len() as f64;
        let mean_dst: f64 =
            r.as_raw().iter().map(|&v| v as f64).sum::<f64>() / r.as_raw().len() as f64;
        assert!((mean_src - mean_dst).abs() < 4.0, "{mean_src} vs {mean_dst}");
    }

    #[test]
    fn zero_target_rejected() {
        let img = GrayImage::new(4, 4);
        assert!(resize_nearest(&img, 0, 4).is_err());
        assert!(resize_bilinear(&img, 4, 0).is_err());
        assert!(resize_bilinear_rgb(&RgbImage::new(4, 4), 0, 0).is_err());
    }

    #[test]
    fn rgb_resize_keeps_channels_independent() {
        let img = RgbImage::filled(4, 4, [200, 100, 50]);
        let r = resize_bilinear_rgb(&img, 9, 3).unwrap();
        for (_, _, px) in r.enumerate_pixels() {
            assert_eq!(px, [200, 100, 50]);
        }
    }

    #[test]
    fn sample_bilinear_interpolates_midpoint() {
        let mut img = GrayF32::new(2, 1);
        img.put(0, 0, 0.0);
        img.put(1, 0, 100.0);
        assert!((sample_bilinear(&img, 0.5, 0.0) - 50.0).abs() < 1e-6);
    }
}
