//! Connected-component labelling.
//!
//! The scene-segmentation pipeline needs components as first-class
//! objects (pixel count, bounding box, label map), not just their outer
//! contours; this module exposes the 8-connected labelling that
//! [`crate::contour::find_contours`] performs internally.

use crate::image::{GrayImage, ImageBuf, Rect};

/// One labelled component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// Label value in the label map (1-based).
    pub label: u32,
    /// Number of foreground pixels.
    pub area: usize,
    /// Tight bounding box.
    pub bbox: Rect,
}

/// Result of labelling: per-pixel labels (0 = background) plus component
/// summaries ordered by label.
#[derive(Debug, Clone)]
pub struct Labels {
    pub map: ImageBuf<u32, 1>,
    pub components: Vec<Component>,
}

impl Labels {
    /// Component containing `(x, y)`, if any.
    pub fn component_at(&self, x: u32, y: u32) -> Option<&Component> {
        let l = self.map.pixel(x, y)[0];
        if l == 0 {
            None
        } else {
            self.components.get(l as usize - 1)
        }
    }

    /// Components with at least `min_area` pixels, largest first.
    pub fn filtered(&self, min_area: usize) -> Vec<&Component> {
        let mut out: Vec<&Component> =
            self.components.iter().filter(|c| c.area >= min_area).collect();
        out.sort_by_key(|c| std::cmp::Reverse(c.area));
        out
    }
}

/// Label all 8-connected foreground (`> 0`) components in raster order.
pub fn label_components(bin: &GrayImage) -> Labels {
    let (w, h) = bin.dimensions();
    let mut map: ImageBuf<u32, 1> = ImageBuf::new(w, h);
    let mut components = Vec::new();
    let mut queue: Vec<(u32, u32)> = Vec::new();
    let mut next = 1u32;

    for y in 0..h {
        for x in 0..w {
            if bin.get(x, y) == 0 || map.pixel(x, y)[0] != 0 {
                continue;
            }
            let label = next;
            next += 1;
            let (mut min_x, mut min_y, mut max_x, mut max_y) = (x, y, x, y);
            let mut area = 0usize;
            queue.clear();
            queue.push((x, y));
            map.put_pixel(x, y, [label]);
            while let Some((cx, cy)) = queue.pop() {
                area += 1;
                min_x = min_x.min(cx);
                min_y = min_y.min(cy);
                max_x = max_x.max(cx);
                max_y = max_y.max(cy);
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let nx = cx as i64 + dx;
                        let ny = cy as i64 + dy;
                        if bin.in_bounds(nx, ny)
                            && bin.get(nx as u32, ny as u32) > 0
                            && map.pixel(nx as u32, ny as u32)[0] == 0
                        {
                            map.put_pixel(nx as u32, ny as u32, [label]);
                            queue.push((nx as u32, ny as u32));
                        }
                    }
                }
            }
            components.push(Component {
                label,
                area,
                bbox: Rect::new(min_x, min_y, max_x - min_x + 1, max_y - min_y + 1),
            });
        }
    }
    Labels { map, components }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_two_blobs() {
        let mut img = GrayImage::new(16, 16);
        for y in 1..4 {
            for x in 1..4 {
                img.put(x, y, 255);
            }
        }
        for y in 10..14 {
            for x in 8..13 {
                img.put(x, y, 255);
            }
        }
        let labels = label_components(&img);
        assert_eq!(labels.components.len(), 2);
        assert_eq!(labels.components[0].area, 9);
        assert_eq!(labels.components[1].area, 20);
        assert_eq!(labels.components[1].bbox, Rect::new(8, 10, 5, 4));
    }

    #[test]
    fn component_at_lookup() {
        let mut img = GrayImage::new(8, 8);
        img.put(3, 3, 255);
        let labels = label_components(&img);
        assert!(labels.component_at(3, 3).is_some());
        assert!(labels.component_at(0, 0).is_none());
    }

    #[test]
    fn filtered_sorts_by_area_desc() {
        let mut img = GrayImage::new(20, 20);
        img.put(0, 0, 255); // area 1
        for x in 5..10 {
            img.put(x, 5, 255); // area 5
        }
        for y in 10..19 {
            for x in 10..19 {
                img.put(x, y, 255); // area 81
            }
        }
        let labels = label_components(&img);
        let big = labels.filtered(2);
        assert_eq!(big.len(), 2);
        assert_eq!(big[0].area, 81);
        assert_eq!(big[1].area, 5);
    }

    #[test]
    fn empty_image_no_components() {
        let labels = label_components(&GrayImage::new(5, 5));
        assert!(labels.components.is_empty());
    }

    #[test]
    fn diagonal_connectivity_is_8() {
        let mut img = GrayImage::new(6, 6);
        img.put(1, 1, 255);
        img.put(2, 2, 255);
        img.put(3, 3, 255);
        let labels = label_components(&img);
        assert_eq!(labels.components.len(), 1);
        assert_eq!(labels.components[0].area, 3);
    }

    #[test]
    fn label_map_is_consistent_with_areas() {
        let mut img = GrayImage::new(12, 12);
        for y in 2..9 {
            for x in 3..8 {
                img.put(x, y, 200);
            }
        }
        let labels = label_components(&img);
        let counted = labels.map.as_raw().iter().filter(|&&l| l == 1).count();
        assert_eq!(counted, labels.components[0].area);
    }
}
