// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Global binary thresholding.
//!
//! Step (ii) of the paper's preprocessing: "applied global binary
//! thresholding (or its inverse, depending on whether the input background
//! was black or white respectively)". Also provides Otsu's method for the
//! automatic threshold used when the input illumination varies (our NYU
//! stand-in applies lighting gain).

use crate::image::GrayImage;

/// `dst = 255 if src > thresh else 0` (OpenCV `THRESH_BINARY`).
pub fn threshold_binary(img: &GrayImage, thresh: u8) -> GrayImage {
    img.map(|v| if v > thresh { 255 } else { 0 })
}

/// `dst = 0 if src > thresh else 255` (OpenCV `THRESH_BINARY_INV`).
pub fn threshold_binary_inv(img: &GrayImage, thresh: u8) -> GrayImage {
    img.map(|v| if v > thresh { 0 } else { 255 })
}

/// Otsu's automatic threshold: maximises between-class variance of the
/// grayscale histogram. Returns the threshold value; apply with
/// [`threshold_binary`] / [`threshold_binary_inv`].
pub fn otsu_threshold(img: &GrayImage) -> u8 {
    let mut hist = [0u64; 256];
    for &v in img.as_raw() {
        hist[v as usize] += 1;
    }
    let total = img.as_raw().len() as f64;
    let sum_all: f64 = hist.iter().enumerate().map(|(i, &c)| i as f64 * c as f64).sum();

    let mut sum_bg = 0.0;
    let mut weight_bg = 0.0;
    let mut best_t = 0u8;
    let mut best_var = -1.0;
    for (t, &count) in hist.iter().enumerate() {
        weight_bg += count as f64;
        // taor-lint: allow(float::eq) — integer histogram counts summed in f64 are exact
        if weight_bg == 0.0 {
            continue;
        }
        let weight_fg = total - weight_bg;
        // taor-lint: allow(float::eq) — integer histogram counts summed in f64 are exact
        if weight_fg == 0.0 {
            break;
        }
        sum_bg += t as f64 * count as f64;
        let mean_bg = sum_bg / weight_bg;
        let mean_fg = (sum_all - sum_bg) / weight_fg;
        let var = weight_bg * weight_fg * (mean_bg - mean_fg).powi(2);
        if var > best_var {
            best_var = var;
            best_t = t as u8;
        }
    }
    best_t
}

/// Adaptive mean thresholding: a pixel is foreground when it exceeds the
/// mean of its `(2r+1)²` neighbourhood by more than `c` (equivalent to
/// OpenCV `ADAPTIVE_THRESH_MEAN_C` with `C = -c`). Robust to the
/// illumination gradients that defeat a global threshold.
pub fn adaptive_threshold_mean(img: &GrayImage, radius: u32, c: i16) -> GrayImage {
    let (w, h) = img.dimensions();
    let ii = crate::integral::IntegralImage::from_gray(img);
    let r = radius as i64;
    let mut out = GrayImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let x0 = x as i64 - r;
            let y0 = y as i64 - r;
            let side = 2 * r + 1;
            // Clipped box: recompute the true pixel count at borders.
            let x1 = (x0 + side).min(w as i64);
            let y1 = (y0 + side).min(h as i64);
            let cx0 = x0.max(0);
            let cy0 = y0.max(0);
            let count = ((x1 - cx0) * (y1 - cy0)) as f64;
            let mean = ii.box_sum(x0, y0, side, side) / count;
            if (img.get(x, y) as f64) > mean + (c as f64) {
                out.put(x, y, 255);
            }
        }
    }
    out
}

/// Histogram equalisation: maps intensities through the normalised CDF,
/// spreading contrast (useful ahead of descriptor extraction on dim
/// scene crops).
pub fn equalize_hist(img: &GrayImage) -> GrayImage {
    let mut hist = [0u64; 256];
    for &v in img.as_raw() {
        hist[v as usize] += 1;
    }
    let total = img.as_raw().len() as f64;
    let mut cdf = [0.0f64; 256];
    let mut acc = 0u64;
    // Ignore the lowest occupied bin's mass for the classic normalisation.
    let cdf_min = hist.iter().copied().find(|&c| c > 0).unwrap_or(0) as f64;
    for (i, &c) in hist.iter().enumerate() {
        acc += c;
        cdf[i] = acc as f64;
    }
    let denom = (total - cdf_min).max(1.0);
    img.map(|v| (((cdf[v as usize] - cdf_min) / denom) * 255.0).round().clamp(0.0, 255.0) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_image() -> GrayImage {
        let mut img = GrayImage::new(16, 1);
        for x in 0..16 {
            img.put(x, 0, (x * 16) as u8);
        }
        img
    }

    #[test]
    fn binary_threshold_splits_at_value() {
        let img = gradient_image();
        let bin = threshold_binary(&img, 100);
        for x in 0..16 {
            let expected = if x * 16 > 100 { 255 } else { 0 };
            assert_eq!(bin.get(x, 0), expected, "x={x}");
        }
    }

    #[test]
    fn inverse_is_complement() {
        let img = gradient_image();
        let a = threshold_binary(&img, 80);
        let b = threshold_binary_inv(&img, 80);
        for x in 0..16 {
            assert_eq!(a.get(x, 0) ^ b.get(x, 0), 255);
        }
    }

    #[test]
    fn otsu_separates_bimodal() {
        // Half dark (around 40), half bright (around 210).
        let mut img = GrayImage::new(10, 10);
        for y in 0..10 {
            for x in 0..10 {
                img.put(x, y, if y < 5 { 40 + x as u8 } else { 200 + x as u8 });
            }
        }
        let t = otsu_threshold(&img);
        // The dark mode spans 40..=49, the bright one 200..=209; any
        // threshold in [49, 199] separates them under the strict-greater
        // binarisation rule.
        assert!((49..200).contains(&(t as usize)), "otsu threshold {t} should split the modes");
        let bin = threshold_binary(&img, t);
        assert_eq!(bin.get(0, 0), 0);
        assert_eq!(bin.get(0, 9), 255);
    }

    #[test]
    fn otsu_on_constant_image_does_not_panic() {
        let img = GrayImage::filled(4, 4, [128]);
        let _ = otsu_threshold(&img);
    }

    #[test]
    fn adaptive_threshold_survives_gradient() {
        // A bright blob on a strong illumination ramp: a global threshold
        // fails on one side, the adaptive one keeps the blob everywhere.
        let mut img = GrayImage::new(64, 16);
        for y in 0..16 {
            for x in 0..64 {
                img.put(x, y, (x * 3) as u8); // ramp 0..189
            }
        }
        // Two small bright-on-local-background blobs, one at each end.
        for y in 6..10 {
            for x in 4..8 {
                img.put(x, y, 80);
            }
            for x in 54..58 {
                img.put(x, y, 250);
            }
        }
        let bin = adaptive_threshold_mean(&img, 4, 10);
        assert_eq!(bin.get(5, 8), 255, "left blob found");
        assert_eq!(bin.get(55, 8), 255, "right blob found");
        assert_eq!(bin.get(30, 2), 0, "ramp background rejected");
    }

    #[test]
    fn equalize_expands_contrast() {
        let mut img = GrayImage::new(16, 16);
        for (i, v) in img.as_raw_mut().iter_mut().enumerate() {
            *v = 100 + (i % 20) as u8; // narrow band 100..119
        }
        let eq = equalize_hist(&img);
        let lo = *eq.as_raw().iter().min().unwrap();
        let hi = *eq.as_raw().iter().max().unwrap();
        assert_eq!(lo, 0);
        assert_eq!(hi, 255);
    }

    #[test]
    fn equalize_constant_image_is_stable() {
        let img = GrayImage::filled(8, 8, [77]);
        let eq = equalize_hist(&img);
        // All pixels identical: mapping is degenerate but must not panic,
        // and output stays constant.
        let first = eq.get(0, 0);
        assert!(eq.as_raw().iter().all(|&v| v == first));
    }

    #[test]
    fn threshold_boundary_is_strict_greater() {
        let img = GrayImage::filled(2, 2, [100]);
        assert_eq!(threshold_binary(&img, 100).get(0, 0), 0);
        assert_eq!(threshold_binary(&img, 99).get(0, 0), 255);
    }
}
