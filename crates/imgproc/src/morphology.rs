//! Binary morphology: erosion, dilation, opening, closing.
//!
//! Segmentation masks produced by real sensors are ragged; the scene
//! pipeline (see `taor-core::segment`) cleans them with an opening
//! (erode + dilate) before contour extraction, exactly as an OpenCV
//! pipeline would call `morphologyEx(MORPH_OPEN)`.

use crate::image::GrayImage;

/// Erode with a `(2r+1)²` square structuring element: a pixel stays
/// foreground only if its whole neighbourhood is foreground.
pub fn erode(img: &GrayImage, radius: u32) -> GrayImage {
    if radius == 0 {
        return img.clone();
    }
    let (w, h) = img.dimensions();
    let r = radius as i64;
    let mut out = GrayImage::new(w, h);
    for y in 0..h {
        'px: for x in 0..w {
            for dy in -r..=r {
                for dx in -r..=r {
                    let xx = x as i64 + dx;
                    let yy = y as i64 + dy;
                    // Outside the image counts as background (shrinks
                    // components touching the border).
                    if !img.in_bounds(xx, yy) || img.get(xx as u32, yy as u32) == 0 {
                        continue 'px;
                    }
                }
            }
            out.put(x, y, 255);
        }
    }
    out
}

/// Dilate with a `(2r+1)²` square structuring element: a pixel becomes
/// foreground if any neighbour is foreground.
pub fn dilate(img: &GrayImage, radius: u32) -> GrayImage {
    if radius == 0 {
        return img.clone();
    }
    let (w, h) = img.dimensions();
    let r = radius as i64;
    let mut out = GrayImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut hit = false;
            'scan: for dy in -r..=r {
                for dx in -r..=r {
                    let xx = x as i64 + dx;
                    let yy = y as i64 + dy;
                    if img.in_bounds(xx, yy) && img.get(xx as u32, yy as u32) > 0 {
                        hit = true;
                        break 'scan;
                    }
                }
            }
            if hit {
                out.put(x, y, 255);
            }
        }
    }
    out
}

/// Morphological opening: erosion followed by dilation. Removes small
/// speckle while approximately preserving large components.
///
/// ```
/// use taor_imgproc::prelude::*;
/// use taor_imgproc::morphology::open;
///
/// let mut img = GrayImage::new(16, 16);
/// for y in 4..12 { for x in 4..12 { img.put(x, y, 255); } }
/// img.put(0, 0, 255); // speckle
/// let cleaned = open(&img, 1);
/// assert_eq!(cleaned.get(0, 0), 0);
/// assert_eq!(cleaned.get(8, 8), 255);
/// ```
pub fn open(img: &GrayImage, radius: u32) -> GrayImage {
    dilate(&erode(img, radius), radius)
}

/// Morphological closing: dilation followed by erosion. Fills small
/// holes and gaps.
pub fn close(img: &GrayImage, radius: u32) -> GrayImage {
    erode(&dilate(img, radius), radius)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_with_speck() -> GrayImage {
        let mut img = GrayImage::new(20, 20);
        for y in 5..15 {
            for x in 5..15 {
                img.put(x, y, 255);
            }
        }
        img.put(1, 1, 255); // isolated speck
        img
    }

    fn count_fg(img: &GrayImage) -> usize {
        img.as_raw().iter().filter(|&&v| v > 0).count()
    }

    #[test]
    fn erosion_shrinks() {
        let img = blob_with_speck();
        let e = erode(&img, 1);
        assert!(count_fg(&e) < count_fg(&img));
        // The 10x10 blob erodes to 8x8; the speck disappears.
        assert_eq!(count_fg(&e), 64);
        assert_eq!(e.get(1, 1), 0);
    }

    #[test]
    fn dilation_grows() {
        let img = blob_with_speck();
        let d = dilate(&img, 1);
        assert!(count_fg(&d) > count_fg(&img));
        // The blob grows to 12x12, the speck to 3x3.
        assert_eq!(count_fg(&d), 144 + 9);
    }

    #[test]
    fn opening_removes_speckle_keeps_blob() {
        let img = blob_with_speck();
        let o = open(&img, 1);
        assert_eq!(o.get(1, 1), 0, "speck should vanish");
        assert_eq!(o.get(9, 9), 255, "blob interior survives");
        assert_eq!(count_fg(&o), 100, "10x10 blob restored exactly");
    }

    #[test]
    fn closing_fills_holes() {
        let mut img = GrayImage::new(20, 20);
        for y in 5..15 {
            for x in 5..15 {
                img.put(x, y, 255);
            }
        }
        img.put(9, 9, 0); // one-pixel hole
        let c = close(&img, 1);
        assert_eq!(c.get(9, 9), 255);
    }

    #[test]
    fn radius_zero_is_identity() {
        let img = blob_with_speck();
        assert_eq!(erode(&img, 0), img);
        assert_eq!(dilate(&img, 0), img);
    }

    #[test]
    fn erosion_dilation_duality_on_interior() {
        // erode(img) == ¬dilate(¬img) away from borders.
        let img = blob_with_speck();
        let inv = img.map(|v| if v > 0 { 0u8 } else { 255 });
        let a = erode(&img, 1);
        let b = dilate(&inv, 1).map(|v| if v > 0 { 0u8 } else { 255 });
        for y in 2..18 {
            for x in 2..18 {
                assert_eq!(a.get(x, y), b.get(x, y), "duality broken at ({x},{y})");
            }
        }
    }
}
