// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! RGB histograms and the four OpenCV comparison metrics.
//!
//! The colour-only pipeline compares "the RGB histograms of the input image
//! pairs" with "Correlation, Chi-square, Intersection and Hellinger
//! distance" — OpenCV's `compareHist` methods, reproduced from the
//! documented formulas. Correlation and Intersection are similarities
//! (higher = more alike); Chi-square and Hellinger are distances.

use crate::error::{ImgError, Result};
use crate::image::RgbImage;

/// Per-channel histogram of an RGB image: three channels × `bins` bins,
/// stored as one flat vector (channel-major) of *normalised* frequencies.
#[derive(Debug, Clone, PartialEq)]
pub struct RgbHistogram {
    bins_per_channel: usize,
    data: Vec<f64>,
}

/// Histogram comparison method (OpenCV `HISTCMP_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HistCompare {
    /// Pearson correlation; 1 = identical, −1 = anti-correlated. Similarity.
    Correlation,
    /// `Σ (a−b)²/a` over bins with `a > 0`. Distance.
    ChiSquare,
    /// `Σ min(a, b)`. Similarity.
    Intersection,
    /// Hellinger / Bhattacharyya distance in `[0, 1]`. Distance.
    Hellinger,
}

impl HistCompare {
    /// All four methods, in the order the paper lists them.
    pub const ALL: [HistCompare; 4] = [
        HistCompare::Correlation,
        HistCompare::ChiSquare,
        HistCompare::Intersection,
        HistCompare::Hellinger,
    ];

    /// Whether higher scores mean "more similar". Correlation and
    /// Intersection trend opposite to the two distances — the hybrid
    /// pipeline needs this to orient its weighted sum (the paper takes "the
    /// inverse of C ... for the Correlation and Intersection metrics").
    pub fn higher_is_more_similar(&self) -> bool {
        matches!(self, HistCompare::Correlation | HistCompare::Intersection)
    }

    /// Human-readable name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            HistCompare::Correlation => "Correlation",
            HistCompare::ChiSquare => "Chi-square",
            HistCompare::Intersection => "Intersection",
            HistCompare::Hellinger => "Hellinger",
        }
    }
}

impl RgbHistogram {
    /// Number of bins per channel.
    pub fn bins_per_channel(&self) -> usize {
        self.bins_per_channel
    }

    /// Flat normalised bin frequencies (length `3 * bins_per_channel`).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

/// Compute the normalised per-channel RGB histogram of `img` with
/// `bins` bins per channel (1..=256).
pub fn rgb_histogram(img: &RgbImage, bins: usize) -> Result<RgbHistogram> {
    if bins == 0 || bins > 256 {
        return Err(ImgError::InvalidParameter {
            name: "bins",
            msg: format!("{bins} not in 1..=256"),
        });
    }
    let mut data = vec![0.0f64; bins * 3];
    let scale = bins as f64 / 256.0;
    for px in img.as_raw().chunks_exact(3) {
        for (c, &v) in px.iter().enumerate() {
            let b = ((v as f64 * scale) as usize).min(bins - 1);
            data[c * bins + b] += 1.0;
        }
    }
    let total = (img.width() as f64) * (img.height() as f64);
    for v in &mut data {
        *v /= total;
    }
    Ok(RgbHistogram { bins_per_channel: bins, data })
}

/// Compare two histograms with the given method.
///
/// Returns an error when bin layouts differ.
///
/// ```
/// use taor_imgproc::prelude::*;
///
/// let red = rgb_histogram(&RgbImage::filled(8, 8, [220, 20, 20]), 32).unwrap();
/// let blue = rgb_histogram(&RgbImage::filled(8, 8, [20, 20, 220]), 32).unwrap();
/// let d_self = compare_hist(&red, &red, HistCompare::Hellinger).unwrap();
/// let d_cross = compare_hist(&red, &blue, HistCompare::Hellinger).unwrap();
/// assert!(d_self < 1e-6 && d_cross > 0.5);
/// ```
pub fn compare_hist(a: &RgbHistogram, b: &RgbHistogram, method: HistCompare) -> Result<f64> {
    if a.bins_per_channel != b.bins_per_channel {
        return Err(ImgError::InvalidParameter {
            name: "histogram",
            msg: format!("bin mismatch: {} vs {}", a.bins_per_channel, b.bins_per_channel),
        });
    }
    let ha = &a.data;
    let hb = &b.data;
    let n = ha.len() as f64;
    Ok(match method {
        HistCompare::Correlation => {
            let mean_a: f64 = ha.iter().sum::<f64>() / n;
            let mean_b: f64 = hb.iter().sum::<f64>() / n;
            let mut num = 0.0;
            let mut da = 0.0;
            let mut db = 0.0;
            for (&x, &y) in ha.iter().zip(hb) {
                num += (x - mean_a) * (y - mean_b);
                da += (x - mean_a).powi(2);
                db += (y - mean_b).powi(2);
            }
            let denom = (da * db).sqrt();
            if denom < f64::MIN_POSITIVE {
                1.0 // both flat: identical up to scale
            } else {
                num / denom
            }
        }
        HistCompare::ChiSquare => {
            ha.iter().zip(hb).filter(|(&x, _)| x > 0.0).map(|(&x, &y)| (x - y).powi(2) / x).sum()
        }
        HistCompare::Intersection => ha.iter().zip(hb).map(|(&x, &y)| x.min(y)).sum(),
        HistCompare::Hellinger => {
            // OpenCV HISTCMP_BHATTACHARYYA:
            // sqrt(1 - (1/sqrt(meanA*meanB*N^2)) * Σ sqrt(a_i b_i))
            let sum_a: f64 = ha.iter().sum();
            let sum_b: f64 = hb.iter().sum();
            if sum_a < f64::MIN_POSITIVE || sum_b < f64::MIN_POSITIVE {
                return Ok(1.0);
            }
            let bc: f64 = ha.iter().zip(hb).map(|(&x, &y)| (x * y).sqrt()).sum();
            let v = 1.0 - bc / (sum_a * sum_b).sqrt();
            v.max(0.0).sqrt()
        }
    })
}

/// [`compare_hist`] with early abandon for metrics whose distance
/// accumulates monotonically. Only Chi-square qualifies: its per-bin
/// terms `(aᵢ−bᵢ)²/aᵢ` are non-negative, so the partial sum is a lower
/// bound of the final distance and the scan stops once it reaches
/// `bound`. The other metrics (Correlation, Intersection, Hellinger)
/// normalise by totals only known at the end, so they always compute the
/// full distance.
///
/// The result is exact whenever it is `< bound`; otherwise it is some
/// value `≥ bound`.
pub fn compare_hist_bounded(
    a: &RgbHistogram,
    b: &RgbHistogram,
    method: HistCompare,
    bound: f64,
) -> Result<f64> {
    if method != HistCompare::ChiSquare || !bound.is_finite() {
        return compare_hist(a, b, method);
    }
    if a.bins_per_channel != b.bins_per_channel {
        return Err(ImgError::InvalidParameter {
            name: "histogram",
            msg: format!("bin mismatch: {} vs {}", a.bins_per_channel, b.bins_per_channel),
        });
    }
    let mut acc = 0.0f64;
    // Chunked accumulation: check the bound every 64 bins rather than
    // every term, keeping the inner loop branch-light.
    for (ca, cb) in a.data.chunks(64).zip(b.data.chunks(64)) {
        for (&x, &y) in ca.iter().zip(cb) {
            if x > 0.0 {
                acc += (x - y) * (x - y) / x;
            }
        }
        if acc >= bound {
            return Ok(acc);
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solid(rgb: [u8; 3]) -> RgbHistogram {
        rgb_histogram(&RgbImage::filled(8, 8, rgb), 16).unwrap()
    }

    #[test]
    fn histogram_sums_to_one_per_channel() {
        let mut img = RgbImage::new(4, 4);
        for (i, px) in img.as_raw_mut().chunks_exact_mut(3).enumerate() {
            px[0] = (i * 16) as u8;
            px[1] = 255 - (i * 16) as u8;
            px[2] = 7;
        }
        let h = rgb_histogram(&img, 32).unwrap();
        for c in 0..3 {
            let s: f64 = h.as_slice()[c * 32..(c + 1) * 32].iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "channel {c} sums to {s}");
        }
    }

    #[test]
    fn invalid_bins_rejected() {
        let img = RgbImage::new(2, 2);
        assert!(rgb_histogram(&img, 0).is_err());
        assert!(rgb_histogram(&img, 257).is_err());
        assert!(rgb_histogram(&img, 256).is_ok());
    }

    #[test]
    fn self_comparison_identities() {
        let h = solid([120, 30, 200]);
        assert!((compare_hist(&h, &h, HistCompare::Correlation).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(compare_hist(&h, &h, HistCompare::ChiSquare).unwrap(), 0.0);
        // Intersection of identical normalised histograms = total mass = 3.
        assert!((compare_hist(&h, &h, HistCompare::Intersection).unwrap() - 3.0).abs() < 1e-12);
        assert!(compare_hist(&h, &h, HistCompare::Hellinger).unwrap() < 1e-7);
    }

    #[test]
    fn disjoint_histograms_are_maximally_distant() {
        let a = solid([0, 0, 0]);
        let b = solid([255, 255, 255]);
        assert_eq!(compare_hist(&a, &b, HistCompare::Intersection).unwrap(), 0.0);
        assert!((compare_hist(&a, &b, HistCompare::Hellinger).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hellinger_is_symmetric_and_bounded() {
        let a = solid([10, 200, 45]);
        let b = solid([200, 10, 99]);
        let d1 = compare_hist(&a, &b, HistCompare::Hellinger).unwrap();
        let d2 = compare_hist(&b, &a, HistCompare::Hellinger).unwrap();
        assert!((d1 - d2).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&d1));
    }

    #[test]
    fn chi_square_is_asymmetric_by_formula() {
        // a has mass in a bin where b has none -> that bin contributes to
        // d(a,b) but is skipped in d(b,a).
        let a = solid([10, 10, 10]);
        let mut img = RgbImage::filled(8, 8, [10, 10, 10]);
        img.put_pixel(0, 0, [250, 250, 250]);
        let b = rgb_histogram(&img, 16).unwrap();
        let dab = compare_hist(&b, &a, HistCompare::ChiSquare).unwrap();
        let dba = compare_hist(&a, &b, HistCompare::ChiSquare).unwrap();
        assert!(dab > dba);
    }

    #[test]
    fn bin_mismatch_is_error() {
        let img = RgbImage::filled(2, 2, [1, 2, 3]);
        let a = rgb_histogram(&img, 8).unwrap();
        let b = rgb_histogram(&img, 16).unwrap();
        assert!(compare_hist(&a, &b, HistCompare::Correlation).is_err());
    }

    #[test]
    fn similar_colors_score_better_than_dissimilar() {
        // With 16 bins each channel quantises to v/16: the near pair shares
        // the R and G bins, the far pair only the G bin.
        let red = solid([230, 20, 20]);
        let dark_red = solid([235, 25, 60]);
        let blue = solid([20, 20, 230]);
        let near = compare_hist(&red, &dark_red, HistCompare::Hellinger).unwrap();
        let far = compare_hist(&red, &blue, HistCompare::Hellinger).unwrap();
        assert!(near < far);
    }

    #[test]
    fn direction_flags() {
        assert!(HistCompare::Correlation.higher_is_more_similar());
        assert!(HistCompare::Intersection.higher_is_more_similar());
        assert!(!HistCompare::ChiSquare.higher_is_more_similar());
        assert!(!HistCompare::Hellinger.higher_is_more_similar());
    }
}
