// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Minimal image I/O: binary PPM (P6) and PGM (P5).
//!
//! Keeps the reproduction dependency-free while letting users export the
//! synthetic datasets and inspect intermediate pipeline stages with any
//! standard image viewer.

use crate::error::{ImgError, Result};
use crate::image::{GrayImage, RgbImage};
use std::io::{Read, Write};
use std::path::Path;

/// Write an RGB image as binary PPM (P6).
pub fn write_ppm(path: &Path, img: &RgbImage) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    write!(f, "P6\n{} {}\n255\n", img.width(), img.height())?;
    f.write_all(img.as_raw())
}

/// Write a grayscale image as binary PGM (P5).
pub fn write_pgm(path: &Path, img: &GrayImage) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    write!(f, "P5\n{} {}\n255\n", img.width(), img.height())?;
    f.write_all(img.as_raw())
}

/// Parse the PNM header: magic, width, height, maxval. Supports `#`
/// comments and arbitrary whitespace, per the Netpbm spec.
fn parse_header(data: &[u8], magic: &[u8; 2]) -> Result<(u32, u32, usize)> {
    if data.len() < 2 || &data[..2] != magic {
        return Err(ImgError::InvalidParameter {
            name: "pnm",
            msg: format!("bad magic, expected {}", String::from_utf8_lossy(magic)),
        });
    }
    let mut pos = 2usize;
    let mut fields = [0u32; 3];
    for field in &mut fields {
        // Skip whitespace and comments.
        loop {
            while pos < data.len() && data[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if pos < data.len() && data[pos] == b'#' {
                while pos < data.len() && data[pos] != b'\n' {
                    pos += 1;
                }
            } else {
                break;
            }
        }
        let start = pos;
        while pos < data.len() && data[pos].is_ascii_digit() {
            pos += 1;
        }
        if start == pos {
            return Err(ImgError::InvalidParameter { name: "pnm", msg: "truncated header".into() });
        }
        // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
        *field = std::str::from_utf8(&data[start..pos]).expect("digits are utf8").parse().map_err(
            |_| ImgError::InvalidParameter {
                name: "pnm",
                msg: "numeric overflow in header".into(),
            },
        )?;
    }
    if fields[2] != 255 {
        return Err(ImgError::InvalidParameter {
            name: "pnm",
            msg: format!("only maxval 255 is supported, got {}", fields[2]),
        });
    }
    // Exactly one whitespace byte separates header from pixel data.
    pos += 1;
    Ok((fields[0], fields[1], pos))
}

/// Read a binary PPM (P6) file.
pub fn read_ppm(path: &Path) -> Result<RgbImage> {
    let mut data = Vec::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut data))
        .map_err(|e| ImgError::InvalidParameter { name: "path", msg: e.to_string() })?;
    let (w, h, offset) = parse_header(&data, b"P6")?;
    let need = w as usize * h as usize * 3;
    if data.len() < offset + need {
        return Err(ImgError::InvalidParameter {
            name: "pnm",
            msg: format!("pixel data truncated: have {}, need {need}", data.len() - offset),
        });
    }
    RgbImage::from_vec(w, h, data[offset..offset + need].to_vec())
}

/// Read a binary PGM (P5) file.
pub fn read_pgm(path: &Path) -> Result<GrayImage> {
    let mut data = Vec::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut data))
        .map_err(|e| ImgError::InvalidParameter { name: "path", msg: e.to_string() })?;
    let (w, h, offset) = parse_header(&data, b"P5")?;
    let need = w as usize * h as usize;
    if data.len() < offset + need {
        return Err(ImgError::InvalidParameter {
            name: "pnm",
            msg: format!("pixel data truncated: have {}, need {need}", data.len() - offset),
        });
    }
    GrayImage::from_vec(w, h, data[offset..offset + need].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("taor_io_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn ppm_roundtrip() {
        let mut img = RgbImage::new(7, 5);
        for (i, v) in img.as_raw_mut().iter_mut().enumerate() {
            *v = (i % 251) as u8;
        }
        let path = tmp("rt.ppm");
        write_ppm(&path, &img).unwrap();
        let back = read_ppm(&path).unwrap();
        assert_eq!(back, img);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pgm_roundtrip() {
        let mut img = GrayImage::new(4, 9);
        for (i, v) in img.as_raw_mut().iter_mut().enumerate() {
            *v = (i * 7 % 256) as u8;
        }
        let path = tmp("rt.pgm");
        write_pgm(&path, &img).unwrap();
        let back = read_pgm(&path).unwrap();
        assert_eq!(back, img);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_with_comments_parses() {
        let path = tmp("comment.pgm");
        std::fs::write(&path, b"P5\n# a comment\n2 2\n# another\n255\n\x01\x02\x03\x04").unwrap();
        let img = read_pgm(&path).unwrap();
        assert_eq!(img.dimensions(), (2, 2));
        assert_eq!(img.as_raw(), &[1, 2, 3, 4]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("bad.ppm");
        std::fs::write(&path, b"P5\n2 2\n255\n\x00\x00\x00\x00").unwrap();
        assert!(read_ppm(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_data_rejected() {
        let path = tmp("trunc.ppm");
        std::fs::write(&path, b"P6\n4 4\n255\nshort").unwrap();
        assert!(read_ppm(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_error_not_panic() {
        assert!(read_ppm(Path::new("/nonexistent/taor.ppm")).is_err());
    }

    #[test]
    fn unsupported_maxval_rejected() {
        let path = tmp("max.pgm");
        std::fs::write(&path, b"P5\n1 1\n65535\n\x00\x00").unwrap();
        assert!(read_pgm(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
