//! # taor-imgproc
//!
//! Image-processing substrate for the task-agnostic object-recognition
//! pipelines of Chiatti et al. (EDBT/ICDT 2019 workshops).
//!
//! The paper's pipelines were built on OpenCV. This crate re-implements,
//! from the primary sources, exactly the parts those pipelines consume:
//!
//! * image containers and colour conversion ([`image`], [`color`]),
//! * global binary thresholding and Otsu's method ([`threshold`]),
//! * Suzuki–Abe border following and contour geometry ([`contour`]),
//! * raw/central/normalised image moments and the seven Hu invariants,
//!   plus the three `matchShapes` distances ([`moments`]),
//! * per-channel RGB histograms with the four OpenCV comparison metrics
//!   ([`histogram`]),
//! * resizing, separable Gaussian smoothing, Sobel gradients ([`resize`],
//!   [`filter`]),
//! * integral images ([`integral`]) for the SURF substrate, and
//! * simple rasterisation ([`draw`]) for the synthetic dataset renderer.
//!
//! All algorithms are deterministic and pure-CPU; none allocate global
//! state.
//!
//! ## Quick example
//!
//! ```
//! use taor_imgproc::prelude::*;
//!
//! // An 8x8 white square on black background.
//! let mut img = GrayImage::new(16, 16);
//! for y in 4..12 {
//!     for x in 4..12 {
//!         img.put(x, y, 255);
//!     }
//! }
//! let bin = threshold_binary(&img, 128);
//! let contours = find_contours(&bin);
//! assert_eq!(contours.len(), 1);
//! let hu = hu_moments(&moments_of_contour(&contours[0]));
//! assert!(hu[0] > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod canny;
pub mod cmp;
pub mod color;
pub mod contour;
pub mod draw;
pub mod error;
pub mod filter;
pub mod histogram;
pub mod image;
pub mod integral;
pub mod io;
pub mod label;
pub mod moments;
pub mod morphology;
pub mod resize;
pub mod threshold;
pub mod warp;

/// Convenient glob-import of the most common types and functions.
pub mod prelude {
    pub use crate::canny::canny;
    pub use crate::cmp::{
        nan_first_f32, nan_first_f64, nan_last_desc_f32, nan_last_desc_f64, nan_last_f32,
        nan_last_f64,
    };
    pub use crate::color::{rgb_to_gray, rgb_to_hsv, Hsv};
    pub use crate::contour::{crop_to_largest_contour, find_contours, largest_contour, Contour};
    pub use crate::draw::Canvas;
    pub use crate::error::{ImgError, Result};
    pub use crate::filter::{gaussian_blur, sobel};
    pub use crate::histogram::{
        compare_hist, compare_hist_bounded, rgb_histogram, HistCompare, RgbHistogram,
    };
    pub use crate::image::{GrayF32, GrayImage, ImageBuf, Rect, RgbImage};
    pub use crate::integral::IntegralImage;
    pub use crate::io::{read_pgm, read_ppm, write_pgm, write_ppm};
    pub use crate::label::{label_components, Component, Labels};
    pub use crate::moments::{
        hu_moments, match_shapes, match_shapes_bounded, moments, moments_of_contour, HuMoments,
        MatchShapesMode, Moments,
    };
    pub use crate::morphology::{close, dilate, erode, open};
    pub use crate::resize::{resize_bilinear, resize_bilinear_rgb, resize_nearest};
    pub use crate::threshold::{
        adaptive_threshold_mean, equalize_hist, otsu_threshold, threshold_binary,
        threshold_binary_inv,
    };
    pub use crate::warp::{warp_affine, warp_affine_rgb, Affine};
}

pub use prelude::*;
