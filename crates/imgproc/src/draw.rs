// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Minimal rasterisation used by the synthetic dataset renderer.
//!
//! The ShapeNet/NYU stand-in in `taor-data` draws each object class as a
//! composition of filled polygons, ellipses and strokes on a [`Canvas`].
//! Rasterisation is deliberately simple (no anti-aliasing): the paper's
//! pipelines all start by thresholding to a hard silhouette anyway.

use crate::image::RgbImage;

/// A 2-D point in continuous canvas coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P2 {
    pub x: f32,
    pub y: f32,
}

/// Shorthand constructor for [`P2`].
pub fn p2(x: f32, y: f32) -> P2 {
    P2 { x, y }
}

impl P2 {
    /// Rotate around `center` by `angle` radians (y-down screen coords).
    pub fn rotated(self, center: P2, angle: f32) -> P2 {
        let (s, c) = angle.sin_cos();
        let dx = self.x - center.x;
        let dy = self.y - center.y;
        P2 { x: center.x + dx * c - dy * s, y: center.y + dx * s + dy * c }
    }

    /// Uniform scale around `center`.
    pub fn scaled(self, center: P2, k: f32) -> P2 {
        P2 { x: center.x + (self.x - center.x) * k, y: center.y + (self.y - center.y) * k }
    }
}

/// An RGB drawing surface.
#[derive(Debug, Clone)]
pub struct Canvas {
    img: RgbImage,
}

impl Canvas {
    /// Create a canvas filled with `background`.
    pub fn new(width: u32, height: u32, background: [u8; 3]) -> Self {
        Canvas { img: RgbImage::filled(width, height, background) }
    }

    /// Finish drawing, returning the image.
    pub fn into_image(self) -> RgbImage {
        self.img
    }

    /// Borrow the image being drawn.
    pub fn image(&self) -> &RgbImage {
        &self.img
    }

    /// Mutably borrow the image being drawn (e.g. to continue drawing on
    /// an existing image).
    pub fn image_mut(&mut self) -> &mut RgbImage {
        &mut self.img
    }

    /// Canvas width.
    pub fn width(&self) -> u32 {
        self.img.width()
    }

    /// Canvas height.
    pub fn height(&self) -> u32 {
        self.img.height()
    }

    /// Set one pixel, silently ignoring out-of-bounds coordinates.
    #[inline]
    pub fn plot(&mut self, x: i64, y: i64, color: [u8; 3]) {
        if self.img.in_bounds(x, y) {
            self.img.put_pixel(x as u32, y as u32, color);
        }
    }

    /// Fill an axis-aligned rectangle given top-left corner and size.
    pub fn fill_rect(&mut self, x: f32, y: f32, w: f32, h: f32, color: [u8; 3]) {
        let x0 = x.round() as i64;
        let y0 = y.round() as i64;
        let x1 = (x + w).round() as i64;
        let y1 = (y + h).round() as i64;
        for yy in y0..y1 {
            for xx in x0..x1 {
                self.plot(xx, yy, color);
            }
        }
    }

    /// Fill a simple polygon (even–odd rule, scanline algorithm). Works for
    /// convex and concave polygons; self-intersections follow even–odd.
    pub fn fill_polygon(&mut self, pts: &[P2], color: [u8; 3]) {
        if pts.len() < 3 {
            return;
        }
        let min_y = pts.iter().map(|p| p.y).fold(f32::INFINITY, f32::min).floor() as i64;
        let max_y = pts.iter().map(|p| p.y).fold(f32::NEG_INFINITY, f32::max).ceil() as i64;
        let mut xs: Vec<f32> = Vec::with_capacity(8);
        for yy in min_y.max(0)..=max_y.min(self.height() as i64 - 1) {
            let scan = yy as f32 + 0.5;
            xs.clear();
            for i in 0..pts.len() {
                let a = pts[i];
                let b = pts[(i + 1) % pts.len()];
                if (a.y <= scan && b.y > scan) || (b.y <= scan && a.y > scan) {
                    let t = (scan - a.y) / (b.y - a.y);
                    xs.push(a.x + t * (b.x - a.x));
                }
            }
            xs.sort_by(|p, q| crate::cmp::nan_last_f32(*p, *q));
            for pair in xs.chunks_exact(2) {
                let x0 = pair[0].round() as i64;
                let x1 = pair[1].round() as i64;
                for xx in x0..x1 {
                    self.plot(xx, yy, color);
                }
            }
        }
    }

    /// Fill an axis-aligned ellipse centred at `(cx, cy)`.
    pub fn fill_ellipse(&mut self, cx: f32, cy: f32, rx: f32, ry: f32, color: [u8; 3]) {
        if rx <= 0.0 || ry <= 0.0 {
            return;
        }
        let y0 = (cy - ry).floor() as i64;
        let y1 = (cy + ry).ceil() as i64;
        for yy in y0.max(0)..=y1.min(self.height() as i64 - 1) {
            let dy = (yy as f32 + 0.5 - cy) / ry;
            let rem = 1.0 - dy * dy;
            if rem <= 0.0 {
                continue;
            }
            let half = rx * rem.sqrt();
            let x0 = (cx - half).round() as i64;
            let x1 = (cx + half).round() as i64;
            for xx in x0..x1 {
                self.plot(xx, yy, color);
            }
        }
    }

    /// Draw a line of the given `thickness` (square brush along Bresenham).
    pub fn draw_line(&mut self, a: P2, b: P2, thickness: f32, color: [u8; 3]) {
        let dx = b.x - a.x;
        let dy = b.y - a.y;
        let len = (dx * dx + dy * dy).sqrt();
        let steps = (len.ceil() as usize).max(1);
        let r = (thickness / 2.0).max(0.5);
        for i in 0..=steps {
            let t = i as f32 / steps as f32;
            let px = a.x + t * dx;
            let py = a.y + t * dy;
            let x0 = (px - r).round() as i64;
            let x1 = (px + r).round() as i64;
            let y0 = (py - r).round() as i64;
            let y1 = (py + r).round() as i64;
            for yy in y0..=y1 {
                for xx in x0..=x1 {
                    self.plot(xx, yy, color);
                }
            }
        }
    }

    /// Stroke the outline of an axis-aligned rectangle (1 px border,
    /// thickened by `thickness`); used to annotate detections.
    pub fn draw_rect_outline(&mut self, rect: crate::image::Rect, thickness: u32, color: [u8; 3]) {
        let t = thickness.max(1) as f32;
        let (x, y) = (rect.x as f32, rect.y as f32);
        let (w, h) = (rect.width as f32, rect.height as f32);
        self.fill_rect(x, y, w, t, color);
        self.fill_rect(x, y + h - t, w, t, color);
        self.fill_rect(x, y, t, h, color);
        self.fill_rect(x + w - t, y, t, h, color);
    }

    /// Draw a small cross marker centred at `(cx, cy)` (keypoint overlay).
    pub fn draw_cross(&mut self, cx: f32, cy: f32, arm: f32, color: [u8; 3]) {
        self.draw_line(p2(cx - arm, cy), p2(cx + arm, cy), 1.0, color);
        self.draw_line(p2(cx, cy - arm), p2(cx, cy + arm), 1.0, color);
    }

    /// Fill a rotated rectangle: center `(cx, cy)`, size `w × h`, rotation
    /// `angle` radians.
    pub fn fill_rot_rect(&mut self, cx: f32, cy: f32, w: f32, h: f32, angle: f32, color: [u8; 3]) {
        let c = p2(cx, cy);
        let hw = w / 2.0;
        let hh = h / 2.0;
        let pts = [
            p2(cx - hw, cy - hh).rotated(c, angle),
            p2(cx + hw, cy - hh).rotated(c, angle),
            p2(cx + hw, cy + hh).rotated(c, angle),
            p2(cx - hw, cy + hh).rotated(c, angle),
        ];
        self.fill_polygon(&pts, color);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_color(img: &RgbImage, color: [u8; 3]) -> usize {
        img.as_raw().chunks_exact(3).filter(|px| *px == color).count()
    }

    #[test]
    fn fill_rect_covers_exact_pixels() {
        let mut c = Canvas::new(10, 10, [0, 0, 0]);
        c.fill_rect(2.0, 3.0, 4.0, 2.0, [255, 0, 0]);
        assert_eq!(count_color(c.image(), [255, 0, 0]), 8);
    }

    #[test]
    fn out_of_bounds_drawing_is_clipped() {
        let mut c = Canvas::new(5, 5, [0, 0, 0]);
        c.fill_rect(-10.0, -10.0, 100.0, 100.0, [1, 2, 3]);
        assert_eq!(count_color(c.image(), [1, 2, 3]), 25);
    }

    #[test]
    fn triangle_fill_plausible_area() {
        let mut c = Canvas::new(20, 20, [0, 0, 0]);
        c.fill_polygon(&[p2(0.0, 0.0), p2(16.0, 0.0), p2(0.0, 16.0)], [9, 9, 9]);
        let n = count_color(c.image(), [9, 9, 9]);
        // Ideal area 128; rasterisation within 20 %.
        assert!((n as f32 - 128.0).abs() < 26.0, "area {n}");
    }

    #[test]
    fn degenerate_polygon_draws_nothing() {
        let mut c = Canvas::new(8, 8, [0, 0, 0]);
        c.fill_polygon(&[p2(1.0, 1.0), p2(5.0, 5.0)], [9, 9, 9]);
        assert_eq!(count_color(c.image(), [9, 9, 9]), 0);
    }

    #[test]
    fn ellipse_area_close_to_pi_ab() {
        let mut c = Canvas::new(40, 40, [0, 0, 0]);
        c.fill_ellipse(20.0, 20.0, 10.0, 6.0, [7, 7, 7]);
        let n = count_color(c.image(), [7, 7, 7]) as f32;
        let ideal = std::f32::consts::PI * 10.0 * 6.0;
        assert!((n - ideal).abs() / ideal < 0.15, "area {n} vs {ideal}");
    }

    #[test]
    fn rotated_rect_45_deg_has_same_area() {
        let mut c = Canvas::new(40, 40, [0, 0, 0]);
        c.fill_rot_rect(20.0, 20.0, 12.0, 8.0, std::f32::consts::FRAC_PI_4, [5, 5, 5]);
        let n = count_color(c.image(), [5, 5, 5]) as f32;
        assert!((n - 96.0).abs() / 96.0 < 0.2, "area {n}");
    }

    #[test]
    fn line_connects_endpoints() {
        let mut c = Canvas::new(12, 12, [0, 0, 0]);
        c.draw_line(p2(1.0, 1.0), p2(10.0, 10.0), 1.0, [3, 3, 3]);
        assert_eq!(c.image().pixel(1, 1), [3, 3, 3]);
        assert_eq!(c.image().pixel(10, 10), [3, 3, 3]);
        assert_eq!(c.image().pixel(5, 5), [3, 3, 3]);
    }

    #[test]
    fn rect_outline_leaves_interior_untouched() {
        let mut c = Canvas::new(20, 20, [0, 0, 0]);
        c.draw_rect_outline(crate::image::Rect::new(4, 4, 10, 8), 1, [9, 9, 9]);
        assert_eq!(c.image().pixel(4, 4), [9, 9, 9]);
        assert_eq!(c.image().pixel(13, 11), [9, 9, 9]);
        assert_eq!(c.image().pixel(8, 8), [0, 0, 0], "interior stays empty");
    }

    #[test]
    fn cross_marks_center() {
        let mut c = Canvas::new(16, 16, [0, 0, 0]);
        c.draw_cross(8.0, 8.0, 3.0, [7, 7, 7]);
        assert_eq!(c.image().pixel(8, 8), [7, 7, 7]);
        assert_eq!(c.image().pixel(5, 8), [7, 7, 7]);
        assert_eq!(c.image().pixel(8, 11), [7, 7, 7]);
        assert_eq!(c.image().pixel(5, 5), [0, 0, 0]);
    }

    #[test]
    fn rotation_preserves_distance_from_center() {
        let c = p2(5.0, 5.0);
        let q = p2(9.0, 5.0).rotated(c, 1.234);
        let d = ((q.x - 5.0).powi(2) + (q.y - 5.0).powi(2)).sqrt();
        assert!((d - 4.0).abs() < 1e-5);
    }
}
