// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Image and contour moments, Hu invariants, and `matchShapes`.
//!
//! The shape-only pipeline of the paper matches contours "through the
//! OpenCV built-in similarity function based on Hu moments [15], i.e.
//! moments invariant to translation, rotation and scale", with "distance
//! metric between image moments set to be the L1, L2, or L3 norm". Those
//! are OpenCV's `CONTOURS_MATCH_I1/I2/I3` modes, reproduced here bit-for-
//! bit from the published formulas (Hu 1962; OpenCV `matchShapes`).

use crate::contour::Contour;
use crate::image::GrayImage;

/// Raw, central and normalised-central moments up to order three.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Moments {
    // Raw spatial moments.
    pub m00: f64,
    pub m10: f64,
    pub m01: f64,
    pub m20: f64,
    pub m11: f64,
    pub m02: f64,
    pub m30: f64,
    pub m21: f64,
    pub m12: f64,
    pub m03: f64,
    // Central moments.
    pub mu20: f64,
    pub mu11: f64,
    pub mu02: f64,
    pub mu30: f64,
    pub mu21: f64,
    pub mu12: f64,
    pub mu03: f64,
    // Normalised central moments.
    pub nu20: f64,
    pub nu11: f64,
    pub nu02: f64,
    pub nu30: f64,
    pub nu21: f64,
    pub nu12: f64,
    pub nu03: f64,
}

/// The seven Hu invariants.
pub type HuMoments = [f64; 7];

impl Moments {
    /// Centroid `(x̄, ȳ)`; `(0, 0)` for an empty region.
    pub fn centroid(&self) -> (f64, f64) {
        if self.m00.abs() < f64::EPSILON {
            (0.0, 0.0)
        } else {
            (self.m10 / self.m00, self.m01 / self.m00)
        }
    }

    /// Fill central and normalised moments from the raw ones.
    fn complete(&mut self) {
        if self.m00.abs() < f64::EPSILON {
            return;
        }
        let cx = self.m10 / self.m00;
        let cy = self.m01 / self.m00;

        self.mu20 = self.m20 - self.m10 * cx;
        self.mu11 = self.m11 - self.m10 * cy;
        self.mu02 = self.m02 - self.m01 * cy;
        self.mu30 = self.m30 - cx * (3.0 * self.mu20 + cx * self.m10);
        self.mu21 = self.m21 - cx * (2.0 * self.mu11 + cx * self.m01) - cy * self.mu20;
        self.mu12 = self.m12 - cy * (2.0 * self.mu11 + cy * self.m10) - cx * self.mu02;
        self.mu03 = self.m03 - cy * (3.0 * self.mu02 + cy * self.m01);

        // nu_pq = mu_pq / m00^((p+q)/2 + 1): exponent 2 for order-2, 2.5 for order-3.
        let inv_m00 = 1.0 / self.m00.abs();
        let n2 = inv_m00 * inv_m00;
        let n3 = n2 * inv_m00.sqrt();

        self.nu20 = self.mu20 * n2;
        self.nu11 = self.mu11 * n2;
        self.nu02 = self.mu02 * n2;
        self.nu30 = self.mu30 * n3;
        self.nu21 = self.mu21 * n3;
        self.nu12 = self.mu12 * n3;
        self.nu03 = self.mu03 * n3;
    }
}

/// Raster moments of a grayscale image. With `binary = true` every non-zero
/// pixel counts as 1 (OpenCV's `binaryImage` flag); otherwise pixels are
/// intensity-weighted.
pub fn moments(img: &GrayImage, binary: bool) -> Moments {
    let mut m = Moments::default();
    for (x, y, [v]) in img.enumerate_pixels() {
        if v == 0 {
            continue;
        }
        let w = if binary { 1.0 } else { v as f64 };
        let xf = x as f64;
        let yf = y as f64;
        m.m00 += w;
        m.m10 += w * xf;
        m.m01 += w * yf;
        m.m20 += w * xf * xf;
        m.m11 += w * xf * yf;
        m.m02 += w * yf * yf;
        m.m30 += w * xf * xf * xf;
        m.m21 += w * xf * xf * yf;
        m.m12 += w * xf * yf * yf;
        m.m03 += w * yf * yf * yf;
    }
    m.complete();
    m
}

/// Exact polygon moments of a closed contour (Green's theorem), following
/// OpenCV's `contourMoments`.
pub fn moments_of_contour(contour: &Contour) -> Moments {
    let pts = &contour.points;
    let mut m = Moments::default();
    if pts.len() < 3 {
        return m;
    }
    let (mut a00, mut a10, mut a01) = (0.0f64, 0.0, 0.0);
    let (mut a20, mut a11, mut a02) = (0.0f64, 0.0, 0.0);
    let (mut a30, mut a21, mut a12, mut a03) = (0.0f64, 0.0, 0.0, 0.0);

    let n = pts.len();
    for i in 0..n {
        let p = pts[i];
        let q = pts[(i + 1) % n];
        let (xi_1, yi_1) = (p.x as f64, p.y as f64);
        let (xi, yi) = (q.x as f64, q.y as f64);
        let xi2 = xi * xi;
        let yi2 = yi * yi;
        let xi_12 = xi_1 * xi_1;
        let yi_12 = yi_1 * yi_1;
        let dxy = xi_1 * yi - xi * yi_1;
        let xii_1 = xi_1 + xi;
        let yii_1 = yi_1 + yi;

        a00 += dxy;
        a10 += dxy * xii_1;
        a01 += dxy * yii_1;
        a20 += dxy * (xi_1 * xii_1 + xi2);
        a11 += dxy * (xi_1 * (yii_1 + yi_1) + xi * (yii_1 + yi));
        a02 += dxy * (yi_1 * yii_1 + yi2);
        a30 += dxy * xii_1 * (xi_12 + xi2);
        a03 += dxy * yii_1 * (yi_12 + yi2);
        a21 +=
            dxy * (xi_12 * (3.0 * yi_1 + yi) + 2.0 * xi * xi_1 * yii_1 + xi2 * (yi_1 + 3.0 * yi));
        a12 +=
            dxy * (yi_12 * (3.0 * xi_1 + xi) + 2.0 * yi * yi_1 * xii_1 + yi2 * (xi_1 + 3.0 * xi));
    }

    if a00.abs() < f64::EPSILON {
        return m;
    }
    let sign = if a00 > 0.0 { 1.0 } else { -1.0 };
    let db1_2 = 0.5 * sign;
    let db1_6 = sign / 6.0;
    let db1_12 = sign / 12.0;
    let db1_24 = sign / 24.0;
    let db1_20 = sign / 20.0;
    let db1_60 = sign / 60.0;

    m.m00 = a00 * db1_2;
    m.m10 = a10 * db1_6;
    m.m01 = a01 * db1_6;
    m.m20 = a20 * db1_12;
    m.m11 = a11 * db1_24;
    m.m02 = a02 * db1_12;
    m.m30 = a30 * db1_20;
    m.m21 = a21 * db1_60;
    m.m12 = a12 * db1_60;
    m.m03 = a03 * db1_20;
    m.complete();
    m
}

/// The seven Hu moment invariants (Hu 1962), invariant to translation,
/// scale and rotation (the 7th flips sign under reflection).
///
/// ```
/// use taor_imgproc::prelude::*;
///
/// let mut img = GrayImage::new(16, 16);
/// for y in 4..12 { for x in 4..10 { img.put(x, y, 255); } }
/// let hu = hu_moments(&moments(&img, true));
/// assert!(hu[0] > 0.0);
/// // A translated copy has identical invariants.
/// let mut moved = GrayImage::new(16, 16);
/// for y in 6..14 { for x in 8..14 { moved.put(x, y, 255); } }
/// let hu2 = hu_moments(&moments(&moved, true));
/// assert!((hu[0] - hu2[0]).abs() < 1e-9);
/// ```
pub fn hu_moments(m: &Moments) -> HuMoments {
    let (n20, n11, n02) = (m.nu20, m.nu11, m.nu02);
    let (n30, n21, n12, n03) = (m.nu30, m.nu21, m.nu12, m.nu03);

    let t0 = n30 + n12;
    let t1 = n21 + n03;
    let q0 = t0 * t0;
    let q1 = t1 * t1;
    let s0 = n30 - 3.0 * n12;
    let s1 = 3.0 * n21 - n03;

    [
        n20 + n02,
        (n20 - n02).powi(2) + 4.0 * n11 * n11,
        s0 * s0 + s1 * s1,
        q0 + q1,
        s0 * t0 * (q0 - 3.0 * q1) + s1 * t1 * (3.0 * q0 - q1),
        (n20 - n02) * (q0 - q1) + 4.0 * n11 * t0 * t1,
        s1 * t0 * (q0 - 3.0 * q1) - s0 * t1 * (3.0 * q0 - q1),
    ]
}

/// Distance mode for [`match_shapes`], mirroring OpenCV's
/// `CONTOURS_MATCH_I1/I2/I3`. The paper refers to these as the L1, L2 and
/// L3 norms between image moments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchShapesMode {
    /// `Σ |1/mᴬᵢ − 1/mᴮᵢ|`
    I1,
    /// `Σ |mᴬᵢ − mᴮᵢ|`
    I2,
    /// `maxᵢ |mᴬᵢ − mᴮᵢ| / |mᴬᵢ|`
    I3,
}

/// Log-signed transform used by `matchShapes`: `mᵢ = sign(hᵢ)·log₁₀|hᵢ|`.
fn log_sign(h: f64) -> Option<f64> {
    if h.abs() > f64::MIN_POSITIVE {
        Some(h.signum() * h.abs().log10())
    } else {
        None
    }
}

/// Hu-moment shape distance between two sets of invariants. Lower is more
/// similar; identical shapes score 0.
///
/// Components where either invariant is (numerically) zero are skipped,
/// as in OpenCV. Unlike OpenCV, when *no* component is comparable — e.g.
/// one side is the all-zero vector of a degenerate/empty contour — the
/// distance is `+∞` rather than 0: an empty shape matches nothing, and
/// returning 0 would make degenerate references universal attractors in
/// argmin classification.
pub fn match_shapes(a: &HuMoments, b: &HuMoments, mode: MatchShapesMode) -> f64 {
    match_shapes_bounded(a, b, mode, f64::INFINITY)
}

/// [`match_shapes`] with early abandon: every mode accumulates
/// monotonically (I1/I2 sum non-negative terms, I3 takes a running max),
/// so once the partial distance reaches `bound` the final value cannot
/// fall back below it and the scan stops.
///
/// The result is exact whenever it is `< bound`; otherwise it is some
/// value `≥ bound` (a valid lower bound of the true distance). Argmin
/// searches that pass their current best as `bound` and compare with
/// strict `<` are unaffected by the truncation.
pub fn match_shapes_bounded(
    a: &HuMoments,
    b: &HuMoments,
    mode: MatchShapesMode,
    bound: f64,
) -> f64 {
    let mut acc = 0.0f64;
    let mut compared = 0usize;
    for i in 0..7 {
        let (Some(ma), Some(mb)) = (log_sign(a[i]), log_sign(b[i])) else {
            continue;
        };
        compared += 1;
        match mode {
            MatchShapesMode::I1 => acc += (1.0 / ma - 1.0 / mb).abs(),
            MatchShapesMode::I2 => acc += (ma - mb).abs(),
            MatchShapesMode::I3 => {
                let d = (ma - mb).abs() / ma.abs();
                if d > acc {
                    acc = d;
                }
            }
        }
        if acc >= bound {
            return acc;
        }
    }
    if compared == 0 {
        f64::INFINITY
    } else {
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contour::{find_contours, Point};

    fn rect_image(x0: u32, y0: u32, w: u32, h: u32, canvas: u32) -> GrayImage {
        let mut img = GrayImage::new(canvas, canvas);
        for y in y0..y0 + h {
            for x in x0..x0 + w {
                img.put(x, y, 255);
            }
        }
        img
    }

    #[test]
    fn raster_moments_of_rect() {
        let img = rect_image(2, 3, 4, 2, 16);
        let m = moments(&img, true);
        assert_eq!(m.m00, 8.0);
        // x over {2,3,4,5}, mean 3.5; y over {3,4}, mean 3.5.
        let (cx, cy) = m.centroid();
        assert!((cx - 3.5).abs() < 1e-12);
        assert!((cy - 3.5).abs() < 1e-12);
    }

    #[test]
    fn intensity_weighting_differs_from_binary() {
        let mut img = GrayImage::new(4, 1);
        img.put(0, 0, 10);
        img.put(3, 0, 250);
        let mb = moments(&img, true);
        let mi = moments(&img, false);
        assert_eq!(mb.centroid().0, 1.5);
        assert!(mi.centroid().0 > 2.5, "intensity centroid pulled to bright pixel");
    }

    #[test]
    fn contour_moments_match_shoelace_area() {
        let img = rect_image(3, 3, 7, 5, 20);
        let contours = find_contours(&img);
        let m = moments_of_contour(&contours[0]);
        assert!((m.m00 - contours[0].area()).abs() < 1e-9);
    }

    #[test]
    fn empty_contour_moments_are_zero() {
        let c = Contour { points: vec![Point::new(1, 1)] };
        let m = moments_of_contour(&c);
        assert_eq!(m.m00, 0.0);
        assert_eq!(hu_moments(&m), [0.0; 7]);
    }

    #[test]
    fn hu_translation_invariance() {
        let a = moments(&rect_image(1, 1, 6, 3, 24), true);
        let b = moments(&rect_image(12, 15, 6, 3, 24), true);
        let ha = hu_moments(&a);
        let hb = hu_moments(&b);
        for i in 0..7 {
            assert!((ha[i] - hb[i]).abs() < 1e-12, "hu[{i}]: {} vs {}", ha[i], hb[i]);
        }
    }

    #[test]
    fn hu_scale_invariance() {
        let a = moments(&rect_image(2, 2, 8, 4, 64), true);
        let b = moments(&rect_image(2, 2, 32, 16, 64), true);
        let ha = hu_moments(&a);
        let hb = hu_moments(&b);
        // Discrete rasters are only approximately scale-invariant (the
        // variance of x over {0..w-1} is (w²−1)/12, not w²/12), so allow a
        // few percent on the first invariant.
        assert!((ha[0] - hb[0]).abs() / ha[0].abs() < 0.07);
        assert!(match_shapes(&ha, &hb, MatchShapesMode::I2) < 0.5);
    }

    #[test]
    fn hu_rotation_90_invariance() {
        let a = moments(&rect_image(4, 4, 10, 4, 32), true);
        let b = moments(&rect_image(4, 4, 4, 10, 32), true);
        let ha = hu_moments(&a);
        let hb = hu_moments(&b);
        for i in 0..6 {
            assert!(
                (ha[i] - hb[i]).abs() < 1e-10,
                "hu[{i}] not 90°-rotation invariant: {} vs {}",
                ha[i],
                hb[i]
            );
        }
    }

    #[test]
    fn match_shapes_identity_is_zero() {
        let img = rect_image(3, 3, 8, 5, 20);
        let hu = hu_moments(&moments(&img, true));
        for mode in [MatchShapesMode::I1, MatchShapesMode::I2, MatchShapesMode::I3] {
            assert_eq!(match_shapes(&hu, &hu, mode), 0.0);
        }
    }

    #[test]
    fn match_shapes_discriminates_rect_from_bar() {
        let square = hu_moments(&moments(&rect_image(4, 4, 8, 8, 32), true));
        let square2 = hu_moments(&moments(&rect_image(10, 10, 12, 12, 32), true));
        let bar = hu_moments(&moments(&rect_image(4, 4, 24, 2, 32), true));
        for mode in [MatchShapesMode::I1, MatchShapesMode::I2, MatchShapesMode::I3] {
            let near = match_shapes(&square, &square2, mode);
            let far = match_shapes(&square, &bar, mode);
            assert!(near < far, "{mode:?}: near {near} !< far {far}");
        }
    }

    #[test]
    fn match_shapes_degenerate_is_infinite() {
        // An all-zero Hu vector (empty contour) must match nothing,
        // never everything.
        let zeroish: HuMoments = [0.0; 7];
        let img = rect_image(3, 3, 8, 5, 20);
        let hu = hu_moments(&moments(&img, true));
        for mode in [MatchShapesMode::I1, MatchShapesMode::I2, MatchShapesMode::I3] {
            assert_eq!(match_shapes(&zeroish, &hu, mode), f64::INFINITY);
            assert_eq!(match_shapes(&zeroish, &zeroish, mode), f64::INFINITY);
        }
    }
}
