//! Error types shared by the image-processing substrate.

use std::fmt;

/// Errors produced by image operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImgError {
    /// An image dimension was zero or exceeded the supported maximum.
    InvalidDimensions { width: u32, height: u32 },
    /// A pixel coordinate lay outside the image bounds.
    OutOfBounds { x: u32, y: u32, width: u32, height: u32 },
    /// A rectangle did not fit inside the image it was applied to.
    InvalidRect { msg: String },
    /// The operation needs a non-empty input (e.g. cropping to the largest
    /// contour of an image that contains no contour).
    EmptyInput(&'static str),
    /// A numeric parameter was outside its valid range.
    InvalidParameter { name: &'static str, msg: String },
}

impl fmt::Display for ImgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImgError::InvalidDimensions { width, height } => {
                write!(f, "invalid image dimensions {width}x{height}")
            }
            ImgError::OutOfBounds { x, y, width, height } => {
                write!(f, "pixel ({x},{y}) out of bounds for {width}x{height} image")
            }
            ImgError::InvalidRect { msg } => write!(f, "invalid rectangle: {msg}"),
            ImgError::EmptyInput(what) => write!(f, "empty input: {what}"),
            ImgError::InvalidParameter { name, msg } => {
                write!(f, "invalid parameter `{name}`: {msg}")
            }
        }
    }
}

impl std::error::Error for ImgError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ImgError>;
