// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Contour extraction.
//!
//! Step (iii) of the paper's preprocessing applies "contour detection on
//! cascade" and step (iv) crops "the original RGB image to the contour of
//! largest area". OpenCV implements Suzuki–Abe border following; we get the
//! same outer borders by labelling 8-connected foreground components and
//! tracing each component's outer boundary once with Moore-neighbour
//! tracing (Jacob's stopping criterion). Only external contours are
//! produced, matching the `RETR_EXTERNAL` mode the pipeline needs.

use crate::error::{ImgError, Result};
use crate::image::{GrayImage, ImageBuf, Rect};

/// A point on a contour, in pixel coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Point {
    pub x: i32,
    pub y: i32,
}

impl Point {
    pub fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }
}

/// A closed outer boundary of one connected foreground component, listed in
/// clockwise order (image coordinates, y down).
#[derive(Debug, Clone, PartialEq)]
pub struct Contour {
    pub points: Vec<Point>,
}

impl Contour {
    /// Signed shoelace area of the traced polygon, absolute value.
    ///
    /// Matches OpenCV's `contourArea` convention: a single-pixel component
    /// has zero polygonal area.
    pub fn area(&self) -> f64 {
        let n = self.points.len();
        if n < 3 {
            return 0.0;
        }
        let mut acc = 0i64;
        for i in 0..n {
            let p = self.points[i];
            let q = self.points[(i + 1) % n];
            acc += p.x as i64 * q.y as i64 - q.x as i64 * p.y as i64;
        }
        (acc.abs() as f64) / 2.0
    }

    /// Perimeter: sum of Euclidean segment lengths of the closed polygon.
    pub fn perimeter(&self) -> f64 {
        let n = self.points.len();
        if n < 2 {
            return 0.0;
        }
        (0..n)
            .map(|i| {
                let p = self.points[i];
                let q = self.points[(i + 1) % n];
                (((p.x - q.x).pow(2) + (p.y - q.y).pow(2)) as f64).sqrt()
            })
            .sum()
    }

    /// Axis-aligned bounding rectangle of the contour.
    pub fn bounding_rect(&self) -> Rect {
        let min_x = self.points.iter().map(|p| p.x).min().unwrap_or(0).max(0) as u32;
        let min_y = self.points.iter().map(|p| p.y).min().unwrap_or(0).max(0) as u32;
        let max_x = self.points.iter().map(|p| p.x).max().unwrap_or(0).max(0) as u32;
        let max_y = self.points.iter().map(|p| p.y).max().unwrap_or(0).max(0) as u32;
        Rect::new(min_x, min_y, max_x - min_x + 1, max_y - min_y + 1)
    }

    /// Contour centroid from boundary points (not area-weighted).
    pub fn centroid(&self) -> (f64, f64) {
        if self.points.is_empty() {
            return (0.0, 0.0);
        }
        let n = self.points.len() as f64;
        let sx: i64 = self.points.iter().map(|p| p.x as i64).sum();
        let sy: i64 = self.points.iter().map(|p| p.y as i64).sum();
        (sx as f64 / n, sy as f64 / n)
    }
}

/// Moore neighbourhood in clockwise order starting from west.
const NEIGHBOURS: [(i32, i32); 8] =
    [(-1, 0), (-1, -1), (0, -1), (1, -1), (1, 0), (1, 1), (0, 1), (-1, 1)];

/// Find the outer contour of every 8-connected foreground component
/// (`pixel > 0`). Components are discovered in raster order, so output
/// order is deterministic.
pub fn find_contours(bin: &GrayImage) -> Vec<Contour> {
    let (w, h) = bin.dimensions();
    let mut labels: ImageBuf<u32, 1> = ImageBuf::new(w, h);
    let mut contours = Vec::new();
    let mut next_label = 1u32;
    let mut queue: Vec<(u32, u32)> = Vec::new();

    for y in 0..h {
        for x in 0..w {
            if bin.get(x, y) == 0 || labels.pixel(x, y)[0] != 0 {
                continue;
            }
            // New component: trace its outer boundary from this raster-first
            // pixel, then flood-fill the label so we never re-trace it.
            contours.push(trace_boundary(bin, x, y));
            let label = next_label;
            next_label += 1;
            queue.clear();
            queue.push((x, y));
            labels.put_pixel(x, y, [label]);
            while let Some((cx, cy)) = queue.pop() {
                for (dx, dy) in NEIGHBOURS {
                    let nx = cx as i64 + dx as i64;
                    let ny = cy as i64 + dy as i64;
                    if bin.in_bounds(nx, ny)
                        && bin.get(nx as u32, ny as u32) > 0
                        && labels.pixel(nx as u32, ny as u32)[0] == 0
                    {
                        labels.put_pixel(nx as u32, ny as u32, [label]);
                        queue.push((nx as u32, ny as u32));
                    }
                }
            }
        }
    }
    contours
}

/// Moore-neighbour boundary trace starting at the raster-first pixel of a
/// component. `(sx, sy)` must be foreground with no foreground pixel in any
/// earlier raster position of the same component.
fn trace_boundary(bin: &GrayImage, sx: u32, sy: u32) -> Contour {
    let start = Point::new(sx as i32, sy as i32);
    let mut points = vec![start];
    let fg =
        |p: Point| bin.in_bounds(p.x as i64, p.y as i64) && bin.get(p.x as u32, p.y as u32) > 0;

    // The raster-first pixel was entered "from the west" (its west neighbour
    // is background by construction), so begin the clockwise scan there.
    let mut current = start;
    let mut backtrack_dir = 0usize; // index into NEIGHBOURS pointing at the background we came from

    loop {
        let mut found = None;
        for step in 1..=8 {
            let dir = (backtrack_dir + step) % 8;
            let (dx, dy) = NEIGHBOURS[dir];
            let cand = Point::new(current.x + dx, current.y + dy);
            if fg(cand) {
                found = Some((cand, dir));
                break;
            }
        }
        let Some((next, dir)) = found else {
            // Isolated pixel.
            break;
        };
        if next == start && points.len() > 1 {
            // Jacob's criterion variant: stop when we re-enter the start
            // pixel; a full revisit of (start, first-move) would also do but
            // this terminates equivalently for our flood-filled usage.
            break;
        }
        points.push(next);
        // New backtrack direction: the neighbour we came from, i.e. the
        // reverse of `dir` as seen from `next`.
        backtrack_dir = (dir + 4) % 8;
        // Re-point the clockwise scan to start just after the backtrack.
        current = next;
        if points.len() > (bin.width() as usize * bin.height() as usize * 4) {
            // Safety valve: malformed tracing cannot loop forever.
            break;
        }
    }
    Contour { points }
}

/// The contour with the largest shoelace area, ties broken by first
/// occurrence (raster order). A NaN area never wins the maximum.
pub fn largest_contour(contours: &[Contour]) -> Option<&Contour> {
    contours.iter().max_by(|a, b| crate::cmp::nan_first_f64(a.area(), b.area()))
}

/// Crop `img` to the bounding rectangle of the largest contour of `bin`.
///
/// This is the paper's full step (iv). `bin` must have the same dimensions
/// as `img`.
pub fn crop_to_largest_contour<T: Copy + Default, const C: usize>(
    img: &ImageBuf<T, C>,
    bin: &GrayImage,
) -> Result<ImageBuf<T, C>> {
    if img.dimensions() != bin.dimensions() {
        return Err(ImgError::InvalidRect {
            msg: format!(
                "mask {}x{} does not match image {}x{}",
                bin.width(),
                bin.height(),
                img.width(),
                img.height()
            ),
        });
    }
    let contours = find_contours(bin);
    let largest = largest_contour(&contours).ok_or(ImgError::EmptyInput("no contours found"))?;
    img.crop(largest.bounding_rect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_image(x0: u32, y0: u32, side: u32) -> GrayImage {
        let mut img = GrayImage::new(20, 20);
        for y in y0..y0 + side {
            for x in x0..x0 + side {
                img.put(x, y, 255);
            }
        }
        img
    }

    #[test]
    fn single_square_yields_one_contour() {
        let img = square_image(3, 4, 6);
        let contours = find_contours(&img);
        assert_eq!(contours.len(), 1);
        let c = &contours[0];
        assert_eq!(c.bounding_rect(), Rect::new(3, 4, 6, 6));
        // Boundary of a 6x6 square traced over pixel centres is a 5x5 square
        // polygon: area 25.
        assert!((c.area() - 25.0).abs() < 1e-9, "area {}", c.area());
    }

    #[test]
    fn two_components_two_contours() {
        let mut img = square_image(1, 1, 3);
        for y in 10..14 {
            for x in 10..15 {
                img.put(x, y, 255);
            }
        }
        let contours = find_contours(&img);
        assert_eq!(contours.len(), 2);
        let largest = largest_contour(&contours).unwrap();
        assert_eq!(largest.bounding_rect(), Rect::new(10, 10, 5, 4));
    }

    #[test]
    fn empty_image_has_no_contours() {
        let img = GrayImage::new(8, 8);
        assert!(find_contours(&img).is_empty());
        assert!(largest_contour(&[]).is_none());
    }

    #[test]
    fn isolated_pixel_is_single_point_contour() {
        let mut img = GrayImage::new(5, 5);
        img.put(2, 2, 255);
        let contours = find_contours(&img);
        assert_eq!(contours.len(), 1);
        assert_eq!(contours[0].points, vec![Point::new(2, 2)]);
        assert_eq!(contours[0].area(), 0.0);
    }

    #[test]
    fn full_image_component_touches_borders() {
        let img = GrayImage::filled(6, 6, [255]);
        let contours = find_contours(&img);
        assert_eq!(contours.len(), 1);
        assert_eq!(contours[0].bounding_rect(), Rect::new(0, 0, 6, 6));
    }

    #[test]
    fn diagonal_pixels_are_one_component_under_8_connectivity() {
        let mut img = GrayImage::new(6, 6);
        img.put(1, 1, 255);
        img.put(2, 2, 255);
        img.put(3, 3, 255);
        let contours = find_contours(&img);
        assert_eq!(contours.len(), 1);
    }

    #[test]
    fn crop_to_largest_contour_extracts_object() {
        let bin = square_image(5, 6, 4);
        let mut rgb = crate::image::RgbImage::new(20, 20);
        rgb.put_pixel(5, 6, [9, 9, 9]);
        let cropped = crop_to_largest_contour(&rgb, &bin).unwrap();
        assert_eq!(cropped.dimensions(), (4, 4));
        assert_eq!(cropped.pixel(0, 0), [9, 9, 9]);
    }

    #[test]
    fn crop_fails_on_empty_mask() {
        let bin = GrayImage::new(10, 10);
        let rgb = crate::image::RgbImage::new(10, 10);
        assert_eq!(
            crop_to_largest_contour(&rgb, &bin),
            Err(ImgError::EmptyInput("no contours found"))
        );
    }

    #[test]
    fn crop_fails_on_dimension_mismatch() {
        let bin = GrayImage::new(10, 10);
        let rgb = crate::image::RgbImage::new(9, 10);
        assert!(crop_to_largest_contour(&rgb, &bin).is_err());
    }

    #[test]
    fn perimeter_of_square() {
        let img = square_image(2, 2, 5);
        let contours = find_contours(&img);
        // 4x4 polygon over pixel centres: perimeter 16.
        assert!((contours[0].perimeter() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn l_shape_single_contour_and_sane_area() {
        let mut img = GrayImage::new(12, 12);
        for y in 2..10 {
            for x in 2..5 {
                img.put(x, y, 255);
            }
        }
        for y in 7..10 {
            for x in 5..10 {
                img.put(x, y, 255);
            }
        }
        let contours = find_contours(&img);
        assert_eq!(contours.len(), 1);
        let a = contours[0].area();
        // Pixel count is 8*3 + 3*5 = 39; the traced polygon area must be in
        // the same ballpark (smaller, since it runs over pixel centres).
        assert!(a > 15.0 && a < 39.0, "area {a}");
    }
}
