// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Integral images (summed-area tables).
//!
//! SURF's box filters evaluate Hessian responses in constant time per
//! pixel via integral images — the key trick that made it "a more scalable
//! alternative to SIFT" (paper §3.3).

use crate::image::{GrayF32, GrayImage};

/// Summed-area table: `sum(x, y)` holds the sum of all pixels in the
/// rectangle `[0, x) × [0, y)`, so the table is `(w+1) × (h+1)`.
#[derive(Debug, Clone)]
pub struct IntegralImage {
    width: u32,
    height: u32,
    /// Row-major `(w+1) × (h+1)` prefix sums.
    sums: Vec<f64>,
}

impl IntegralImage {
    /// Build from an 8-bit grayscale image.
    pub fn from_gray(img: &GrayImage) -> Self {
        Self::build(img.width(), img.height(), |x, y| img.get(x, y) as f64)
    }

    /// Build from an f32 grayscale image.
    pub fn from_f32(img: &GrayF32) -> Self {
        Self::build(img.width(), img.height(), |x, y| img.get(x, y) as f64)
    }

    fn build(width: u32, height: u32, at: impl Fn(u32, u32) -> f64) -> Self {
        let w1 = width as usize + 1;
        let h1 = height as usize + 1;
        let mut sums = vec![0.0f64; w1 * h1];
        for y in 0..height as usize {
            let mut row_acc = 0.0;
            for x in 0..width as usize {
                row_acc += at(x as u32, y as u32);
                sums[(y + 1) * w1 + (x + 1)] = sums[y * w1 + (x + 1)] + row_acc;
            }
        }
        IntegralImage { width, height, sums }
    }

    /// Source image width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Source image height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Sum over the axis-aligned box with top-left `(x, y)` and size
    /// `w × h`. Boxes are clipped to the image, so out-of-range queries are
    /// safe (SURF samples filters that overhang the border).
    pub fn box_sum(&self, x: i64, y: i64, w: i64, h: i64) -> f64 {
        if w <= 0 || h <= 0 {
            return 0.0;
        }
        let x0 = x.clamp(0, self.width as i64) as usize;
        let y0 = y.clamp(0, self.height as i64) as usize;
        let x1 = (x + w).clamp(0, self.width as i64) as usize;
        let y1 = (y + h).clamp(0, self.height as i64) as usize;
        if x1 <= x0 || y1 <= y0 {
            return 0.0;
        }
        let w1 = self.width as usize + 1;
        self.sums[y1 * w1 + x1] - self.sums[y0 * w1 + x1] - self.sums[y1 * w1 + x0]
            + self.sums[y0 * w1 + x0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_image(w: u32, h: u32) -> GrayImage {
        let mut img = GrayImage::new(w, h);
        for y in 0..h {
            for x in 0..w {
                img.put(x, y, ((x + y * w) % 251) as u8);
            }
        }
        img
    }

    fn brute_sum(img: &GrayImage, x: i64, y: i64, w: i64, h: i64) -> f64 {
        let mut acc = 0.0;
        for yy in y.max(0)..(y + h).min(img.height() as i64) {
            for xx in x.max(0)..(x + w).min(img.width() as i64) {
                acc += img.get(xx as u32, yy as u32) as f64;
            }
        }
        acc
    }

    #[test]
    fn matches_brute_force() {
        let img = counting_image(13, 9);
        let ii = IntegralImage::from_gray(&img);
        for &(x, y, w, h) in &[(0i64, 0i64, 13i64, 9i64), (2, 3, 4, 5), (5, 5, 1, 1), (12, 8, 1, 1)]
        {
            assert_eq!(ii.box_sum(x, y, w, h), brute_sum(&img, x, y, w, h));
        }
    }

    #[test]
    fn clips_out_of_range_queries() {
        let img = counting_image(8, 8);
        let ii = IntegralImage::from_gray(&img);
        assert_eq!(ii.box_sum(-3, -3, 5, 5), brute_sum(&img, -3, -3, 5, 5));
        assert_eq!(ii.box_sum(6, 6, 10, 10), brute_sum(&img, 6, 6, 10, 10));
        assert_eq!(ii.box_sum(100, 100, 5, 5), 0.0);
    }

    #[test]
    fn degenerate_boxes_are_zero() {
        let ii = IntegralImage::from_gray(&counting_image(4, 4));
        assert_eq!(ii.box_sum(1, 1, 0, 3), 0.0);
        assert_eq!(ii.box_sum(1, 1, 3, -1), 0.0);
    }

    #[test]
    fn from_f32_agrees_with_from_gray() {
        let img = counting_image(6, 5);
        let a = IntegralImage::from_gray(&img);
        let b = IntegralImage::from_f32(&img.to_f32());
        assert_eq!(a.box_sum(1, 1, 4, 3), b.box_sum(1, 1, 4, 3));
    }
}
