//! NaN-quarantine float comparators.
//!
//! Scores, distances and responses flow through many `sort_by` /
//! `min_by` / `max_by` sites across the workspace. `partial_cmp` +
//! `expect` aborts the whole batch the first time a degenerate crop
//! produces a NaN; these helpers implement the workspace NaN policy
//! instead:
//!
//! * comparisons are **total** (never panic),
//! * NaN values are **quarantined**: they rank after every real number
//!   in whichever direction the site sorts, so a NaN score can never
//!   win an argmin/argmax or displace a real candidate,
//! * equal values (including `-0.0` vs `0.0`) compare `Equal`, so
//!   stable sorts keep their pre-existing order and non-degenerate
//!   outputs stay byte-identical to the `partial_cmp` era.
//!
//! Non-NaN, non-equal values defer to [`f64::total_cmp`] /
//! [`f32::total_cmp`].

use std::cmp::Ordering;

macro_rules! nan_cmp_impls {
    ($asc:ident, $desc:ident, $first:ident, $t:ty) => {
        /// Ascending order; NaN sorts after every real value.
        #[inline]
        pub fn $asc(a: $t, b: $t) -> Ordering {
            match (a.is_nan(), b.is_nan()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (false, false) => {
                    if a == b {
                        Ordering::Equal
                    } else {
                        a.total_cmp(&b)
                    }
                }
            }
        }

        /// Descending order; NaN still sorts after every real value.
        #[inline]
        pub fn $desc(a: $t, b: $t) -> Ordering {
            match (a.is_nan(), b.is_nan()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (false, false) => {
                    if a == b {
                        Ordering::Equal
                    } else {
                        b.total_cmp(&a)
                    }
                }
            }
        }

        /// Ascending order; NaN sorts *before* every real value — for
        /// `max_by` sites, where the quarantine direction flips (the
        /// maximum under this ordering is never NaN).
        #[inline]
        pub fn $first(a: $t, b: $t) -> Ordering {
            match (a.is_nan(), b.is_nan()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Less,
                (false, true) => Ordering::Greater,
                (false, false) => {
                    if a == b {
                        Ordering::Equal
                    } else {
                        a.total_cmp(&b)
                    }
                }
            }
        }
    };
}

nan_cmp_impls!(nan_last_f64, nan_last_desc_f64, nan_first_f64, f64);
nan_cmp_impls!(nan_last_f32, nan_last_desc_f32, nan_first_f32, f32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_quarantines_nan_at_the_end() {
        let mut v = [3.0f64, f64::NAN, -1.0, f64::INFINITY, 0.0];
        v.sort_by(|a, b| nan_last_f64(*a, *b));
        assert_eq!(&v[..4], &[-1.0, 0.0, 3.0, f64::INFINITY]);
        assert!(v[4].is_nan());
    }

    #[test]
    fn descending_quarantines_nan_at_the_end() {
        let mut v = [f32::NAN, 3.0f32, -1.0, 7.0];
        v.sort_by(|a, b| nan_last_desc_f32(*a, *b));
        assert_eq!(&v[..3], &[7.0, 3.0, -1.0]);
        assert!(v[3].is_nan());
    }

    #[test]
    fn max_by_with_nan_first_never_picks_nan() {
        let v = [1.0f64, f64::NAN, 5.0, f64::NAN, 2.0];
        let m = v.iter().copied().max_by(|a, b| nan_first_f64(*a, *b));
        assert_eq!(m, Some(5.0));
    }

    #[test]
    fn min_by_with_nan_last_never_picks_nan() {
        let v = [f32::NAN, 4.0f32, 2.0, f32::NAN];
        let m = v.iter().copied().min_by(|a, b| nan_last_f32(*a, *b));
        assert_eq!(m, Some(2.0));
    }

    #[test]
    fn signed_zeros_compare_equal_for_stable_sorts() {
        assert_eq!(nan_last_f64(-0.0, 0.0), Ordering::Equal);
        assert_eq!(nan_last_desc_f32(0.0, -0.0), Ordering::Equal);
        assert_eq!(nan_first_f64(0.0, -0.0), Ordering::Equal);
    }

    #[test]
    fn all_nan_inputs_are_well_defined() {
        assert_eq!(nan_last_f64(f64::NAN, f64::NAN), Ordering::Equal);
        let m = [f64::NAN, f64::NAN].iter().copied().max_by(|a, b| nan_first_f64(*a, *b));
        assert!(m.is_some_and(f64::is_nan));
    }

    #[test]
    fn agrees_with_partial_cmp_on_real_values() {
        let vals = [-3.5f64, -0.0, 0.0, 1.0, f64::INFINITY, f64::NEG_INFINITY];
        for &a in &vals {
            for &b in &vals {
                let expected = if a == b { Ordering::Equal } else { a.partial_cmp(&b).unwrap() };
                assert_eq!(nan_last_f64(a, b), expected, "{a} vs {b}");
                assert_eq!(nan_first_f64(a, b), expected, "{a} vs {b}");
            }
        }
    }
}
