// Known-bad: computed slice index; the literal index below is exempt.
pub fn pick(v: &[u32], i: usize) -> u32 {
    v[i + 1]
}

pub fn head(v: &[u32; 4]) -> u32 {
    v[0] // single integer-literal index: fixed-offset access, exempt
}
