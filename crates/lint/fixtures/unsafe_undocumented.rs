// Known-bad: unsafe block, fn and impl all missing SAFETY comments.
pub fn read_first(v: &[u32]) -> u32 {
    unsafe { *v.as_ptr() }
}

pub unsafe fn raw_add(p: *const u32, i: usize) -> *const u32 {
    p.wrapping_add(i)
}

pub struct Wrapper(*const u32);

unsafe impl Send for Wrapper {}
