// Clean: every violation sits in test-gated code, which the strict
// rules exempt.
pub fn lib_code(x: u32) -> u32 {
    x + 1
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Result<u32, ()> = Ok(3);
        assert_eq!(v.unwrap(), 3);
        let mut m = HashMap::new();
        m.insert("k", 1.0_f64);
        assert!(m["k"] == 1.0);
    }
}

#[test]
fn bare_test_fn_is_exempt_too() {
    let v = vec![1, 2, 3];
    let i = 2;
    assert_eq!(v[i], 3);
}
