// Known-bad: the directive does not parse (no parentheses), which is
// itself a diagnostic so broken allows never silently rot.
pub fn f() {}
// taor-lint: allow panic::unwrap — missing parens
pub fn g() {}
