// Fixture: a justified allow waives a deliberate best-effort discard.
fn run(tx: std::sync::mpsc::Sender<u32>) {
    // taor-lint: allow(err::swallowed-result) — receiver gone means the
    // client hung up; there is nobody left to tell.
    let _ = tx.send(1);
}
