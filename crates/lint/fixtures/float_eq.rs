// Known-bad: exact float equality against a literal.
pub fn is_unit(x: f64) -> bool {
    x == 1.0
}

pub fn nonzero(x: f32) -> bool {
    0.0 != x
}
