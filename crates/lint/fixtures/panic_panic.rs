// Known-bad: explicit panic! in library code.
pub fn check(x: i32) {
    if x < 0 {
        panic!("negative input {x}");
    }
}
