// Known-bad: unwrap on a Result in library code.
pub fn parse(s: &str) -> u32 {
    s.parse().unwrap()
}
