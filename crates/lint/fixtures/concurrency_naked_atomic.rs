// Fixture: reaching std atomics directly instead of through the
// taor_model::sync shim. Both the `use` and the inline path fire (one
// diagnostic per line); the test-gated use is exempt.
use std::sync::atomic::{AtomicUsize, Ordering};

fn f() -> usize {
    let n = std::sync::atomic::AtomicUsize::new(0);
    // Ordering::Relaxed — fixture comment so atomics::undocumented
    // stays quiet and the naked-atomic finding is isolated.
    n.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        use std::sync::atomic::AtomicBool;
        let _b = AtomicBool::new(false);
    }
}
