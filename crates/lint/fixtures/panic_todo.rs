// Known-bad: todo!/unimplemented! left in library code.
pub fn later() -> u32 {
    todo!("write this")
}

pub fn never() -> u32 {
    unimplemented!()
}
