// Known-bad: NaN-unsafe comparator; route through taor_imgproc::cmp.
pub fn sort_scores(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}
