// taor-lint: allow(panic::index) — dense kernel fixture: every index below is loop-bounded
// A header directive covers the whole file for the named rule only:
// the unwrap at the bottom must still be reported.
pub fn sum(v: &[u32]) -> u32 {
    let mut acc = 0;
    for i in 0..v.len() {
        acc += v[i];
    }
    acc
}

pub fn parse(s: &str) -> u32 {
    s.parse().unwrap()
}
