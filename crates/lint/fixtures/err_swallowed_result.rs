// Fixture: discarding Results. The first two `let _ =` statements
// swallow errors (builtin `send`, builtin `join`); the third propagates
// with `?`; the fourth discards a non-call; the fifth calls a local
// Result-returning fn (caught via the workspace table — lint_source
// collects it from this same file).
fn local_fallible() -> Result<u32, String> {
    Ok(1)
}

fn run(tx: std::sync::mpsc::Sender<u32>, h: std::thread::JoinHandle<()>) -> Result<(), String> {
    let _ = tx.send(1);
    let _ = h.join();
    let _ = local_fallible()?;
    let value = 7;
    let _ = value;
    let _ = local_fallible();
    Ok(())
}
