// Known-bad: wall-clock reads in pipeline code.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u64 {
    let _t = Instant::now();
    match SystemTime::now().duration_since(SystemTime::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
