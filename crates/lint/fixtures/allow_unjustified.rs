// Known-bad: a justification-free allow is reported and suppresses
// nothing.
pub fn parse(s: &str) -> u32 {
    s.parse().unwrap() // taor-lint: allow(panic::unwrap)
}
