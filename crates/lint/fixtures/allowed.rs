// Violations identical to the known-bad fixtures, each suppressed by a
// justified allow directive; this file must lint clean.
pub fn parse(s: &str) -> u32 {
    s.parse().unwrap() // taor-lint: allow(panic::unwrap) — input validated by the caller's grammar
}

pub fn pick(v: &[u32], i: usize) -> u32 {
    // taor-lint: allow(panic::index) — i is bounded by the loop above
    v[i]
}

pub fn is_unit(x: f64) -> bool {
    x == 1.0 // taor-lint: allow(float::eq) — exact sentinel comparison
}

pub fn family(s: &str) -> u32 {
    s.parse().expect("checked") // taor-lint: allow(panic) — family allow covers expect too
}
