// Known-bad: Relaxed write publishing a completion flag. The comment
// below does NOT rescue it — relaxed-handoff is an error even when
// documented, because the consumer can see the flag before the data.
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn publish(finished: &AtomicUsize, n: usize) {
    // Ordering::Relaxed — (wrongly) claimed fine because it is atomic.
    finished.store(n, Ordering::Relaxed);
}
