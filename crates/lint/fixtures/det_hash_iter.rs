// Known-bad: HashMap/HashSet in result-producing library code.
use std::collections::{HashMap, HashSet};

pub fn tally(names: &[&str]) -> Vec<(String, usize)> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for n in names {
        *counts.entry((*n).to_string()).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

pub fn distinct(xs: &[u32]) -> usize {
    xs.iter().collect::<HashSet<_>>().len()
}
