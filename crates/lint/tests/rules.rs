//! Fixture corpus tests: every rule family is proven to fire on a
//! known-bad snippet, the allow grammar is proven to suppress (and to
//! report its own abuse), and the workspace itself is proven clean.
//!
//! Fixtures live in `crates/lint/fixtures/` — a directory the engine's
//! walker deliberately skips, so the corpus never pollutes the CI gate.

use taor_lint::{lint_source, lint_workspace, Diagnostic};

/// Lint a fixture the way the engine lints strict library code.
fn fixture(name: &str) -> Vec<Diagnostic> {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {path}: {e}"));
    lint_source(name, &src, true, false)
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule.as_str()).collect()
}

#[track_caller]
fn assert_fires(name: &str, rule: &str, times: usize) {
    let diags = fixture(name);
    let hits = diags.iter().filter(|d| d.rule == rule).count();
    assert_eq!(hits, times, "{name}: expected {rule} x{times}, got {:?}", rules_of(&diags));
}

// ---- panic family ----------------------------------------------------

#[test]
fn panic_unwrap_fires() {
    assert_fires("panic_unwrap.rs", "panic::unwrap", 1);
}

#[test]
fn panic_expect_fires() {
    assert_fires("panic_expect.rs", "panic::expect", 1);
}

#[test]
fn panic_panic_fires() {
    assert_fires("panic_panic.rs", "panic::panic", 1);
}

#[test]
fn panic_todo_fires_for_both_macros() {
    assert_fires("panic_todo.rs", "panic::todo", 2);
}

#[test]
fn panic_index_fires_on_computed_but_not_literal_index() {
    // `v[i + 1]` fires; `v[0]` is the exempt fixed-offset form.
    assert_fires("panic_index.rs", "panic::index", 1);
}

// ---- float family ----------------------------------------------------

#[test]
fn float_partial_cmp_fires() {
    assert_fires("float_partial_cmp.rs", "float::partial-cmp", 1);
}

#[test]
fn float_eq_fires_on_both_operand_orders() {
    // `x == 1.0` and `0.0 != x`.
    assert_fires("float_eq.rs", "float::eq", 2);
}

// ---- determinism family ----------------------------------------------

#[test]
fn det_hash_iter_fires_on_map_and_set() {
    let diags = fixture("det_hash_iter.rs");
    let hits = diags.iter().filter(|d| d.rule == "det::hash-iter").count();
    // The `use` line plus every use site — at least one HashMap and one
    // HashSet mention must be flagged.
    assert!(hits >= 2, "expected >=2 det::hash-iter, got {:?}", rules_of(&diags));
}

#[test]
fn det_wall_clock_fires_on_instant_and_system_time() {
    let diags = fixture("det_wall_clock.rs");
    let hits = diags.iter().filter(|d| d.rule == "det::wall-clock").count();
    assert!(hits >= 2, "expected >=2 det::wall-clock, got {:?}", rules_of(&diags));
}

// ---- unsafe family ---------------------------------------------------

#[test]
fn unsafe_undocumented_fires_for_block_fn_and_impl() {
    assert_fires("unsafe_undocumented.rs", "unsafe::undocumented", 3);
}

// ---- atomics family --------------------------------------------------

#[test]
fn atomics_undocumented_fires() {
    assert_fires("atomics_undocumented.rs", "atomics::undocumented", 1);
}

#[test]
fn atomics_relaxed_handoff_fires_even_when_commented() {
    let diags = fixture("atomics_relaxed_handoff.rs");
    assert!(
        diags.iter().any(|d| d.rule == "atomics::relaxed-handoff"),
        "relaxed-handoff must fire despite the justifying comment: {:?}",
        rules_of(&diags)
    );
    // The comment satisfies `atomics::undocumented`, so only the
    // hand-off rule remains — a Relaxed latch release can never be
    // talked into correctness.
    assert!(!diags.iter().any(|d| d.rule == "atomics::undocumented"));
}

// ---- concurrency family ----------------------------------------------

#[test]
fn concurrency_naked_atomic_fires_outside_tests_only() {
    // The `use` line and the inline path fire; the `#[cfg(test)]` use is
    // exempt.
    assert_fires("concurrency_naked_atomic.rs", "concurrency::naked-atomic", 2);
}

// ---- err family ------------------------------------------------------

#[test]
fn err_swallowed_result_fires_on_builtin_and_workspace_fns() {
    // `send` and `join` from the builtin table, `local_fallible` from
    // the collected workspace table; the `?`-propagating and no-call
    // discards stay quiet.
    assert_fires("err_swallowed_result.rs", "err::swallowed-result", 3);
}

#[test]
fn err_swallowed_result_respects_justified_allow() {
    let diags = fixture("err_swallowed_result_allowed.rs");
    assert!(diags.is_empty(), "justified allow must suppress, got {:?}", rules_of(&diags));
}

#[test]
fn err_swallowed_result_uses_cross_file_table() {
    // A fn declared in "another file" feeds the table that flags a
    // discard here — the two-pass engine contract, driven through
    // lint_source_with.
    let table: std::collections::BTreeSet<String> =
        ["truncated_body".to_string()].into_iter().collect();
    let src = "fn f(s: &S) { let _ = truncated_body(s); }";
    let diags = taor_lint::lint_source_with("x.rs", src, true, false, &table);
    assert!(
        diags.iter().any(|d| d.rule == "err::swallowed-result"),
        "cross-file Result fn must be flagged, got {:?}",
        rules_of(&diags)
    );
}

// ---- allow grammar ---------------------------------------------------

#[test]
fn justified_allows_suppress_everything() {
    let diags = fixture("allowed.rs");
    assert!(diags.is_empty(), "allowed.rs must lint clean, got {:?}", rules_of(&diags));
}

#[test]
fn malformed_allow_is_its_own_diagnostic() {
    assert_fires("allow_malformed.rs", "allow::malformed", 1);
}

#[test]
fn unjustified_allow_is_reported_and_still_suppresses_nothing_extra() {
    let diags = fixture("allow_unjustified.rs");
    assert!(
        diags.iter().any(|d| d.rule == "allow::unjustified"),
        "missing allow::unjustified in {:?}",
        rules_of(&diags)
    );
}

#[test]
fn file_wide_allow_covers_only_the_named_rule() {
    let diags = fixture("file_wide_allow.rs");
    assert!(
        !diags.iter().any(|d| d.rule == "panic::index"),
        "header allow must suppress every index in the file: {:?}",
        rules_of(&diags)
    );
    assert!(
        diags.iter().any(|d| d.rule == "panic::unwrap"),
        "header allow must not leak onto other rules: {:?}",
        rules_of(&diags)
    );
}

// ---- test-region exemption -------------------------------------------

#[test]
fn test_gated_code_is_exempt_from_strict_rules() {
    let diags = fixture("test_exempt.rs");
    assert!(diags.is_empty(), "test_exempt.rs must lint clean, got {:?}", rules_of(&diags));
}

// ---- the gate itself -------------------------------------------------

/// The CI contract: the workspace this crate ships in has zero
/// unallowed diagnostics. Run from the crate dir, the workspace root is
/// two levels up.
#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf();
    let diags = lint_workspace(&root).expect("workspace walk failed");
    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    assert!(diags.is_empty(), "workspace not lint-clean:\n{}", rendered.join("\n"));
}
