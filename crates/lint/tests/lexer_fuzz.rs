//! Property-based fuzzing of the lexer, the foundation every rule and
//! the statement-level parse stand on.
//!
//! Three contracts:
//!
//! * total: `lex` returns on *any* input — arbitrary bytes run through
//!   lossy UTF-8, and adversarial token soup (unterminated strings and
//!   block comments included) — without panicking;
//! * structurally sound: token lines are 1-based and non-decreasing,
//!   comment spans are ordered, and the test-region mask round-trips as
//!   exactly one entry per token;
//! * stable: re-lexing the space-joined token texts reproduces the same
//!   (kind, text) sequence — lexing a lexer's own output is a fixpoint,
//!   so no token ever straddles a boundary the lexer itself emitted.

use proptest::prelude::*;
use taor_lint::lexer::{lex, TokenKind};
use taor_lint::regions::test_mask;
use taor_lint::stmt;

/// Fragments biased toward the lexer's edge cases: multi-char
/// operators, raw/escaped/unterminated literals, lifetimes vs chars,
/// comment forms, and plain idents/numbers.
const PALETTE: &[&str] = &[
    "fn",
    "let",
    "_",
    "ident_7",
    "r",
    "b",
    "Result",
    "Ordering",
    "=",
    "==",
    "=>",
    "::",
    "->",
    "..",
    "..=",
    "...",
    "<<=",
    ">>=",
    "<<",
    ">>",
    "&&",
    "||",
    "<",
    ">",
    "&",
    "|",
    "+",
    "-",
    "*",
    "/",
    "#",
    "!",
    "?",
    ";",
    ",",
    ".",
    ":",
    "[",
    "]",
    "(",
    ")",
    "{",
    "}",
    "0",
    "42",
    "0x1f",
    "1_000",
    "1.5",
    "2e10",
    "1.0e-3",
    "\"str\"",
    "\"esc\\\"aped\"",
    "\"multi\nline\"",
    "\"unterminated",
    "'c'",
    "'\\n'",
    "'a",
    "'static",
    "// line comment",
    "//! doc",
    "/* block */",
    "/* unterminated",
    "/* nested /* maybe */",
    "\n",
    "\t",
    "タグ",
    "émoji_🦀",
];

fn soup(indices: &[usize]) -> String {
    let mut s = String::new();
    for &i in indices {
        s.push_str(PALETTE[i % PALETTE.len()]);
        s.push(' ');
    }
    s
}

fn check_invariants(src: &str) {
    let out = lex(src);
    let lines = src.lines().count().max(1) as u32;
    let mut prev = 1u32;
    for t in &out.tokens {
        assert!(t.line >= 1 && t.line <= lines, "token line {} out of [1, {lines}]", t.line);
        assert!(t.line >= prev, "token lines must be non-decreasing");
        // Str/Char literals keep no text (rules only need their kind);
        // everything else must carry its spelling.
        if !matches!(t.kind, TokenKind::Str | TokenKind::Char) {
            assert!(!t.text.is_empty(), "empty {:?} token text", t.kind);
        }
        prev = t.line;
    }
    for c in &out.comments {
        assert!(c.line >= 1 && c.line <= c.end_line, "comment span {}..{}", c.line, c.end_line);
    }
    // Region-mask round trip: one mask entry per token, always.
    assert_eq!(test_mask(&out.tokens).len(), out.tokens.len());
    // The statement parse is total over whatever the lexer produced.
    let _ = stmt::let_underscores(&out.tokens);
    let _ = stmt::result_fns(&out.tokens);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let src = String::from_utf8_lossy(&bytes);
        check_invariants(&src);
    }

    #[test]
    fn token_soup_never_panics(indices in proptest::collection::vec(0usize..64, 0..96)) {
        check_invariants(&soup(&indices));
    }

    #[test]
    fn relexing_own_output_is_a_fixpoint(indices in proptest::collection::vec(0usize..64, 0..96)) {
        let first = lex(&soup(&indices));
        // Str/Char tokens carry no text; stand in a canonical literal
        // so the joined source re-lexes to the same (kind, "") pair.
        let joined: String = first
            .tokens
            .iter()
            .map(|t| match t.kind {
                TokenKind::Str => "\"s\" ".to_string(),
                TokenKind::Char => "'c' ".to_string(),
                _ => format!("{} ", t.text),
            })
            .collect();
        let second = lex(&joined);
        prop_assert_eq!(first.tokens.len(), second.tokens.len(), "token count changed");
        for (a, b) in first.tokens.iter().zip(&second.tokens) {
            prop_assert_eq!(a.kind, b.kind, "kind changed for {:?}", &a.text);
            prop_assert_eq!(&a.text, &b.text);
        }
    }

    #[test]
    fn lexing_is_deterministic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let src = String::from_utf8_lossy(&bytes);
        let a = lex(&src);
        let b = lex(&src);
        prop_assert_eq!(a.tokens.len(), b.tokens.len());
        for (x, y) in a.tokens.iter().zip(&b.tokens) {
            prop_assert_eq!(x.kind, y.kind);
            prop_assert_eq!(&x.text, &y.text);
            prop_assert_eq!(x.line, y.line);
        }
    }
}

/// Deliberate regression pins outside the random walk: the inputs most
/// likely to break a hand-written lexer, as plain unit cases so a
/// failure names the culprit directly.
#[test]
fn adversarial_pins() {
    for src in [
        "",
        " ",
        "\n\n\n",
        "\"",
        "'",
        "r\"",
        "/*",
        "/**/",
        "//",
        "0.",
        "'a'b",
        "x<<<y",
        "a..=..b",
        "let _ = ;",
        "fn (",
        "\u{0}\u{1}\u{2}",
        "🦀🦀🦀",
    ] {
        check_invariants(src);
    }
    // One concrete fixpoint check with every operator glued together.
    let ops = "<<= >>= ..= ... == != <= >= && || :: -> => .. += -= *= /= %= ^= &= |= << >>";
    let out = lex(ops);
    assert!(out.tokens.iter().all(|t| t.kind == TokenKind::Op));
    assert_eq!(out.tokens.len(), ops.split_whitespace().count());
}
