//! Test-region tracking over the token stream.
//!
//! The panic/float/determinism rules exempt test code: anything inside
//! an item annotated `#[cfg(test)]` or `#[test]`. This module computes,
//! for every token, whether it sits inside such an item, by walking the
//! stream once: when a test-gating attribute is seen, the next item
//! body (`{ … }` with balanced braces) is marked as test code.
//!
//! `#[cfg(not(test))]` and `#[cfg(feature = "test-utils")]` are *not*
//! test-gating: the attribute must be exactly `#[test]` or
//! `#[cfg(test)]` (whitespace-insensitive).

use crate::lexer::Token;

/// For each token index, whether it is inside a test-gated item.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text == "#" && tokens.get(i + 1).is_some_and(|t| t.text == "[") {
            let (attr_end, is_test) = scan_attribute(tokens, i + 1);
            if is_test {
                mark_next_item(tokens, attr_end, &mut mask);
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    mask
}

/// From the `[` at `open`, find the matching `]` and decide whether the
/// attribute is test-gating. Returns (index past `]`, is_test).
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut body = String::new();
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    let is_test = body == "test" || body == "cfg(test)";
                    return (i + 1, is_test);
                }
            }
            _ if depth > 0 => body.push_str(&t.text),
            _ => {}
        }
        i += 1;
    }
    (tokens.len(), false)
}

/// Mark the body of the item that follows a test attribute: skip any
/// further attributes, then everything from the first `{` to its match.
/// A `;` before any `{` means the item has no body (nothing to mark).
fn mark_next_item(tokens: &[Token], mut i: usize, mask: &mut [bool]) {
    while i < tokens.len() {
        let t = &tokens[i];
        if t.text == "#" && tokens.get(i + 1).is_some_and(|t| t.text == "[") {
            let (end, _) = scan_attribute(tokens, i + 1);
            i = end;
            continue;
        }
        if t.text == ";" {
            return;
        }
        if t.text == "{" {
            let mut depth = 0usize;
            while i < tokens.len() {
                match tokens[i].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        mask[i] = true;
                        if depth == 0 {
                            return;
                        }
                    }
                    _ => {}
                }
                mask[i] = true;
                i += 1;
            }
            return;
        }
        mask[i] = true; // the item's signature is test code too
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, TokenKind};

    fn masked_idents(src: &str) -> Vec<(String, bool)> {
        let out = lex(src);
        let mask = test_mask(&out.tokens);
        out.tokens
            .iter()
            .zip(&mask)
            .filter(|(t, _)| t.kind == TokenKind::Ident)
            .map(|(t, &m)| (t.text.clone(), m))
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let v = masked_idents("fn lib() {} #[cfg(test)] mod tests { fn t() { x.unwrap(); } }");
        assert!(v.iter().any(|(s, m)| s == "lib" && !m));
        assert!(v.iter().any(|(s, m)| s == "unwrap" && *m));
    }

    #[test]
    fn test_fn_is_masked_but_neighbours_are_not() {
        let v =
            masked_idents("fn a() { before(); } #[test] fn t() { inside(); } fn b() { after(); }");
        assert!(v.iter().any(|(s, m)| s == "before" && !m));
        assert!(v.iter().any(|(s, m)| s == "inside" && *m));
        assert!(v.iter().any(|(s, m)| s == "after" && !m));
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let v = masked_idents("#[cfg(not(test))] fn a() { live(); }");
        assert!(v.iter().any(|(s, m)| s == "live" && !m));
    }

    #[test]
    fn stacked_attributes_still_find_the_body() {
        let v = masked_idents("#[test]\n#[ignore]\nfn t() { inside(); }");
        assert!(v.iter().any(|(s, m)| s == "inside" && *m));
    }
}
