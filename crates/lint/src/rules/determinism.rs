//! `det::*` — byte-identical outputs at any thread-pool width.
//!
//! The repro harness pins quick-mode stdout across `TAOR_THREADS`
//! settings; these rules remove the two classic sources of run-to-run
//! drift from result-producing library code:
//!
//! * `det::hash-iter` — `HashMap` / `HashSet` in library code. std's
//!   `RandomState` reseeds per process, so *any* iteration order that
//!   reaches an output (vote tallies, grouped means, bucket dumps)
//!   differs between runs. Use `BTreeMap`/`BTreeSet` or sort extracted
//!   keys. Flagged at the type name, not the iteration site: a map that
//!   is never iterated is one refactor away from being iterated.
//! * `det::wall-clock` — `Instant` / `SystemTime` in library code.
//!   Pipeline results must be a function of inputs, not of when they
//!   ran; timing belongs in the bench harness.

use super::RuleCtx;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;

pub fn run(ctx: &RuleCtx<'_>, diags: &mut Vec<Diagnostic>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if ctx.is_test(i) || t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" => diags.push(Diagnostic::new(
                ctx.file,
                t.line,
                "det::hash-iter",
                format!("{} iteration order is randomised per process; use BTreeMap/BTreeSet or sorted keys", t.text),
            )),
            "Instant" | "SystemTime" => diags.push(Diagnostic::new(
                ctx.file,
                t.line,
                "det::wall-clock",
                format!("{} makes pipeline output time-dependent; timing belongs in the bench harness", t.text),
            )),
            _ => {}
        }
    }
}
