//! `panic::*` — panic-freedom of the inference library code.
//!
//! The `try_*` pipelines promise to degrade instead of aborting on bad
//! data (DESIGN.md §7). Any reachable panic in non-test library code
//! breaks that promise, so the family flags the constructs that panic
//! on data, not on programmer error:
//!
//! * `panic::unwrap` — `.unwrap()` / `.unwrap_err()`,
//! * `panic::expect` — `.expect(…)` / `.expect_err(…)`,
//! * `panic::panic` — `panic!(…)`,
//! * `panic::todo` — `todo!(…)` / `unimplemented!(…)`,
//! * `panic::index` — `expr[…]` indexing/slicing with a non-literal
//!   index. A single integer-literal index (`px[0]`) is exempt: that is
//!   fixed-offset access into known-layout arrays, the dominant safe
//!   pattern; data-dependent panics live in computed indices.
//!
//! `assert!`-style macros are deliberately not flagged: they state
//! invariants and are the sanctioned way to turn a programmer error
//! into a loud failure.

use super::{prev, RuleCtx};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;

/// Keywords that can directly precede `[` starting an array expression
/// or pattern rather than an indexing operation.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "if", "while", "match", "return", "in", "mut", "ref", "else", "break", "loop", "move", "as",
    "dyn", "impl", "where", "for", "const", "static", "let", "continue", "yield",
];

pub fn run(ctx: &RuleCtx<'_>, diags: &mut Vec<Diagnostic>) {
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.is_test(i) {
            continue;
        }
        match t.kind {
            TokenKind::Ident => {
                let followed_by_bang = toks.get(i + 1).is_some_and(|n| n.text == "!");
                let after_dot = prev(toks, i).is_some_and(|p| p.text == ".");
                match t.text.as_str() {
                    "unwrap" | "unwrap_err" if after_dot => diags.push(Diagnostic::new(
                        ctx.file,
                        t.line,
                        "panic::unwrap",
                        format!(".{}() panics on the error path; bubble a Result instead", t.text),
                    )),
                    "expect" | "expect_err" if after_dot => diags.push(Diagnostic::new(
                        ctx.file,
                        t.line,
                        "panic::expect",
                        format!(".{}(…) panics on the error path; bubble a Result instead", t.text),
                    )),
                    "panic" if followed_by_bang => diags.push(Diagnostic::new(
                        ctx.file,
                        t.line,
                        "panic::panic",
                        "panic! in library code; return an Error instead",
                    )),
                    "todo" | "unimplemented" if followed_by_bang => diags.push(Diagnostic::new(
                        ctx.file,
                        t.line,
                        "panic::todo",
                        format!("{}! must not ship in library code", t.text),
                    )),
                    _ => {}
                }
            }
            TokenKind::Punct
                if t.text == "[" && is_indexing(ctx, i) && !is_literal_index(ctx, i) =>
            {
                diags.push(Diagnostic::new(
                    ctx.file,
                    t.line,
                    "panic::index",
                    "slice indexing panics out of bounds; use .get()/iterators, or \
                     allow-list loop-bounded kernel code",
                ));
            }
            _ => {}
        }
    }
}

/// `[` is an index operation when it follows a value-producing token:
/// an identifier (not a keyword), `)`, `]`, or a literal. Everything
/// else (`#[attr]`, array types `[T; N]`, array literals after `=`/`(`,
/// macro brackets after `!`) is not.
fn is_indexing(ctx: &RuleCtx<'_>, i: usize) -> bool {
    let Some(p) = prev(ctx.tokens, i) else { return false };
    match p.kind {
        TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
        TokenKind::Punct => p.text == ")" || p.text == "]",
        TokenKind::Str | TokenKind::Int | TokenKind::Float => true,
        _ => false,
    }
}

/// `[<int literal>]` exactly.
fn is_literal_index(ctx: &RuleCtx<'_>, i: usize) -> bool {
    super::is_kind(ctx.tokens.get(i + 1), TokenKind::Int)
        && ctx.tokens.get(i + 2).is_some_and(|t| t.text == "]")
}
