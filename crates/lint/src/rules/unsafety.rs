//! `unsafe::*` — a small, audited unsafe surface.
//!
//! The workspace's entire unsafe budget lives in two places: the AVX2
//! GEMM microkernel (`taor-nn`) and the vendored thread pool
//! (`vendor/rayon`). These rules keep that surface audited and prevent
//! it from growing silently:
//!
//! * `unsafe::undocumented` — every `unsafe` block, fn, impl or trait
//!   must be justified: a `// SAFETY:` comment trailing or directly
//!   above it, or (for declarations) a `# Safety` doc section.
//! * `unsafe::missing-forbid` — a crate with zero `unsafe` tokens must
//!   pin that state with `#![forbid(unsafe_code)]` at its root, so new
//!   unsafe cannot appear without a deliberate attribute change.
//! * `unsafe::missing-deny` — a crate that does contain unsafe must
//!   carry `#![deny(unsafe_op_in_unsafe_fn)]`, so every unsafe
//!   operation sits in an explicit (and documentable) `unsafe {}`
//!   block even inside `unsafe fn`s.
//!
//! The crate-level rules run in the engine (they need the whole file
//! set); this module handles the per-site documentation rule.

use super::RuleCtx;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;

/// Does a comment text justify an unsafe site?
pub fn is_safety_comment(text: &str) -> bool {
    text.contains("SAFETY:") || text.contains("# Safety")
}

pub fn run(ctx: &RuleCtx<'_>, diags: &mut Vec<Diagnostic>) {
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "unsafe" {
            continue;
        }
        let what = match toks.get(i + 1).map(|n| n.text.as_str()) {
            Some("{") => "block",
            Some("fn") => "fn",
            Some("impl") => "impl",
            Some("trait") => "trait",
            // `unsafe` in other positions (e.g. `forbid(unsafe_code)`
            // token text is `unsafe_code`, not `unsafe`) — skip.
            _ => continue,
        };
        if !ctx.has_comment_near(t.line, is_safety_comment) && !next_line_safety(ctx, t.line) {
            diags.push(Diagnostic::new(
                ctx.file,
                t.line,
                "unsafe::undocumented",
                format!("unsafe {what} without a `// SAFETY:` justification"),
            ));
        }
    }
}

/// Multi-line `unsafe {` bodies may open with the justification as
/// their first line; accept a SAFETY comment on the line right after.
fn next_line_safety(ctx: &RuleCtx<'_>, line: u32) -> bool {
    ctx.comments.iter().any(|c| c.line == line + 1 && is_safety_comment(&c.text))
}
