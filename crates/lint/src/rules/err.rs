//! `err::*` — errors are handled, propagated, or visibly waived; never
//! silently dropped.
//!
//! * `err::swallowed-result` — a `let _ = …;` statement whose discarded
//!   expression ends in a call to a function known to return `Result`.
//!   "Known" is the union of a std built-in list ([`BUILTIN_RESULT_FNS`])
//!   and the workspace's own `Result`-returning functions, which the
//!   engine collects in a first pass over every file
//!   ([`crate::stmt::result_fns`]) and threads through
//!   [`RuleCtx::result_fns`]. Statements ending in `?` only discard the
//!   success value and are fine; genuine best-effort discards take a
//!   justified allow naming the reason the error does not matter.

use super::RuleCtx;
use crate::diag::Diagnostic;
use crate::stmt;

/// std/library functions returning `Result` that the workspace calls
/// through `let _ =`. Name-based, like the workspace table: a same-named
/// infallible method would false-positive, which a justified allow
/// resolves. Deliberately absent: `write!`/`writeln!` targets — the
/// workspace's fmt-to-`String` writes are infallible, and macro
/// invocations are not calls to [`stmt::let_underscores`] anyway.
pub const BUILTIN_RESULT_FNS: &[&str] = &[
    "flush",
    "join",
    "kill",
    "read_exact",
    "recv",
    "send",
    "set_nonblocking",
    "set_read_timeout",
    "set_write_timeout",
    "shutdown",
    "try_with",
    "wait",
    "write_all",
];

pub fn run(ctx: &RuleCtx<'_>, diags: &mut Vec<Diagnostic>) {
    for lu in stmt::let_underscores(ctx.tokens) {
        if ctx.is_test(lu.index) || lu.propagates {
            continue;
        }
        let Some(call) = &lu.call else { continue };
        let fallible = BUILTIN_RESULT_FNS.contains(&call.as_str()) || ctx.result_fns.contains(call);
        if fallible {
            diags.push(Diagnostic::new(
                ctx.file,
                lu.line,
                "err::swallowed-result",
                format!(
                    "`let _ =` discards the Result of `{call}`; \
                     handle it, propagate with `?`, or add a justified allow"
                ),
            ));
        }
    }
}
