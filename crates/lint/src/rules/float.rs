//! `float::*` — NaN-safe float handling.
//!
//! PR 2 replaced every `partial_cmp().expect()` ranking with the
//! NaN-quarantine comparators of `taor_imgproc::cmp`; this family keeps
//! it that way:
//!
//! * `float::partial-cmp` — any `.partial_cmp(` in library code. Sort
//!   comparators built on it either panic (`.expect`) or silently
//!   misorder (`unwrap_or`) the first time a degenerate crop produces a
//!   NaN. Route through `taor_imgproc::cmp::{nan_last_*, nan_first_*}`.
//! * `float::eq` — `==` / `!=` where either operand is a float literal
//!   (`x == 0.0`, `v != 1e-6`). Exact float equality is almost always a
//!   tolerance bug; compare with an epsilon or restructure. (Ident-vs-
//!   ident float comparisons are invisible to a lexical pass; this
//!   catches the literal form, which is the common regression.)

use super::{prev, RuleCtx};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;

pub fn run(ctx: &RuleCtx<'_>, diags: &mut Vec<Diagnostic>) {
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.is_test(i) {
            continue;
        }
        if t.kind == TokenKind::Ident
            && t.text == "partial_cmp"
            && prev(toks, i).is_some_and(|p| p.text == "." || p.text == "::")
        {
            diags.push(Diagnostic::new(
                ctx.file,
                t.line,
                "float::partial-cmp",
                "partial_cmp is NaN-unsafe in comparators; use taor_imgproc::cmp::nan_*",
            ));
        }
        if t.kind == TokenKind::Op && (t.text == "==" || t.text == "!=") {
            let float_operand = super::is_kind(prev(toks, i), TokenKind::Float)
                || super::is_kind(toks.get(i + 1), TokenKind::Float);
            if float_operand {
                diags.push(Diagnostic::new(
                    ctx.file,
                    t.line,
                    "float::eq",
                    format!("exact float {} against a literal; compare with a tolerance", t.text),
                ));
            }
        }
    }
}
