//! `atomics::*` — every memory-ordering choice is a reviewed decision.
//!
//! The thread pool's correctness argument (DESIGN.md §8) leans on three
//! specific `Ordering` choices in `vendor/rayon/src/pool.rs`; the
//! diagnostics ledger adds four more. An ordering silently weakened in
//! a refactor is the nastiest class of bug this workspace can grow, so:
//!
//! * `atomics::undocumented` — every `Ordering::<X>` use site (outside
//!   tests) must carry a comment, trailing or directly above, saying
//!   why that ordering suffices.
//! * `atomics::relaxed-handoff` — `Ordering::Relaxed` on a statement
//!   that publishes completion state is an error even when commented.
//!   Publication variables follow the workspace naming convention
//!   (`finished` / `done` / `ready` / `complete`); releasing a latch
//!   with `Relaxed` lets the consumer observe the flag before the data
//!   it guards.

use super::RuleCtx;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Identifiers that mark a completion/hand-off flag by convention.
const HANDOFF_NAMES: &[&str] = &["finished", "done", "ready", "complete", "published"];

/// Atomic write operations that publish.
const WRITE_OPS: &[&str] =
    &["store", "fetch_add", "fetch_sub", "fetch_or", "fetch_and", "swap", "compare_exchange"];

pub fn run(ctx: &RuleCtx<'_>, diags: &mut Vec<Diagnostic>) {
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.is_test(i) || t.kind != TokenKind::Ident || t.text != "Ordering" {
            continue;
        }
        let Some(op) = toks.get(i + 1) else { continue };
        let Some(variant) = toks.get(i + 2) else { continue };
        if op.text != "::" || !ORDERINGS.contains(&variant.text.as_str()) {
            continue;
        }
        if !ctx.has_comment_near(t.line, |_| true) {
            diags.push(Diagnostic::new(
                ctx.file,
                t.line,
                "atomics::undocumented",
                format!("Ordering::{} without a comment justifying the choice", variant.text),
            ));
        }
        if variant.text == "Relaxed" && is_handoff_line(ctx, t.line) {
            diags.push(Diagnostic::new(
                ctx.file,
                t.line,
                "atomics::relaxed-handoff",
                "Relaxed write to a completion flag cannot release the data it guards; \
                 use Release/AcqRel",
            ));
        }
    }
}

/// The line both names a hand-off flag and performs an atomic write.
fn is_handoff_line(ctx: &RuleCtx<'_>, line: u32) -> bool {
    let mut has_name = false;
    let mut has_write = false;
    for t in ctx.tokens.iter().filter(|t| t.line == line && t.kind == TokenKind::Ident) {
        has_name |= HANDOFF_NAMES.contains(&t.text.as_str());
        has_write |= WRITE_OPS.contains(&t.text.as_str());
    }
    has_name && has_write
}
