//! `concurrency::*` — keep every synchronisation primitive behind the
//! model-checker shim.
//!
//! `taor-model` can only verify interleavings of code it can see:
//! production code must reach atomics, mutexes and condvars through
//! `taor_model::sync`, which compiles to the std types normally and to
//! the instrumented checker types under `--cfg taor_model`. A direct
//! `std::sync::atomic` path bypasses the shim — that code still runs,
//! but the exhaustive pool/serve models silently stop covering it.
//!
//! * `concurrency::naked-atomic` — any `std::sync::atomic` path in
//!   non-test code outside `crates/model` (the shim's own home, which
//!   necessarily names the std types to re-export them).

use super::RuleCtx;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;

pub fn run(ctx: &RuleCtx<'_>, diags: &mut Vec<Diagnostic>) {
    // The shim itself must spell out the std paths it re-exports.
    if ctx.file.starts_with("crates/model/") {
        return;
    }
    let toks = ctx.tokens;
    let mut last_line = 0u32;
    for (i, t) in toks.iter().enumerate() {
        if ctx.is_test(i) || t.kind != TokenKind::Ident || t.text != "std" {
            continue;
        }
        let path_is = |off: usize, text: &str| toks.get(i + off).is_some_and(|t| t.text == text);
        if !(path_is(1, "::") && path_is(2, "sync") && path_is(3, "::") && path_is(4, "atomic")) {
            continue;
        }
        if t.line == last_line {
            continue; // one diagnostic per line, however long the use list
        }
        last_line = t.line;
        diags.push(Diagnostic::new(
            ctx.file,
            t.line,
            "concurrency::naked-atomic",
            "std::sync::atomic bypasses the model-checker shim; \
             import from taor_model::sync instead",
        ));
    }
}
