//! The rule engine: a shared per-file context and the five rule
//! families that run over it.
//!
//! | family | rules | scope |
//! |---|---|---|
//! | `panic` | `unwrap`, `expect`, `panic`, `todo`, `index` | strict library code |
//! | `float` | `partial-cmp`, `eq` | strict library code |
//! | `det` | `hash-iter`, `wall-clock` | strict library code |
//! | `unsafe` | `undocumented`, `missing-forbid`, `missing-deny` | whole workspace |
//! | `atomics` | `undocumented`, `relaxed-handoff` | whole workspace, non-test |
//! | `concurrency` | `naked-atomic` | whole workspace, non-test |
//! | `err` | `swallowed-result` | whole workspace, non-test |
//!
//! "Strict library code" is the non-test portion of
//! `crates/{core,imgproc,features,nn,data}/src`: the result-producing
//! inference paths where a panic, a NaN-partial comparison or a
//! hash-order dependency is a correctness bug, not a style issue.

pub mod atomics;
pub mod concurrency;
pub mod determinism;
pub mod err;
pub mod float;
pub mod panic;
pub mod unsafety;

use crate::diag::Diagnostic;
use crate::lexer::{Comment, Token, TokenKind};
use std::collections::BTreeSet;

/// Everything a rule needs to inspect one file.
pub struct RuleCtx<'a> {
    /// Path label used in diagnostics (workspace-relative).
    pub file: &'a str,
    pub tokens: &'a [Token],
    /// Parallel to `tokens`: inside a `#[cfg(test)]` / `#[test]` item.
    pub test_mask: &'a [bool],
    pub comments: &'a [Comment],
    /// Strict rules (panic/float/det) apply to this file.
    pub strict: bool,
    /// The whole file is test code (under `tests/`, `benches/` or
    /// `examples/`).
    pub all_test: bool,
    /// Names of `Result`-returning functions declared anywhere in the
    /// workspace (engine pass 1); `err::swallowed-result` unions this
    /// with its std built-ins.
    pub result_fns: &'a BTreeSet<String>,
}

impl RuleCtx<'_> {
    /// Is token `i` exempt from strict (non-test-only) rules?
    pub fn is_test(&self, i: usize) -> bool {
        self.all_test || self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// Is there a comment matching `pred` that justifies a construct on
    /// `line`? Accepted positions: trailing on the same line, or in the
    /// contiguous run of comment/attribute-only lines directly above.
    pub fn has_comment_near(&self, line: u32, pred: impl Fn(&str) -> bool) -> bool {
        if self.comments.iter().any(|c| c.line <= line && line <= c.end_line && pred(&c.text)) {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            if let Some(c) = self.comments.iter().find(|c| c.line <= l && l <= c.end_line) {
                if pred(&c.text) {
                    return true;
                }
                l = c.line; // jump to the top of a multi-line comment
                continue;
            }
            // Attribute-only lines (`#[…]`) may sit between the comment
            // and the construct; anything else ends the run.
            let line_tokens: Vec<&Token> = self.tokens.iter().filter(|t| t.line == l).collect();
            if line_tokens.is_empty() {
                return false; // blank line breaks adjacency
            }
            if line_tokens[0].text != "#" {
                return false;
            }
        }
        false
    }
}

/// Run every applicable family over one file.
pub fn run_file(ctx: &RuleCtx<'_>, diags: &mut Vec<Diagnostic>) {
    if ctx.strict {
        panic::run(ctx, diags);
        float::run(ctx, diags);
        determinism::run(ctx, diags);
    }
    unsafety::run(ctx, diags);
    atomics::run(ctx, diags);
    concurrency::run(ctx, diags);
    err::run(ctx, diags);
}

/// Significant-token helper: the token before `i`, if any.
pub(crate) fn prev(tokens: &[Token], i: usize) -> Option<&Token> {
    i.checked_sub(1).and_then(|j| tokens.get(j))
}

pub(crate) fn is_kind(t: Option<&Token>, kind: TokenKind) -> bool {
    t.is_some_and(|t| t.kind == kind)
}
