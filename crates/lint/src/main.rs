//! CLI: `cargo run -p taor-lint -- --workspace` (the CI gate), or pass
//! explicit `.rs` paths to lint them as strict library code.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut json = false;
    let mut github = false;
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--github" => github = true,
            "--root" => root = it.next().map(PathBuf::from),
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            p if !p.starts_with('-') => paths.push(PathBuf::from(p)),
            other => {
                eprintln!("taor-lint: unknown flag `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }
    if !workspace && paths.is_empty() {
        workspace = true; // bare invocation lints the workspace
    }

    let mut diags = Vec::new();
    if workspace {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        let root = root.or_else(|| taor_lint::find_workspace_root(&cwd)).unwrap_or(cwd);
        match taor_lint::lint_workspace(&root) {
            Ok(d) => diags.extend(d),
            Err(e) => {
                eprintln!("taor-lint: failed to walk workspace: {e}");
                return ExitCode::from(2);
            }
        }
    }
    for p in &paths {
        match std::fs::read_to_string(p) {
            Ok(src) => {
                diags.extend(taor_lint::lint_source(&p.to_string_lossy(), &src, true, false));
            }
            Err(e) => {
                eprintln!("taor-lint: cannot read {}: {e}", p.display());
                return ExitCode::from(2);
            }
        }
    }

    for d in &diags {
        if json {
            println!("{}", d.to_json());
        } else if github {
            println!("{}", d.to_github_annotation());
        } else {
            println!("{d}");
        }
    }
    if diags.is_empty() {
        eprintln!("taor-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("taor-lint: {} diagnostic(s)", diags.len());
        ExitCode::FAILURE
    }
}

fn print_help() {
    println!(
        "taor-lint — workspace static analysis for panic-freedom, determinism and unsafe hygiene

USAGE:
    cargo run -p taor-lint -- --workspace          lint the whole workspace (the CI gate)
    cargo run -p taor-lint -- [--root DIR]         override workspace root discovery
    cargo run -p taor-lint -- FILE.rs …            lint files as strict library code

OUTPUT:
    --json      one JSON object per diagnostic (machine consumption)
    --github    GitHub Actions ::error annotations (inline PR comments)

Suppress a finding with a justified allow comment:
    // taor-lint: allow(rule::name) — why this site is sound
Rule families: panic, float, det, unsafe, atomics, concurrency, err
(see DESIGN.md §9)."
    );
}
