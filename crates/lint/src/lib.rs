//! # taor-lint
//!
//! From-scratch workspace static analysis, run as a CI gate:
//! `cargo run -p taor-lint -- --workspace` exits nonzero on any
//! unallowed diagnostic.
//!
//! PRs 2–4 established three invariants by hand — panic-free `try_*`
//! pipelines with NaN quarantine, byte-identical repro stdout at any
//! thread-pool width, and a small audited `unsafe` surface. This crate
//! checks them mechanically so no later change regresses them
//! silently. It is deliberately dependency-free and built in the
//! repo's reimplement-from-scratch style: a hand-written lexer
//! ([`lexer`]) feeds test-region tracking ([`regions`]), a
//! statement-level parse ([`stmt`]), a rule engine ([`rules`]) and a
//! justification-carrying allow-list ([`allow`]); [`engine`] walks the
//! workspace (two passes, so `err::swallowed-result` sees every crate's
//! `Result`-returning functions) and adds the crate-level unsafe gates.
//!
//! See DESIGN.md §9 for the architecture and how to add a rule.

#![forbid(unsafe_code)]

pub mod allow;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod regions;
pub mod rules;
pub mod stmt;

pub use diag::Diagnostic;
pub use engine::{find_workspace_root, lint_source, lint_source_with, lint_workspace};
