//! Hand-written Rust lexer: just enough token structure for the rule
//! engine, with exact handling of the constructs that break naive
//! regex-based linting — raw strings (`r#"…"#`, any hash depth), byte
//! and byte-raw strings, nested block comments, char literals vs.
//! lifetimes (`'a'` vs. `'a`), numeric literals with suffixes and
//! exponents, and multi-char operators.
//!
//! Comments are not tokens: they are collected into a side table so the
//! rules that key off them (SAFETY justifications, allow directives,
//! atomics documentation) can query "which comments touch line N"
//! without the token stream having to carry trivia.

/// Kind of a lexed token. Keywords are `Ident`s; the rules match on
/// text where it matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// `'a` / `'static` (also loop labels).
    Lifetime,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Any string literal: plain, raw, byte, byte-raw.
    Str,
    /// Integer literal (any base, with suffix).
    Int,
    /// Float literal (decimal point, exponent, or f32/f64 suffix).
    Float,
    /// Multi-char operator from the fixed table (`::`, `==`, `->`, …).
    Op,
    /// Any other single character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

/// One comment (line or block, doc or plain) with its line span.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub end_line: u32,
    pub text: String,
}

/// Lexer output: the significant tokens plus the comment side table.
#[derive(Debug, Default)]
pub struct LexOut {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Multi-char operators, longest first so greedy matching is correct.
const OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens and comments. Never panics: unterminated
/// constructs simply run to end of input.
pub fn lex(src: &str) -> LexOut {
    let chars: Vec<char> = src.chars().collect();
    let mut out = LexOut::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    let at = |i: usize| chars.get(i).copied();

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && at(i + 1) == Some('/') {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            out.comments.push(Comment { line, end_line: line, text });
            continue;
        }
        if c == '/' && at(i + 1) == Some('*') {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && at(i + 1) == Some('*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && at(i + 1) == Some('/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            let text: String = chars[start..i.min(n)].iter().collect();
            out.comments.push(Comment { line: start_line, end_line: line, text });
            continue;
        }
        // Raw / byte string prefixes: r"…", r#"…"#, b"…", br#"…"#, b'…'.
        if (c == 'r' || c == 'b') && is_string_prefix(&chars, i) {
            let (tok, ni, nl) = lex_prefixed_literal(&chars, i, line);
            out.tokens.push(tok);
            i = ni;
            line = nl;
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            out.tokens.push(Token { kind: TokenKind::Ident, text, line });
            continue;
        }
        if c.is_ascii_digit() {
            let (tok, ni) = lex_number(&chars, i, line);
            out.tokens.push(tok);
            i = ni;
            continue;
        }
        if c == '"' {
            let (ni, nl) = skip_plain_string(&chars, i + 1, line);
            out.tokens.push(Token { kind: TokenKind::Str, text: String::new(), line });
            i = ni;
            line = nl;
            continue;
        }
        if c == '\'' {
            // Lifetime if followed by an identifier that is NOT closed
            // by a quote right after one char (`'a'` is a char literal,
            // `'a` / `'abc` a lifetime; `'\n'` is always a char).
            let next = at(i + 1);
            let is_lifetime = match next {
                Some(nc) if is_ident_start(nc) => at(i + 2) != Some('\''),
                _ => false,
            };
            if is_lifetime {
                let start = i;
                i += 1;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                out.tokens.push(Token { kind: TokenKind::Lifetime, text, line });
            } else {
                let (ni, nl) = skip_char_literal(&chars, i + 1, line);
                out.tokens.push(Token { kind: TokenKind::Char, text: String::new(), line });
                i = ni;
                line = nl;
            }
            continue;
        }
        // Multi-char operators (greedy, longest first).
        if let Some(op) = OPS.iter().find(|op| chars_match(&chars, i, op)) {
            out.tokens.push(Token { kind: TokenKind::Op, text: (*op).to_string(), line });
            i += op.chars().count();
            continue;
        }
        out.tokens.push(Token { kind: TokenKind::Punct, text: c.to_string(), line });
        i += 1;
    }
    out
}

fn chars_match(chars: &[char], i: usize, pat: &str) -> bool {
    pat.chars().enumerate().all(|(j, pc)| chars.get(i + j) == Some(&pc))
}

/// Does the `r`/`b` at `i` start a raw/byte string or byte-char literal
/// (as opposed to a plain identifier like `radius`)?
fn is_string_prefix(chars: &[char], i: usize) -> bool {
    let c = chars[i];
    let rest = match c {
        'r' => &chars[i + 1..],
        'b' => match chars.get(i + 1) {
            Some('r') => &chars[i + 2..],
            _ => &chars[i + 1..],
        },
        _ => return false,
    };
    match rest.first() {
        Some('"') => true,
        Some('\'') => c == 'b' && chars.get(i + 1) == Some(&'\''),
        Some('#') => {
            // Raw string: hashes then a quote. `r#ident` (raw ident) has
            // an ident char after the hash instead.
            let mut j = 0;
            while rest.get(j) == Some(&'#') {
                j += 1;
            }
            rest.get(j) == Some(&'"')
        }
        _ => false,
    }
}

/// Lex a literal that starts with an `r`/`b`/`br` prefix.
fn lex_prefixed_literal(chars: &[char], i: usize, line: u32) -> (Token, usize, u32) {
    let mut j = i;
    let mut raw = false;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        raw = true;
        j += 1;
    }
    if chars.get(j) == Some(&'\'') {
        // Byte char literal b'…'.
        let (ni, nl) = skip_char_literal(chars, j + 1, line);
        return (Token { kind: TokenKind::Char, text: String::new(), line }, ni, nl);
    }
    if raw {
        let mut hashes = 0usize;
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        j += 1; // opening quote
        let mut nl = line;
        while j < chars.len() {
            if chars[j] == '\n' {
                nl += 1;
            }
            if chars[j] == '"' {
                let mut k = 0;
                while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                    k += 1;
                }
                if k == hashes {
                    j += 1 + hashes;
                    return (Token { kind: TokenKind::Str, text: String::new(), line }, j, nl);
                }
            }
            j += 1;
        }
        (Token { kind: TokenKind::Str, text: String::new(), line }, j, nl)
    } else {
        let (ni, nl) = skip_plain_string(chars, j + 1, line);
        (Token { kind: TokenKind::Str, text: String::new(), line }, ni, nl)
    }
}

/// Skip a plain (escaped) string body; `i` points just past the opening
/// quote. Returns (index past closing quote, line).
fn skip_plain_string(chars: &[char], mut i: usize, mut line: u32) -> (usize, u32) {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return (i + 1, line),
            '\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, line)
}

/// Skip a char/byte-char literal body; `i` points just past the opening
/// quote.
fn skip_char_literal(chars: &[char], mut i: usize, line: u32) -> (usize, u32) {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\'' => return (i + 1, line),
            '\n' => {
                // Unterminated; bail at end of line so the lexer
                // resynchronises instead of eating the file.
                return (i, line);
            }
            _ => i += 1,
        }
    }
    (i, line)
}

/// Lex a numeric literal starting at a digit.
fn lex_number(chars: &[char], i: usize, line: u32) -> (Token, usize) {
    let n = chars.len();
    let mut j = i;
    let mut float = false;
    if chars[j] == '0' && matches!(chars.get(j + 1), Some('x' | 'o' | 'b')) {
        j += 2;
        while j < n && (chars[j].is_ascii_hexdigit() || chars[j] == '_') {
            j += 1;
        }
    } else {
        while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
            j += 1;
        }
        // Fractional part only when a digit follows the dot: `1..4` and
        // `1.max(2)` must not lex a float.
        if chars.get(j) == Some(&'.') && chars.get(j + 1).is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            j += 1;
            while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
        if matches!(chars.get(j), Some('e' | 'E')) {
            let mut k = j + 1;
            if matches!(chars.get(k), Some('+' | '-')) {
                k += 1;
            }
            if chars.get(k).is_some_and(|c| c.is_ascii_digit()) {
                float = true;
                j = k;
                while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
                    j += 1;
                }
            }
        }
    }
    // Suffix (u8/usize/f32/…).
    let suffix_start = j;
    while j < n && is_ident_continue(chars[j]) {
        j += 1;
    }
    let suffix: String = chars[suffix_start..j].iter().collect();
    if suffix == "f32" || suffix == "f64" {
        float = true;
    }
    let text: String = chars[i..j].iter().collect();
    let kind = if float { TokenKind::Float } else { TokenKind::Int };
    (Token { kind, text, line }, j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert!(t.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count() == 2);
        assert!(t.iter().filter(|(k, _)| *k == TokenKind::Char).count() == 2);
    }

    #[test]
    fn raw_strings_hide_their_content() {
        let t = kinds(r####"let s = r#"unwrap() // not code "quoted" "#; x"####);
        assert!(t.iter().any(|(k, _)| *k == TokenKind::Str));
        assert!(!t.iter().any(|(_, s)| s == "unwrap"));
        assert_eq!(t.last().map(|(_, s)| s.as_str()), Some("x"));
    }

    #[test]
    fn byte_and_byte_raw_strings() {
        let t = kinds(r#"let a = b"bytes"; let b = br"raw"; let c = b'x';"#);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 1);
    }

    #[test]
    fn nested_block_comments_and_line_counts() {
        let out = lex("/* a /* b */ still comment */ fn f() {}\nlet x = 1;");
        assert_eq!(out.comments.len(), 1);
        assert_eq!(out.tokens[0].text, "fn");
        assert_eq!(out.tokens[0].line, 1);
        let x = out.tokens.iter().find(|t| t.text == "x").unwrap();
        assert_eq!(x.line, 2);
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        let t = kinds("let a = 1; let b = 1.5; let c = 1e-6; let d = 2f64; let e = 0xff; 1..4");
        let floats: Vec<_> =
            t.iter().filter(|(k, _)| *k == TokenKind::Float).map(|(_, s)| s.clone()).collect();
        assert_eq!(floats, ["1.5", "1e-6", "2f64"]);
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Op && s == ".."));
    }

    #[test]
    fn multi_char_operators() {
        let t = kinds("a == b != c :: d -> e => f ..= g");
        let ops: Vec<_> =
            t.iter().filter(|(k, _)| *k == TokenKind::Op).map(|(_, s)| s.clone()).collect();
        assert_eq!(ops, ["==", "!=", "::", "->", "=>", "..="]);
    }

    #[test]
    fn comments_collected_not_tokenised() {
        let out = lex("// unwrap() in a comment\nlet y = 2; /* expect */");
        assert!(!out.tokens.iter().any(|t| t.text == "unwrap"));
        assert_eq!(out.comments.len(), 2);
        assert!(out.comments[0].text.contains("unwrap"));
    }
}
