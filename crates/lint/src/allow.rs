//! The allow-list grammar and suppression logic.
//!
//! A diagnostic is suppressed by a directive comment of the form
//!
//! ```text
//! // taor-lint: allow(<rule>[, <rule>…]) — <justification>
//! ```
//!
//! where `<rule>` is either a full rule name (`panic::index`), a family
//! (`panic`, suppressing every `panic::*` rule), or `all`. The
//! justification is mandatory; `—`, `--` or `-` all work as the
//! separator. A directive that fails to parse or omits the
//! justification is itself a diagnostic, so allows can never silently
//! rot.
//!
//! Scope is positional:
//! * a directive in the file header (before the first code token)
//!   applies to the whole file — the idiom for e.g. dense numeric
//!   kernels where every index is loop-bounded by construction;
//! * anywhere else it applies to exactly one line: its own line when it
//!   trails code, otherwise the first code line after it.

use crate::diag::Diagnostic;
use crate::lexer::{Comment, Token};

const DIRECTIVE: &str = "taor-lint:";

/// One parsed (or malformed) allow directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rules (or families, or `all`) this directive suppresses.
    pub rules: Vec<String>,
    /// Line the directive comment starts on.
    pub line: u32,
    /// Whole-file scope (directive sits in the file header).
    pub file_wide: bool,
    /// The single line this directive covers when not file-wide.
    pub target_line: Option<u32>,
}

/// Does an allowed name cover a concrete rule? `all` covers everything,
/// a family name covers `family::*`, a full name covers itself.
pub fn covers(allowed: &str, rule: &str) -> bool {
    allowed == "all"
        || allowed == rule
        || rule.strip_prefix(allowed).is_some_and(|rest| rest.starts_with("::"))
}

/// Extract directives from a file's comments. Malformed or unjustified
/// directives are reported through `diags`. `first_code_line` bounds
/// the file header; `code_lines` maps directives to the line they
/// cover.
pub fn collect(
    comments: &[Comment],
    tokens: &[Token],
    first_code_line: u32,
    file: &str,
    diags: &mut Vec<Diagnostic>,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        // A directive must BE the comment, not appear inside one: after
        // the comment markers, the text starts with `taor-lint:`. This
        // keeps prose *about* directives (like this crate's own docs)
        // from parsing as directives.
        let body = ["//!", "///", "//", "/*!", "/**", "/*"]
            .iter()
            .find_map(|m| c.text.strip_prefix(m))
            .unwrap_or(c.text.as_str());
        let Some(rest) = body.trim_start().strip_prefix(DIRECTIVE) else { continue };
        let rest = rest.trim();
        // Block comments may carry a trailing `*/`; strip it so the
        // justification check sees only the directive text.
        let rest = rest.strip_suffix("*/").unwrap_or(rest).trim();
        match parse(rest) {
            Ok((rules, justified)) => {
                if !justified {
                    diags.push(Diagnostic::new(
                        file,
                        c.line,
                        "allow::unjustified",
                        "allow directive has no justification (write `allow(rule) — why`)",
                    ));
                }
                let file_wide = c.line < first_code_line;
                let target_line = if file_wide { None } else { target_of(tokens, c) };
                allows.push(Allow { rules, line: c.line, file_wide, target_line });
            }
            Err(msg) => {
                diags.push(Diagnostic::new(file, c.line, "allow::malformed", msg));
            }
        }
    }
    allows
}

/// The line a non-header directive covers: its own line if code
/// precedes it there (trailing comment), else the first code line
/// after the comment.
fn target_of(tokens: &[Token], c: &Comment) -> Option<u32> {
    if tokens.iter().any(|t| t.line == c.line) {
        return Some(c.line);
    }
    tokens.iter().map(|t| t.line).filter(|&l| l > c.end_line).min()
}

/// Parse the text after `taor-lint:`. Returns (rules, has_justification).
fn parse(rest: &str) -> Result<(Vec<String>, bool), &'static str> {
    let Some(body) = rest.strip_prefix("allow") else {
        return Err("unknown directive (expected `allow(rule, …) — justification`)");
    };
    let body = body.trim_start();
    let Some(body) = body.strip_prefix('(') else {
        return Err("missing `(` after `allow`");
    };
    let Some(close) = body.find(')') else {
        return Err("missing `)` in allow directive");
    };
    let rules: Vec<String> =
        body[..close].split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty()).collect();
    if rules.is_empty() {
        return Err("empty rule list in allow directive");
    }
    if rules.iter().any(|r| !r.chars().all(|c| c.is_ascii_alphanumeric() || "_-:".contains(c))) {
        return Err("rule names may contain only [a-z0-9_:-]");
    }
    let after = body[close + 1..].trim_start();
    let justified = ["—", "--", "-"]
        .iter()
        .any(|sep| after.strip_prefix(sep).is_some_and(|j| !j.trim().is_empty()));
    Ok((rules, justified))
}

/// Apply suppression: keep only diagnostics not covered by any allow.
/// Meta diagnostics (`allow::*`) are never suppressible.
pub fn filter(diags: Vec<Diagnostic>, allows: &[Allow]) -> Vec<Diagnostic> {
    diags
        .into_iter()
        .filter(|d| {
            if d.rule.starts_with("allow::") {
                return true;
            }
            !allows.iter().any(|a| {
                let in_scope = a.file_wide || a.target_line == Some(d.line);
                in_scope && a.rules.iter().any(|r| covers(r, &d.rule))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> (Vec<Allow>, Vec<Diagnostic>) {
        let out = lex(src);
        let first = out.tokens.first().map_or(u32::MAX, |t| t.line);
        let mut diags = Vec::new();
        let allows = collect(&out.comments, &out.tokens, first, "f.rs", &mut diags);
        (allows, diags)
    }

    #[test]
    fn parses_rules_and_justification() {
        let (a, d) = run("// taor-lint: allow(panic::index, det) — loop-bounded\nfn f() {}");
        assert!(d.is_empty());
        assert_eq!(a[0].rules, ["panic::index", "det"]);
        assert!(a[0].file_wide, "header directive must be file-wide");
    }

    #[test]
    fn missing_justification_is_reported() {
        let (_, d) = run("fn f() {}\n// taor-lint: allow(panic)\nfn g() {}");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "allow::unjustified");
    }

    #[test]
    fn malformed_directive_is_reported() {
        let (_, d) = run("fn f() {}\n// taor-lint: allow panic — oops");
        assert_eq!(d[0].rule, "allow::malformed");
    }

    #[test]
    fn trailing_directive_targets_its_own_line() {
        let (a, _) = run("fn f() {}\nlet x = v[i]; // taor-lint: allow(panic::index) — bounded");
        assert_eq!(a[0].target_line, Some(2));
        assert!(!a[0].file_wide);
    }

    #[test]
    fn preceding_directive_targets_next_code_line() {
        let (a, _) = run("fn f() {}\n// taor-lint: allow(panic::index) — bounded\n\nlet x = v[i];");
        assert_eq!(a[0].target_line, Some(4));
    }

    #[test]
    fn family_and_all_cover() {
        assert!(covers("panic", "panic::index"));
        assert!(covers("all", "det::hash-iter"));
        assert!(covers("panic::index", "panic::index"));
        assert!(!covers("panic::index", "panic::unwrap"));
        assert!(!covers("panic", "panicky::x"));
    }
}
