//! Workspace walking, file classification and crate-level checks.
//!
//! The engine owns everything that needs more than one file's worth of
//! context: which paths are linted at all, which crates are "strict"
//! (panic/float/determinism rules), and the per-crate unsafe-surface
//! checks (`unsafe::missing-forbid` / `unsafe::missing-deny`).

use crate::allow;
use crate::diag::Diagnostic;
use crate::lexer::{self, TokenKind};
use crate::regions;
use crate::rules::{self, RuleCtx};
use crate::stmt;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Crates whose `src/` is result-producing inference code: the strict
/// rule families apply there.
const STRICT_CRATES: &[&str] = &[
    "crates/core",
    "crates/data",
    "crates/features",
    "crates/imgproc",
    "crates/nn",
    "crates/serve",
];

/// Top-level directories the workspace walk covers.
const WALK_ROOTS: &[&str] = &["src", "tests", "examples", "crates", "vendor"];

/// Directory names never descended into. `fixtures` holds the lint's
/// own corpus of deliberately-bad snippets.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Lint one source string the way the engine would lint that file on
/// disk (minus crate-level checks). Public so the fixture tests drive
/// exactly the production path. Like the engine, the file's own
/// `Result`-returning functions feed `err::swallowed-result`; a full
/// workspace run unions the tables of every file first
/// ([`lint_source_with`]).
pub fn lint_source(file: &str, src: &str, strict: bool, all_test: bool) -> Vec<Diagnostic> {
    let out = lexer::lex(src);
    let result_fns: BTreeSet<String> = stmt::result_fns(&out.tokens).into_iter().collect();
    lint_lexed(file, &out, strict, all_test, &result_fns)
}

/// [`lint_source`] with an externally-collected `Result`-returning
/// function table (engine pass 1 over the whole workspace).
pub fn lint_source_with(
    file: &str,
    src: &str,
    strict: bool,
    all_test: bool,
    result_fns: &BTreeSet<String>,
) -> Vec<Diagnostic> {
    lint_lexed(file, &lexer::lex(src), strict, all_test, result_fns)
}

fn lint_lexed(
    file: &str,
    out: &lexer::LexOut,
    strict: bool,
    all_test: bool,
    result_fns: &BTreeSet<String>,
) -> Vec<Diagnostic> {
    let mask = regions::test_mask(&out.tokens);
    let ctx = RuleCtx {
        file,
        tokens: &out.tokens,
        test_mask: &mask,
        comments: &out.comments,
        strict,
        all_test,
        result_fns,
    };
    let mut diags = Vec::new();
    rules::run_file(&ctx, &mut diags);
    let first_code_line = first_code_line(&out.tokens);
    let allows = allow::collect(&out.comments, &out.tokens, first_code_line, file, &mut diags);
    allow::filter(diags, &allows)
}

/// Line of the first token that is not part of an inner attribute
/// (`#![…]`): the boundary of the file header for file-wide allows.
fn first_code_line(tokens: &[lexer::Token]) -> u32 {
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text == "#" && tokens.get(i + 1).is_some_and(|t| t.text == "!") {
            // Skip the bracketed group.
            let mut depth = 0usize;
            i += 2;
            while i < tokens.len() {
                match tokens[i].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            continue;
        }
        return tokens[i].line;
    }
    u32::MAX
}

/// Per-crate facts accumulated during the walk.
#[derive(Default)]
struct CrateInfo {
    has_unsafe: bool,
    root_file: Option<String>,
    root_has_forbid_unsafe: bool,
    root_has_deny_unsafe_op: bool,
    root_allows: Vec<allow::Allow>,
}

/// Lint the whole workspace rooted at `root`. Returns diagnostics
/// sorted by (file, line, rule).
///
/// Two passes: pass 1 reads and lexes every file, collecting the
/// workspace-wide table of `Result`-returning function names and the
/// per-crate facts; pass 2 runs the rules with that table in scope, so
/// `err::swallowed-result` knows the project's own fallible functions
/// regardless of declaration order.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for top in WALK_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();

    // Pass 1: lex everything once; accumulate the fallible-fn table and
    // crate-level bookkeeping.
    let mut lexed: Vec<(String, lexer::LexOut, bool, bool)> = Vec::new();
    let mut result_fns: BTreeSet<String> = BTreeSet::new();
    let mut crates: BTreeMap<String, CrateInfo> = BTreeMap::new();
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(path)?;
        let strict = STRICT_CRATES.iter().any(|c| rel_str.starts_with(&format!("{c}/src/")));
        let all_test = rel_str.contains("/tests/")
            || rel_str.contains("/benches/")
            || rel_str.starts_with("tests/")
            || rel_str.starts_with("examples/");
        let out = lexer::lex(&src);
        result_fns.extend(stmt::result_fns(&out.tokens));

        let crate_key = crate_of(&rel_str);
        let info = crates.entry(crate_key.clone()).or_default();
        info.has_unsafe |=
            out.tokens.iter().any(|t| t.kind == TokenKind::Ident && t.text == "unsafe");
        let root_rel = format!("{}src/lib.rs", prefix_of(&crate_key));
        let main_rel = format!("{}src/main.rs", prefix_of(&crate_key));
        if rel_str == root_rel || (rel_str == main_rel && info.root_file.is_none()) {
            info.root_file = Some(rel_str.clone());
            let attrs = inner_attr_text(&out.tokens);
            info.root_has_forbid_unsafe = attrs.contains("forbid(unsafe_code)");
            info.root_has_deny_unsafe_op = attrs.contains("deny(unsafe_op_in_unsafe_fn)")
                || attrs.contains("forbid(unsafe_op_in_unsafe_fn)");
            let first = first_code_line(&out.tokens);
            let mut scratch = Vec::new();
            info.root_allows =
                allow::collect(&out.comments, &out.tokens, first, &rel_str, &mut scratch);
        }
        lexed.push((rel_str, out, strict, all_test));
    }

    // Pass 2: run the rules with the full table in scope.
    let mut diags = Vec::new();
    for (rel_str, out, strict, all_test) in &lexed {
        diags.extend(lint_lexed(rel_str, out, *strict, *all_test, &result_fns));
    }

    for (name, info) in &crates {
        let Some(root_file) = &info.root_file else { continue };
        let crate_diag = |rule: &str, msg: String| Diagnostic::new(root_file, 1, rule, msg);
        let d = if !info.has_unsafe && !info.root_has_forbid_unsafe {
            Some(crate_diag(
                "unsafe::missing-forbid",
                format!("crate `{name}` has no unsafe code; pin that with #![forbid(unsafe_code)]"),
            ))
        } else if info.has_unsafe && !info.root_has_deny_unsafe_op {
            Some(crate_diag(
                "unsafe::missing-deny",
                format!(
                    "crate `{name}` contains unsafe; add #![deny(unsafe_op_in_unsafe_fn)] \
                     so every unsafe operation is an explicit block"
                ),
            ))
        } else {
            None
        };
        if let Some(d) = d {
            // Crate-level findings honour file-wide allows in the root.
            let suppressed = info
                .root_allows
                .iter()
                .any(|a| a.file_wide && a.rules.iter().any(|r| allow::covers(r, &d.rule)));
            if !suppressed {
                diags.push(d);
            }
        }
    }

    diags.sort();
    diags.dedup();
    Ok(diags)
}

/// Crate key of a workspace-relative path: `crates/<name>` or
/// `vendor/<name>`; everything else belongs to the root crate.
fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match parts.next() {
        Some(top @ ("crates" | "vendor")) => match parts.next() {
            Some(name) => format!("{top}/{name}"),
            None => ".".into(),
        },
        _ => ".".into(),
    }
}

fn prefix_of(crate_key: &str) -> String {
    if crate_key == "." {
        String::new()
    } else {
        format!("{crate_key}/")
    }
}

/// Joined text of all inner attributes (`#![…]`) in a token stream,
/// whitespace-free, for the crate-gate checks.
fn inner_attr_text(tokens: &[lexer::Token]) -> String {
    let mut s = String::new();
    let mut i = 0usize;
    while i + 2 < tokens.len() {
        if tokens[i].text == "#" && tokens[i + 1].text == "!" && tokens[i + 2].text == "[" {
            let mut depth = 0usize;
            i += 2;
            while i < tokens.len() {
                match tokens[i].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => s.push_str(&tokens[i].text),
                }
                i += 1;
            }
            s.push(';');
        }
        i += 1;
    }
    s
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let path = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Find the workspace root: ascend from `start` until a `Cargo.toml`
/// declaring `[workspace]` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
