//! Diagnostic type and rendering.

use std::fmt;

/// One finding: file, 1-based line, rule name, human message.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub message: String,
}

impl Diagnostic {
    pub fn new(
        file: impl Into<String>,
        line: u32,
        rule: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic { file: file.into(), line, rule: rule.into(), message: message.into() }
    }
}

impl Diagnostic {
    /// One-line JSON object (`--json` output). Hand-rolled because the
    /// lint sits below every dependency in the workspace, serde
    /// included.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"file":{},"line":{},"rule":{},"message":{}}}"#,
            json_str(&self.file),
            self.line,
            json_str(&self.rule),
            json_str(&self.message)
        )
    }

    /// GitHub Actions workflow-command annotation: renders as an inline
    /// error on the diff in the PR view.
    pub fn to_github_annotation(&self) -> String {
        format!(
            "::error file={},line={},title={}::{}",
            self.file,
            self.line,
            self.rule,
            // Workflow commands are line-oriented: the message must be
            // escaped to survive as a single property value.
            self.message.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
        )
    }
}

/// Minimal JSON string escape: quotes, backslashes, control chars.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let d = Diagnostic::new("a.rs", 3, "panic::index", "bad \"thing\"\nhere");
        assert_eq!(
            d.to_json(),
            r#"{"file":"a.rs","line":3,"rule":"panic::index","message":"bad \"thing\"\nhere"}"#
        );
    }

    #[test]
    fn github_annotation_escapes_message_newlines() {
        let d = Diagnostic::new("a.rs", 3, "err::swallowed-result", "l1\nl2 100%");
        assert_eq!(
            d.to_github_annotation(),
            "::error file=a.rs,line=3,title=err::swallowed-result::l1%0Al2 100%25"
        );
    }
}
