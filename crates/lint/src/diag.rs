//! Diagnostic type and rendering.

use std::fmt;

/// One finding: file, 1-based line, rule name, human message.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub message: String,
}

impl Diagnostic {
    pub fn new(
        file: impl Into<String>,
        line: u32,
        rule: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic { file: file.into(), line, rule: rule.into(), message: message.into() }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}
