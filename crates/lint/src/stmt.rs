//! Lightweight statement-level parse on top of the lexer.
//!
//! Two dataflow-ish facts the token-window rules cannot see:
//!
//! * [`let_underscores`] — every `let _ = …;` statement, with the name
//!   of the *outermost trailing call* in the discarded expression and
//!   whether the statement ends in `?` (error propagated, not
//!   swallowed). Feeds `err::swallowed-result`.
//! * [`result_fns`] — every `fn` declaration whose return type mentions
//!   `Result`, collected workspace-wide by the engine so the rule knows
//!   the project's own fallible functions, not just the std built-ins.
//!
//! This is a parse of statements, not of Rust: it tracks bracket depth
//! (`()`/`[]`/`{}`) and angle depth in signatures, and nothing else.
//! That is exactly enough for the two facts above and keeps the lexer's
//! no-panic guarantee trivially intact.

use crate::lexer::{Token, TokenKind};

/// One `let _ = …;` statement.
#[derive(Debug, Clone)]
pub struct LetUnderscore {
    /// Line of the `let` keyword.
    pub line: u32,
    /// Token index of the `let` keyword (for test-mask lookup).
    pub index: usize,
    /// Name of the outermost trailing call in the discarded expression
    /// (`send` in `let _ = job.resp.send(x);`), when it ends in a call.
    /// Macro invocations (`write!(…)`) are deliberately not calls: the
    /// workspace's fmt-to-String writes are infallible.
    pub call: Option<String>,
    /// The statement ends in `?` — the error is propagated, only the
    /// success value is discarded.
    pub propagates: bool,
}

/// Find every `let _ = …;` statement in a token stream.
pub fn let_underscores(tokens: &[Token]) -> Vec<LetUnderscore> {
    let mut found = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].kind == TokenKind::Ident && tokens[i].text == "let") {
            i += 1;
            continue;
        }
        let Some(underscore) = tokens.get(i + 1) else { break };
        if !(underscore.kind == TokenKind::Ident && underscore.text == "_") {
            i += 1;
            continue;
        }
        // Skip an optional `: Type` ascription to the `=` (angle-aware
        // so `let _: Result<(), E> = …` parses).
        let mut j = i + 2;
        if tokens.get(j).is_some_and(|t| t.text == ":") {
            let mut angle = 0i32;
            j += 1;
            while let Some(t) = tokens.get(j) {
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "<<" => angle += 2,
                    ">>" => angle -= 2,
                    "=" if angle <= 0 => break,
                    ";" => break,
                    _ => {}
                }
                j += 1;
            }
        }
        if tokens.get(j).is_none_or(|t| t.text != "=") {
            i += 1;
            continue;
        }
        // Scan the discarded expression to its terminating `;` at
        // bracket depth 0, tracking the outermost trailing call.
        let mut depth = 0i32;
        let mut call: Option<String> = None;
        let mut last_significant: Option<&str> = None;
        j += 1;
        while let Some(t) = tokens.get(j) {
            match t.text.as_str() {
                "(" | "[" | "{" => {
                    if depth == 0 && t.text == "(" {
                        // `ident (` is a call; `ident ! (` is a macro.
                        let callee = tokens.get(j.wrapping_sub(1));
                        let bang = tokens.get(j.wrapping_sub(2));
                        if let Some(c) = callee {
                            if c.kind == TokenKind::Ident && bang.is_none_or(|b| b.text != "!") {
                                call = Some(c.text.clone());
                            }
                        }
                    }
                    depth += 1;
                }
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => break,
                _ => {}
            }
            if t.text != ";" || depth > 0 {
                last_significant = Some(t.text.as_str());
            }
            j += 1;
        }
        found.push(LetUnderscore {
            line: tokens[i].line,
            index: i,
            call,
            propagates: last_significant == Some("?"),
        });
        i = j + 1;
    }
    found
}

/// Names of `fn`s declared in this token stream whose return type
/// mentions `Result`. Name-based, so two same-named functions with
/// different return types alias — acceptable for a lint that is
/// suppressible with a justified allow.
pub fn result_fns(tokens: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].kind == TokenKind::Ident && tokens[i].text == "fn") {
            i += 1;
            continue;
        }
        let Some(name) = tokens.get(i + 1) else { break };
        if name.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let mut j = i + 2;
        // Generic parameter list.
        if tokens.get(j).is_some_and(|t| t.text == "<") {
            let mut angle = 0i32;
            while let Some(t) = tokens.get(j) {
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "<<" => angle += 2,
                    ">>" => angle -= 2,
                    _ => {}
                }
                j += 1;
                if angle <= 0 {
                    break;
                }
            }
        }
        // Parameter list.
        if tokens.get(j).is_none_or(|t| t.text != "(") {
            i += 1;
            continue;
        }
        let mut paren = 0i32;
        while let Some(t) = tokens.get(j) {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                _ => {}
            }
            j += 1;
            if paren <= 0 {
                break;
            }
        }
        // Return type: scan `-> …` up to the body/`;`/`where`.
        let mut returns_result = false;
        if tokens.get(j).is_some_and(|t| t.text == "->") {
            j += 1;
            let mut depth = 0i32;
            while let Some(t) = tokens.get(j) {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" | ";" if depth <= 0 => break,
                    "where" if depth <= 0 && t.kind == TokenKind::Ident => break,
                    _ => {}
                }
                if t.kind == TokenKind::Ident && t.text == "Result" {
                    returns_result = true;
                }
                j += 1;
            }
        }
        if returns_result {
            out.push(name.text.clone());
        }
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lus(src: &str) -> Vec<LetUnderscore> {
        let_underscores(&lex(src).tokens)
    }

    #[test]
    fn finds_the_outermost_trailing_call() {
        let l = lus("fn f() { let _ = job.resp.send(WorkOutcome::TimedOut); }");
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].call.as_deref(), Some("send"));
        assert!(!l[0].propagates);
    }

    #[test]
    fn nested_calls_do_not_shadow_the_outermost() {
        let l = lus("fn f() { let _ = outer(inner(x), other(y)); }");
        assert_eq!(l[0].call.as_deref(), Some("outer"));
        let l = lus("fn f() { let _ = a.first().map(|v| v.send(x)); }");
        assert_eq!(l[0].call.as_deref(), Some("map"));
    }

    #[test]
    fn question_mark_counts_as_propagation() {
        let l = lus("fn f() -> Result<(), E> { let _ = fallible()?; Ok(()) }");
        assert_eq!(l[0].call.as_deref(), Some("fallible"));
        assert!(l[0].propagates);
    }

    #[test]
    fn plain_bindings_and_macros_are_not_calls() {
        let l = lus("fn f() { let _ = m; let _ = writeln!(out, \"x\"); }");
        assert_eq!(l.len(), 2);
        assert_eq!(l[0].call, None);
        assert_eq!(l[1].call, None, "macro invocations are not calls");
    }

    #[test]
    fn multiline_statements_and_closures_parse() {
        let l = lus("fn f() { let _ = POOL.try_with(|p| {\n  p.borrow_mut().reset();\n}); }");
        assert_eq!(l[0].call.as_deref(), Some("try_with"));
    }

    #[test]
    fn typed_discard_is_still_found() {
        let l = lus("fn f() { let _: Result<(), Box<dyn E>> = s.send(1); }");
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].call.as_deref(), Some("send"));
    }

    #[test]
    fn collects_result_returning_fns_only() {
        let fns = result_fns(
            &lex(concat!(
                "pub fn truncated_body(addr: A) -> io::Result<String> { x }\n",
                "fn depth(&self) -> usize { 0 }\n",
                "fn generic<T: Into<Vec<u8>>>(t: T) -> Result<T, Error> where T: Clone { t }\n",
                "trait T { fn decl(&self) -> Result<(), E>; }\n",
            ))
            .tokens,
        );
        assert_eq!(fns, vec!["truncated_body", "generic", "decl"]);
    }
}
