//! Response determinism: identical crop bytes must yield byte-identical
//! response bodies — across repeated requests, across worker-pool widths
//! (`TAOR_THREADS=1` vs `4`), and across two separate spawns of the
//! `taor-serve` binary. Micro-batching, thread scheduling and process
//! restarts may change *when* an answer is computed, never *what* it is.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use taor_core::wire::{encode_f32, encode_rgb8};
use taor_imgproc::image::RgbImage;
use taor_serve::chaos;
use taor_serve::{RecognizerService, Server, ServerConfig, ServiceConfig};

fn gradient_crop() -> RgbImage {
    let mut img = RgbImage::new(40, 32);
    for y in 0..32 {
        for x in 0..40 {
            img.put_pixel(x, y, [(x * 6) as u8, (y * 7) as u8, ((x * y) % 251) as u8]);
        }
    }
    img
}

/// A spawned `taor-serve` process plus the address it printed.
struct ServeProc {
    child: Child,
    addr: SocketAddr,
}

impl ServeProc {
    fn spawn(threads: &str, extra_args: &[&str]) -> ServeProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_taor-serve"))
            .args(["--addr", "127.0.0.1:0", "--seed", "2019"])
            .args(extra_args)
            .env("TAOR_THREADS", threads)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("taor-serve spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("server prints its address");
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .and_then(|a| a.parse().ok())
            .unwrap_or_else(|| panic!("unparseable listen line: {line:?}"));
        ServeProc { child, addr }
    }

    fn body_for(&self, crop: &[u8]) -> Vec<u8> {
        let (status, body) = chaos::post_crop(self.addr, crop).expect("roundtrip");
        assert_eq!(status, 200, "body: {}", String::from_utf8_lossy(&body));
        body
    }
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Full-binary determinism: two spawns, two thread widths, both wire
/// formats — every body byte-identical. Runs the cheap pipeline so the
/// debug-mode gallery build stays fast; the siamese path's determinism
/// is covered in-process below.
#[test]
fn binary_bodies_are_byte_identical_across_widths_and_spawns() {
    let f32_crop = {
        let img = gradient_crop();
        let samples: Vec<f32> = img.as_raw().iter().map(|&b| f32::from(b) / 255.0).collect();
        let (w, h) = img.dimensions();
        encode_f32(w, h, &samples)
    };
    let crops = [encode_rgb8(&gradient_crop()), f32_crop];
    let one = ServeProc::spawn("1", &["--no-siamese"]);
    let four = ServeProc::spawn("4", &["--no-siamese"]);
    for crop in &crops {
        let a = one.body_for(crop);
        let b = four.body_for(crop);
        assert!(!a.is_empty());
        assert_eq!(a, b, "bodies differ across TAOR_THREADS widths");
        // Same spawn, repeated request: also identical.
        assert_eq!(a, one.body_for(crop), "bodies differ across repeats");
    }
    drop(one);
    // A third, fresh spawn must agree with the recorded bodies.
    let again = ServeProc::spawn("1", &["--no-siamese"]);
    for crop in &crops {
        assert_eq!(four.body_for(crop), again.body_for(crop), "bodies differ across spawns");
    }
}

/// Delivery-mode determinism: the same crops sent pipelined down one
/// kept-alive connection, sequentially down one kept-alive connection,
/// and one-per-connection must produce byte-identical bodies — at both
/// `TAOR_THREADS` widths. Framing is transport, never content.
#[test]
fn pipelined_and_one_shot_bodies_are_byte_identical() {
    let crops: Vec<Vec<u8>> = (0u32..3)
        .map(|variant| {
            let mut img = gradient_crop();
            let (w, h) = img.dimensions();
            for y in 0..h {
                for x in 0..w {
                    let px = img.pixel(x, y);
                    img.put_pixel(x, y, [px[0].wrapping_add(variant as u8 * 31), px[1], px[2]]);
                }
            }
            encode_rgb8(&img)
        })
        .collect();
    for threads in ["1", "4"] {
        let server = ServeProc::spawn(threads, &["--no-siamese"]);

        // One connection per request (the PR 7 delivery mode).
        let one_shot: Vec<Vec<u8>> = crops.iter().map(|c| server.body_for(c)).collect();

        // Sequential reuse of a single connection.
        let mut client = chaos::PersistentClient::connect(server.addr).expect("connects");
        for (crop, expect) in crops.iter().zip(&one_shot) {
            let (status, body) = client.post_crop(crop).expect("reused answer");
            assert_eq!(status, 200);
            assert_eq!(&body, expect, "reuse changed a body at TAOR_THREADS={threads}");
        }

        // The full pipelined burst: all requests written before any
        // response is read.
        let mut client = chaos::PersistentClient::connect(server.addr).expect("connects");
        let mut burst = Vec::new();
        for crop in &crops {
            burst.extend_from_slice(&chaos::PersistentClient::request_bytes(
                "POST",
                "/recognize",
                crop,
                &[],
                false,
            ));
        }
        client.send_raw(&burst).expect("burst written");
        for (i, expect) in one_shot.iter().enumerate() {
            let (status, body) = client.read_response().expect("pipelined answer");
            assert_eq!(status, 200, "pipelined request {i}");
            assert_eq!(&body, expect, "pipelining changed body {i} at TAOR_THREADS={threads}");
        }
    }
}

/// In-process: two independent `Server`s over independently built
/// services (same seed) answer identically through the full siamese
/// path, including micro-batch grouping differences.
#[test]
fn two_in_process_servers_agree_through_the_siamese_path() {
    let spawn = |batch: usize| {
        let service =
            Arc::new(RecognizerService::new(ServiceConfig::default()).expect("service builds"));
        Server::spawn(service, ServerConfig { batch, ..ServerConfig::default() })
            .expect("server binds")
    };
    let a = spawn(1);
    let b = spawn(4);
    let crop = encode_rgb8(&gradient_crop());
    let (sa, body_a) = chaos::post_crop(a.local_addr(), &crop).unwrap();
    let (sb, body_b) = chaos::post_crop(b.local_addr(), &crop).unwrap();
    assert_eq!((sa, sb), (200, 200));
    assert_eq!(body_a, body_b, "siamese bodies differ across servers/batch shapes");
    let text = String::from_utf8(body_a).unwrap();
    assert!(text.contains("\"pipeline\":\"siamese\""), "body: {text}");
    a.shutdown();
    b.shutdown();
}
