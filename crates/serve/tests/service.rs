//! End-to-end service behaviour over real sockets: the full status map,
//! backpressure, deadlines, degradation and the health snapshot.

use std::sync::Arc;
use std::time::Duration;

use taor_core::wire::encode_rgb8;
use taor_imgproc::image::RgbImage;
use taor_serve::chaos;
use taor_serve::{RecognizerService, Server, ServerConfig, ServiceConfig};

/// A deterministic 48x48 gradient crop in wire format.
fn crop_bytes() -> Vec<u8> {
    let mut img = RgbImage::new(48, 48);
    for y in 0..48 {
        for x in 0..48 {
            img.put_pixel(x, y, [(x * 5) as u8, (y * 5) as u8, ((x + y) * 2) as u8]);
        }
    }
    encode_rgb8(&img)
}

fn spawn(service_cfg: ServiceConfig, server_cfg: ServerConfig) -> Server {
    let service = Arc::new(RecognizerService::new(service_cfg).expect("service builds"));
    Server::spawn(service, server_cfg).expect("server binds")
}

/// Cheap default: no siamese net so the gallery builds fast in debug.
fn cheap_cfg() -> ServiceConfig {
    ServiceConfig { use_siamese: false, ..ServiceConfig::default() }
}

#[test]
fn valid_crop_answers_200_with_a_full_body() {
    let server = spawn(cheap_cfg(), ServerConfig::default());
    let (status, body) = chaos::post_crop(server.local_addr(), &crop_bytes()).unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("\"class\":"), "body: {text}");
    assert!(text.contains("\"ranking\":"), "body: {text}");
    assert!(text.contains("\"pipeline\":\"hybrid\""), "body: {text}");
    assert!(text.contains("\"degraded\":false"), "body: {text}");
    server.shutdown();
}

#[test]
fn malformed_crop_answers_400_with_a_typed_message() {
    let server = spawn(cheap_cfg(), ServerConfig::default());
    let (status, body) =
        chaos::post_crop(server.local_addr(), b"definitely not a TAOR buffer").unwrap();
    assert_eq!(status, 400);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("bad crop"), "body: {text}");
    server.shutdown();
}

#[test]
fn unknown_paths_and_wrong_methods_are_404_and_405() {
    let server = spawn(cheap_cfg(), ServerConfig::default());
    let addr = server.local_addr();
    assert_eq!(chaos::get(addr, "/nope").unwrap().0, 404);
    assert_eq!(chaos::get(addr, "/recognize").unwrap().0, 405);
    assert_eq!(chaos::post(addr, "/healthz", b"", &[]).unwrap().0, 405);
    server.shutdown();
}

#[test]
fn oversized_body_declaration_is_413_before_transfer() {
    let cfg = ServerConfig {
        limits: taor_serve::HttpLimits { max_body: 1024, ..Default::default() },
        ..ServerConfig::default()
    };
    let server = spawn(cheap_cfg(), cfg);
    let outcome = chaos::oversized_declaration(server.local_addr(), 4096);
    assert_eq!(outcome, chaos::ChaosOutcome::Responded(413));
    server.shutdown();
}

#[test]
fn saturated_queue_sheds_with_429_and_retry_after() {
    // One worker, one queue slot, batch of one: the first request (held
    // in the worker by the test delay) plus one queued request saturate
    // the service; everything after that must shed.
    let cfg = ServerConfig {
        workers: 1,
        queue_cap: 1,
        batch: 1,
        allow_test_delay: true,
        deadline: Duration::from_secs(10),
        ..ServerConfig::default()
    };
    let server = spawn(cheap_cfg(), cfg);
    let addr = server.local_addr();
    let crop = crop_bytes();

    // Staggered: the first slow request reaches the worker (and holds
    // it for 2.5 s), the second then occupies the single queue slot.
    let mut slow = Vec::new();
    for _ in 0..2 {
        let crop = crop.clone();
        slow.push(std::thread::spawn(move || {
            chaos::post(addr, "/recognize", &crop, &[("X-Taor-Test-Delay-Ms", "2500")])
        }));
        std::thread::sleep(Duration::from_millis(400));
    }

    let mut shed = 0;
    let mut retry_after_seen = false;
    for _ in 0..6 {
        // Raw roundtrip so the Retry-After header is visible.
        let raw = {
            let mut req = format!(
                "POST /recognize HTTP/1.1\r\nHost: taor\r\nContent-Length: {}\r\n\r\n",
                crop.len()
            )
            .into_bytes();
            req.extend_from_slice(&crop);
            req
        };
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.write_all(&raw).unwrap();
        let mut resp = Vec::new();
        let _ = stream.read_to_end(&mut resp);
        let text = String::from_utf8_lossy(&resp);
        if text.starts_with("HTTP/1.1 429") {
            shed += 1;
            retry_after_seen |= text.contains("Retry-After: 1");
        }
    }
    for h in slow {
        let (status, _) = h.join().unwrap().expect("slow request transport");
        assert_eq!(status, 200, "the admitted slow requests must still be answered");
    }
    assert!(shed > 0, "a saturated queue must shed load with 429");
    assert!(retry_after_seen, "429 responses must carry Retry-After");
    // The shed counter made it to the health snapshot.
    let (status, body) = chaos::get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(!text.contains("\"shed\":0"), "healthz must report the shed requests: {text}");
    server.shutdown();
}

#[test]
fn missed_deadline_answers_504_and_counts_a_timeout() {
    let cfg = ServerConfig {
        workers: 1,
        batch: 1,
        allow_test_delay: true,
        deadline: Duration::from_millis(100),
        ..ServerConfig::default()
    };
    let server = spawn(cheap_cfg(), cfg);
    let addr = server.local_addr();
    let (status, _) =
        chaos::post(addr, "/recognize", &crop_bytes(), &[("X-Taor-Test-Delay-Ms", "500")]).unwrap();
    assert_eq!(status, 504, "a request slower than its deadline must answer 504");

    let (_, body) = chaos::get(addr, "/healthz").unwrap();
    let text = String::from_utf8(body).unwrap();
    assert!(!text.contains("\"timeouts\":0"), "healthz must count the timeout: {text}");
    server.shutdown();
}

#[test]
fn healthz_reports_gallery_and_queue_shape() {
    let server = spawn(cheap_cfg(), ServerConfig::default());
    let (status, body) = chaos::get(server.local_addr(), "/healthz").unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("\"status\":\"ok\""), "body: {text}");
    assert!(text.contains("\"reference_views\":82"), "body: {text}");
    assert!(text.contains("\"gallery_size\":82"), "body: {text}");
    assert!(text.contains("\"index\":\"flat\""), "body: {text}");
    assert!(text.contains("\"queue_capacity\":64"), "body: {text}");
    assert!(text.contains("\"diagnostics\":"), "body: {text}");
    server.shutdown();
}

#[test]
fn healthz_reports_the_active_ann_index() {
    let service_cfg =
        ServiceConfig { index: taor_core::prelude::AnnIndexMode::Hnsw, ..ServiceConfig::default() };
    let server = spawn(service_cfg, ServerConfig::default());
    let (status, body) = chaos::get(server.local_addr(), "/healthz").unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("\"index\":\"hnsw\""), "body: {text}");
    assert!(text.contains("\"gallery_size\":82"), "body: {text}");
    server.shutdown();
}

#[test]
fn forced_siamese_failure_degrades_but_still_answers_200() {
    let service_cfg = ServiceConfig { chaos_siamese_error: true, ..ServiceConfig::default() };
    let server = spawn(service_cfg, ServerConfig::default());
    let (status, body) = chaos::post_crop(server.local_addr(), &crop_bytes()).unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("\"degraded\":true"), "body: {text}");
    assert!(text.contains("\"pipeline\":\"hybrid\""), "body: {text}");

    let (_, health) = chaos::get(server.local_addr(), "/healthz").unwrap();
    let health = String::from_utf8(health).unwrap();
    assert!(!health.contains("\"degraded\":0"), "healthz must count the degradation: {health}");
    server.shutdown();
}

#[test]
fn shutdown_drains_and_returns_promptly() {
    let server = spawn(cheap_cfg(), ServerConfig::default());
    let addr = server.local_addr();
    assert_eq!(chaos::post_crop(addr, &crop_bytes()).unwrap().0, 200);
    let start = std::time::Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "graceful shutdown must not hang on an idle server"
    );
    // The listener is gone: new connections fail.
    assert!(std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
}
