//! The chaos harness: every fault injector and the full service-shaped
//! malformed-buffer corpus against a live server. The invariant under
//! every attack is the same — a typed response (or an observed
//! disconnect), no panic, and the server keeps answering well-formed
//! requests afterwards.

use std::sync::Arc;
use std::time::Duration;

use taor_core::prelude::{ServiceCase, ServiceExpect};
use taor_core::service_corpus;
use taor_core::wire::encode_rgb8;
use taor_imgproc::image::RgbImage;
use taor_serve::chaos::{self, ChaosOutcome};
use taor_serve::{RecognizerService, Server, ServerConfig, ServiceConfig};

fn crop_bytes() -> Vec<u8> {
    let mut img = RgbImage::new(48, 48);
    for y in 0..48 {
        for x in 0..48 {
            img.put_pixel(x, y, [(x * 3) as u8, (y * 4) as u8, 128]);
        }
    }
    encode_rgb8(&img)
}

fn spawn(server_cfg: ServerConfig) -> Server {
    let service = Arc::new(
        RecognizerService::new(ServiceConfig { use_siamese: false, ..ServiceConfig::default() })
            .expect("service builds"),
    );
    Server::spawn(service, server_cfg).expect("server binds")
}

/// The server is alive and sane: healthz 200, a valid crop answers 200.
fn assert_still_serving(server: &Server, context: &str) {
    let addr = server.local_addr();
    let (status, _) = chaos::get(addr, "/healthz").unwrap_or_else(|e| {
        panic!("healthz unreachable after {context}: {e}");
    });
    assert_eq!(status, 200, "healthz broken after {context}");
    let (status, _) = chaos::post_crop(addr, &crop_bytes()).unwrap_or_else(|e| {
        panic!("recognize unreachable after {context}: {e}");
    });
    assert_eq!(status, 200, "valid crops rejected after {context}");
}

/// Every buffer in the shared service corpus gets its contractual
/// answer over HTTP: decodable crops 200, malformed buffers 400.
#[test]
fn service_corpus_over_http_maps_to_200_and_400() {
    let server = spawn(ServerConfig::default());
    let addr = server.local_addr();
    for ServiceCase { name, bytes, expect } in service_corpus() {
        let (status, body) = chaos::post_crop(addr, &bytes)
            .unwrap_or_else(|e| panic!("case {name}: transport error {e}"));
        match expect {
            ServiceExpect::Decodes => {
                assert_eq!(status, 200, "case {name} should decode and answer");
                let text = String::from_utf8(body).unwrap();
                if name == "nan_pixels_f32" {
                    assert!(
                        !text.contains("\"quarantined_samples\":0"),
                        "case {name} must report quarantined samples: {text}"
                    );
                }
            }
            ServiceExpect::Rejected => {
                assert_eq!(status, 400, "case {name} should be rejected as malformed");
                let text = String::from_utf8(body).unwrap();
                assert!(text.contains("bad crop"), "case {name} body: {text}");
            }
        }
    }
    assert_still_serving(&server, "the service corpus");
    server.shutdown();
}

#[test]
fn truncated_body_answers_400_and_the_server_survives() {
    let server = spawn(ServerConfig::default());
    let outcome = chaos::truncated_body(server.local_addr());
    assert_eq!(outcome, ChaosOutcome::Responded(400), "truncated body must be a typed 400");
    assert_still_serving(&server, "a truncated body");
    server.shutdown();
}

#[test]
fn oversized_declaration_answers_413_and_the_server_survives() {
    let server = spawn(ServerConfig::default());
    let max = taor_serve::HttpLimits::default().max_body;
    let outcome = chaos::oversized_declaration(server.local_addr(), max + 1);
    assert_eq!(outcome, ChaosOutcome::Responded(413));
    assert_still_serving(&server, "an oversized declaration");
    server.shutdown();
}

#[test]
fn slow_loris_is_cut_off_by_the_read_budget() {
    let server =
        spawn(ServerConfig { read_budget: Duration::from_millis(300), ..ServerConfig::default() });
    let start = std::time::Instant::now();
    let outcome = chaos::slow_loris(server.local_addr(), 12, Duration::from_millis(100));
    // The server must answer 408 or drop the connection — and must not
    // let the dribbler hold a connection thread indefinitely.
    match outcome {
        ChaosOutcome::Responded(408)
        | ChaosOutcome::ConnectionClosed
        | ChaosOutcome::IoError(_) => {}
        other => panic!("slow-loris got an unexpected outcome: {other:?}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "the read budget must bound a slow-loris connection"
    );
    assert_still_serving(&server, "a slow-loris client");
    server.shutdown();
}

#[test]
fn mid_request_disconnect_is_the_clients_problem() {
    let server = spawn(ServerConfig::default());
    for _ in 0..3 {
        let outcome = chaos::disconnect_mid_request(server.local_addr());
        assert!(
            matches!(outcome, ChaosOutcome::ConnectionClosed | ChaosOutcome::IoError(_)),
            "unexpected outcome: {outcome:?}"
        );
    }
    assert_still_serving(&server, "mid-request disconnects");
    server.shutdown();
}

/// The kitchen sink: all injectors interleaved with valid traffic, then
/// a final health check. This is the chaos harness the issue asks for.
#[test]
fn interleaved_chaos_never_takes_the_server_down() {
    let server =
        spawn(ServerConfig { read_budget: Duration::from_millis(400), ..ServerConfig::default() });
    let addr = server.local_addr();
    for round in 0..2 {
        let _ = chaos::truncated_body(addr);
        assert_eq!(chaos::post_crop(addr, &crop_bytes()).unwrap().0, 200, "round {round}");
        let _ = chaos::disconnect_mid_request(addr);
        let _ = chaos::oversized_declaration(addr, 100 << 20);
        for ServiceCase { bytes, .. } in service_corpus() {
            let _ = chaos::post_crop(addr, &bytes);
        }
        assert_still_serving(&server, "an interleaved chaos round");
    }
    let (_, body) = chaos::get(addr, "/healthz").unwrap();
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("\"status\":\"ok\""), "final health: {text}");
    server.shutdown();
}
