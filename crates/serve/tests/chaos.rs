//! The chaos harness: every fault injector and the full service-shaped
//! malformed-buffer corpus against a live server. The invariant under
//! every attack is the same — a typed response (or an observed
//! disconnect), no panic, and the server keeps answering well-formed
//! requests afterwards.

use std::sync::Arc;
use std::time::Duration;

use taor_core::prelude::{ServiceCase, ServiceExpect};
use taor_core::service_corpus;
use taor_core::wire::encode_rgb8;
use taor_imgproc::image::RgbImage;
use taor_serve::chaos::{self, ChaosOutcome, PersistentClient};
use taor_serve::{RecognizerService, Server, ServerConfig, ServiceConfig};

fn crop_bytes() -> Vec<u8> {
    let mut img = RgbImage::new(48, 48);
    for y in 0..48 {
        for x in 0..48 {
            img.put_pixel(x, y, [(x * 3) as u8, (y * 4) as u8, 128]);
        }
    }
    encode_rgb8(&img)
}

fn spawn(server_cfg: ServerConfig) -> Server {
    let service = Arc::new(
        RecognizerService::new(ServiceConfig { use_siamese: false, ..ServiceConfig::default() })
            .expect("service builds"),
    );
    Server::spawn(service, server_cfg).expect("server binds")
}

/// The server is alive and sane: healthz 200, a valid crop answers 200.
fn assert_still_serving(server: &Server, context: &str) {
    let addr = server.local_addr();
    let (status, _) = chaos::get(addr, "/healthz").unwrap_or_else(|e| {
        panic!("healthz unreachable after {context}: {e}");
    });
    assert_eq!(status, 200, "healthz broken after {context}");
    let (status, _) = chaos::post_crop(addr, &crop_bytes()).unwrap_or_else(|e| {
        panic!("recognize unreachable after {context}: {e}");
    });
    assert_eq!(status, 200, "valid crops rejected after {context}");
}

/// Every buffer in the shared service corpus gets its contractual
/// answer over HTTP: decodable crops 200, malformed buffers 400.
#[test]
fn service_corpus_over_http_maps_to_200_and_400() {
    let server = spawn(ServerConfig::default());
    let addr = server.local_addr();
    for ServiceCase { name, bytes, expect } in service_corpus() {
        let (status, body) = chaos::post_crop(addr, &bytes)
            .unwrap_or_else(|e| panic!("case {name}: transport error {e}"));
        match expect {
            ServiceExpect::Decodes => {
                assert_eq!(status, 200, "case {name} should decode and answer");
                let text = String::from_utf8(body).unwrap();
                if name == "nan_pixels_f32" {
                    assert!(
                        !text.contains("\"quarantined_samples\":0"),
                        "case {name} must report quarantined samples: {text}"
                    );
                }
            }
            ServiceExpect::Rejected => {
                assert_eq!(status, 400, "case {name} should be rejected as malformed");
                let text = String::from_utf8(body).unwrap();
                assert!(text.contains("bad crop"), "case {name} body: {text}");
            }
        }
    }
    assert_still_serving(&server, "the service corpus");
    server.shutdown();
}

#[test]
fn truncated_body_answers_400_and_the_server_survives() {
    let server = spawn(ServerConfig::default());
    let outcome = chaos::truncated_body(server.local_addr());
    assert_eq!(outcome, ChaosOutcome::Responded(400), "truncated body must be a typed 400");
    assert_still_serving(&server, "a truncated body");
    server.shutdown();
}

#[test]
fn oversized_declaration_answers_413_and_the_server_survives() {
    let server = spawn(ServerConfig::default());
    let max = taor_serve::HttpLimits::default().max_body;
    let outcome = chaos::oversized_declaration(server.local_addr(), max + 1);
    assert_eq!(outcome, ChaosOutcome::Responded(413));
    assert_still_serving(&server, "an oversized declaration");
    server.shutdown();
}

#[test]
fn slow_loris_is_cut_off_by_the_read_budget() {
    let server =
        spawn(ServerConfig { read_budget: Duration::from_millis(300), ..ServerConfig::default() });
    let start = std::time::Instant::now();
    let outcome = chaos::slow_loris(server.local_addr(), 12, Duration::from_millis(100));
    // The server must answer 408 or drop the connection — and must not
    // let the dribbler hold a connection thread indefinitely.
    match outcome {
        ChaosOutcome::Responded(408)
        | ChaosOutcome::ConnectionClosed
        | ChaosOutcome::IoError(_) => {}
        other => panic!("slow-loris got an unexpected outcome: {other:?}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "the read budget must bound a slow-loris connection"
    );
    assert_still_serving(&server, "a slow-loris client");
    server.shutdown();
}

#[test]
fn mid_request_disconnect_is_the_clients_problem() {
    let server = spawn(ServerConfig::default());
    for _ in 0..3 {
        let outcome = chaos::disconnect_mid_request(server.local_addr());
        assert!(
            matches!(outcome, ChaosOutcome::ConnectionClosed | ChaosOutcome::IoError(_)),
            "unexpected outcome: {outcome:?}"
        );
    }
    assert_still_serving(&server, "mid-request disconnects");
    server.shutdown();
}

/// Keep-alive reuse: several request/response exchanges on one socket,
/// each body identical to what a fresh connection answers.
#[test]
fn one_connection_serves_many_requests_with_identical_bodies() {
    let server = spawn(ServerConfig::default());
    let addr = server.local_addr();
    let crop = crop_bytes();
    let (_, fresh_body) = chaos::post_crop(addr, &crop).expect("fresh-connection answer");

    let mut client = PersistentClient::connect(addr).expect("connects");
    for round in 0..4 {
        let (status, body) = client.post_crop(&crop).expect("reused-connection answer");
        assert_eq!(status, 200, "round {round}");
        assert_eq!(body, fresh_body, "round {round}: reuse must not change the body");
    }
    // A /healthz on the same socket too: reuse is not per-endpoint.
    let (status, _) = client.roundtrip("GET", "/healthz", &[], false).unwrap();
    assert_eq!(status, 200);
    server.shutdown();
}

/// Pipelined burst: requests written back-to-back in one write are
/// answered in order on the same socket, none treated as an over-read
/// protocol error.
#[test]
fn pipelined_burst_is_answered_in_order() {
    let server = spawn(ServerConfig::default());
    let statuses = chaos::pipelined_burst(server.local_addr(), 6).expect("burst answered");
    assert_eq!(statuses, vec![200; 6], "every pipelined request answered 200");
    assert_still_serving(&server, "a pipelined burst");
    server.shutdown();
}

/// The second request arriving in the very same read as the first
/// body — the exact over-read PR 7 condemned as "more body bytes than
/// Content-Length" — is now the next request.
#[test]
fn second_request_in_the_same_read_as_the_first_body() {
    let server = spawn(ServerConfig::default());
    let crop = crop_bytes();
    let mut client = PersistentClient::connect(server.local_addr()).expect("connects");
    let mut burst = PersistentClient::request_bytes("POST", "/recognize", &crop, &[], false);
    burst.extend_from_slice(&PersistentClient::request_bytes("GET", "/healthz", &[], &[], true));
    client.send_raw(&burst).expect("one write carries both requests");
    let (first, _) = client.read_response().expect("first response");
    let (second, body) = client.read_response().expect("second response");
    assert_eq!((first, second), (200, 200));
    assert!(String::from_utf8(body).unwrap().contains("\"status\":\"ok\""));
    server.shutdown();
}

/// A request split mid-`\r\n\r\n` terminator: the head parser must wait
/// for the rest of the terminator, not reject or duplicate.
#[test]
fn request_split_mid_terminator_still_parses() {
    let server = spawn(ServerConfig::default());
    let mut client = PersistentClient::connect(server.local_addr()).expect("connects");
    let raw = PersistentClient::request_bytes("GET", "/healthz", &[], &[], true);
    let cut = raw.len() - 2; // between "\r\n" and the final "\r\n"
    client.send_raw(&raw[..cut]).expect("first half");
    std::thread::sleep(Duration::from_millis(120));
    client.send_raw(&raw[cut..]).expect("second half");
    let (status, _) = client.read_response().expect("split request answered");
    assert_eq!(status, 200);
    assert_still_serving(&server, "a split terminator");
    server.shutdown();
}

/// A zero-`Content-Length` POST frames cleanly (empty body), decodes as
/// a bad crop (400), and does not poison the connection.
#[test]
fn zero_content_length_post_is_a_clean_400() {
    let server = spawn(ServerConfig::default());
    let mut client = PersistentClient::connect(server.local_addr()).expect("connects");
    let (status, body) = client.roundtrip("POST", "/recognize", &[], false).unwrap();
    assert_eq!(status, 400, "an empty crop is a bad crop, not a framing error");
    assert!(String::from_utf8(body).unwrap().contains("bad crop"));
    // Framing stayed clean: the same socket still answers.
    let (status, _) = client.roundtrip("GET", "/healthz", &[], false).unwrap();
    assert_eq!(status, 200, "the connection survives a zero-length POST");
    server.shutdown();
}

/// Smuggling-shaped framing (conflicting Content-Length pair with a
/// hidden second request): hard 400, connection closed, hidden request
/// never answered.
#[test]
fn conflicting_content_length_is_400_and_never_smuggles() {
    let server = spawn(ServerConfig::default());
    let (outcome, smuggle_answered) = chaos::smuggled_framing(server.local_addr());
    assert_eq!(outcome, ChaosOutcome::Responded(400), "conflicting framing must be rejected");
    assert!(!smuggle_answered, "the hidden request must never be served");
    assert_still_serving(&server, "a smuggling-shaped request");
    server.shutdown();
}

/// Half a request, then a silent-but-open socket: the read budget must
/// answer 408 (or close) instead of parking the connection thread.
#[test]
fn half_request_then_idle_is_cut_off_by_the_read_budget() {
    let server =
        spawn(ServerConfig { read_budget: Duration::from_millis(300), ..ServerConfig::default() });
    let start = std::time::Instant::now();
    let outcome = chaos::half_request_then_idle(server.local_addr(), Duration::from_secs(1));
    match outcome {
        ChaosOutcome::Responded(408)
        | ChaosOutcome::ConnectionClosed
        | ChaosOutcome::IoError(_) => {}
        other => panic!("half-request-then-idle got an unexpected outcome: {other:?}"),
    }
    assert!(start.elapsed() < Duration::from_secs(10), "the budget must bound the stall");
    assert_still_serving(&server, "a half-request-then-idle client");
    server.shutdown();
}

/// The per-connection request cap closes the socket after the limit,
/// with the final response marked `Connection: close`.
#[test]
fn max_requests_per_conn_rotates_the_connection() {
    let server = spawn(ServerConfig { max_requests_per_conn: 2, ..ServerConfig::default() });
    let mut client = PersistentClient::connect(server.local_addr()).expect("connects");
    let (a, _) = client.roundtrip("GET", "/healthz", &[], false).unwrap();
    let (b, _) = client.roundtrip("GET", "/healthz", &[], false).unwrap();
    assert_eq!((a, b), (200, 200));
    assert!(client.server_closed(), "the server must close after the request cap");
    assert_still_serving(&server, "a rotated connection");
    server.shutdown();
}

/// `Connection: close` from the client is honoured even when the server
/// would happily keep the socket alive.
#[test]
fn client_requested_close_is_honoured() {
    let server = spawn(ServerConfig::default());
    let mut client = PersistentClient::connect(server.local_addr()).expect("connects");
    let (status, _) = client.roundtrip("GET", "/healthz", &[], true).unwrap();
    assert_eq!(status, 200);
    assert!(client.server_closed(), "Connection: close must end the connection");
    server.shutdown();
}

/// An idle kept-alive connection must not stall graceful shutdown:
/// the drain refuses new requests and closes the socket promptly.
#[test]
fn shutdown_drains_promptly_past_an_idle_kept_alive_connection() {
    let server = spawn(ServerConfig {
        // Idle timeout far longer than the drain should take: only the
        // shutdown poll can close this connection in time.
        idle_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    });
    let mut client = PersistentClient::connect(server.local_addr()).expect("connects");
    let (status, _) = client.roundtrip("GET", "/healthz", &[], false).unwrap();
    assert_eq!(status, 200);
    let start = std::time::Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "an idle kept-alive socket held shutdown for {:?}",
        start.elapsed()
    );
    assert!(client.server_closed(), "drain must close the idle connection");
}

/// The kitchen sink: all injectors interleaved with valid traffic, then
/// a final health check. This is the chaos harness the issue asks for.
#[test]
fn interleaved_chaos_never_takes_the_server_down() {
    let server =
        spawn(ServerConfig { read_budget: Duration::from_millis(400), ..ServerConfig::default() });
    let addr = server.local_addr();
    for round in 0..2 {
        let _ = chaos::truncated_body(addr);
        assert_eq!(chaos::post_crop(addr, &crop_bytes()).unwrap().0, 200, "round {round}");
        let _ = chaos::disconnect_mid_request(addr);
        let _ = chaos::oversized_declaration(addr, 100 << 20);
        let _ = chaos::smuggled_framing(addr);
        let _ = chaos::pipelined_burst(addr, 3);
        let _ = chaos::half_request_then_idle(addr, Duration::from_millis(600));
        for ServiceCase { bytes, .. } in service_corpus() {
            let _ = chaos::post_crop(addr, &bytes);
        }
        assert_still_serving(&server, "an interleaved chaos round");
    }
    let (_, body) = chaos::get(addr, "/healthz").unwrap();
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("\"status\":\"ok\""), "final health: {text}");
    server.shutdown();
}
