//! # taor-serve
//!
//! Recognition-as-a-service over the pipelines of `taor-core`: a
//! dependency-free HTTP/1.1 server that answers "what is this crop?"
//! under the failure modes a robot fleet actually produces — slow
//! clients, malformed bodies, overload bursts, poisoned pixels.
//!
//! The layering (DESIGN.md §11) is an explicit ladder, crossed in
//! order by every request:
//!
//! 1. **Admission** — a bounded queue; a full queue sheds the request
//!    with `429 Retry-After` instead of queueing unboundedly
//!    ([`robust::AdmissionQueue`]).
//! 2. **Deadline** — every request carries a wall-clock budget; work
//!    whose budget expired is answered with a typed `504`, never
//!    silently stale ([`robust::Deadline`]).
//! 3. **Batch** — concurrent requests that reach the workers together
//!    are micro-batched into one `[B,3,H,W]` tower forward; per-item
//!    results are bit-identical regardless of grouping, so batching is
//!    invisible in the responses ([`service::RecognizerService`]).
//! 4. **Degrade** — when the Siamese pipeline fails typed or the
//!    remaining budget is too small for it, the service falls back to
//!    the cheap histogram/Hu pipelines and labels the response
//!    `degraded: true`; every fallback is counted in the
//!    [`Diagnostics`](taor_core::Diagnostics) ledger surfaced at
//!    `/healthz`.
//!
//! Each request is additionally isolated under `catch_unwind`
//! ([`robust::isolate`]): a panic in one request is that request's
//! `500`, not the process's abort.
//!
//! Connections persist (DESIGN.md §11.4): HTTP/1.1 keep-alive is the
//! default, pipelined requests are re-framed by [`http::ConnectionReader`]
//! instead of rejected, and reuse is bounded by an idle timeout and a
//! max-requests-per-connection cap. Ambiguous framing (duplicate
//! `Content-Length`, `Transfer-Encoding`) is a hard 400 — the
//! request-smuggling shapes die at the parser.
//!
//! The crate's only unsafe code is the two-line SIGTERM handler
//! installation in [`signal`].

#![deny(unsafe_op_in_unsafe_fn)]

pub mod chaos;
pub mod http;
pub mod robust;
pub mod server;
pub mod service;
pub mod signal;

pub use http::{ConnectionReader, HttpError, HttpLimits, Request, Response};
pub use robust::{isolate, AdmissionQueue, AdmitError, Deadline};
pub use server::{Server, ServerConfig};
pub use service::{RecognizerService, ServiceConfig, ServiceResponse};
