//! The HTTP server: connection threads in front, recognition workers
//! behind a bounded admission queue, and the status mapping that makes
//! every failure mode visible to the client.
//!
//! | condition | status |
//! |---|---|
//! | recognised crop | 200 (body may say `degraded: true`) |
//! | malformed HTTP or wire crop | 400 |
//! | unknown path | 404 |
//! | method mismatch | 405 |
//! | client too slow delivering the request | 408 |
//! | declared body over the cap | 413 |
//! | admission queue full | 429 + `Retry-After` |
//! | panic inside one request | 500 |
//! | shutting down | 503 |
//! | deadline missed | 504 |
//!
//! Connection threads only parse, enqueue and respond; recognition
//! happens on a fixed pool of workers that drain the queue in
//! micro-batches. Connections persist (HTTP/1.1 keep-alive, pipelining
//! included) under explicit per-connection limits: an idle timeout, a
//! max-requests-per-connection cap, and the per-request header/body/
//! read budgets. Shutdown is graceful: the accept loop stops, kept-
//! alive sockets refuse new requests while in-flight responses finish
//! (bounded by their read budgets and deadlines), queued work drains,
//! workers exit.

use crate::http::{write_response, ConnectionReader, HttpError, HttpLimits, Request, Response};
use crate::robust::{isolate, AdmissionQueue, AdmitError, Deadline};
use crate::service::RecognizerService;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;
use taor_model::sync::{AtomicBool, Ordering};

use taor_core::wire::DecodeStats;
use taor_imgproc::image::RgbImage;

/// Tunables of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick.
    pub addr: String,
    /// Recognition worker threads.
    pub workers: usize,
    /// Admission queue capacity; beyond it requests are shed (429).
    pub queue_cap: usize,
    /// Micro-batch cap: how many queued requests one worker wakeup may
    /// drain into a single batched forward.
    pub batch: usize,
    /// Per-request deadline from admission to answer.
    pub deadline: Duration,
    /// When less than this budget remains at recognition time, skip the
    /// expensive pipeline and answer degraded from the cheap one.
    pub degrade_margin: Duration,
    /// Total budget for reading one request off the socket.
    pub read_budget: Duration,
    /// Reuse connections (HTTP/1.1 keep-alive) instead of closing after
    /// every response. Clients asking `Connection: close` are honoured
    /// either way.
    pub keep_alive: bool,
    /// Requests served on one connection before the server closes it
    /// (a rotation bound so no client monopolises a thread forever).
    pub max_requests_per_conn: usize,
    /// How long a kept-alive connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// Transport size limits.
    pub limits: HttpLimits,
    /// Honour the `X-Taor-Test-Delay-Ms` header (tests only: lets a
    /// client saturate the queue deterministically).
    pub allow_test_delay: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_cap: 64,
            batch: 4,
            deadline: Duration::from_secs(2),
            degrade_margin: Duration::from_millis(100),
            read_budget: Duration::from_secs(2),
            keep_alive: true,
            max_requests_per_conn: 128,
            idle_timeout: Duration::from_secs(5),
            limits: HttpLimits::default(),
            allow_test_delay: false,
        }
    }
}

/// What a worker sends back for one job.
enum WorkOutcome {
    Answered(Box<crate::service::ServiceResponse>),
    TimedOut,
    Panicked(String),
}

/// One admitted request.
struct Job {
    image: RgbImage,
    stats: DecodeStats,
    deadline: Deadline,
    test_delay: Duration,
    resp: mpsc::SyncSender<WorkOutcome>,
}

impl Job {
    /// Deliver the outcome to the waiting connection thread. A send
    /// error means the requester stopped waiting (its `recv_timeout`
    /// safety margin elapsed and it already answered 500); there is
    /// nobody left to tell, so the outcome is dropped by design.
    fn respond(self, outcome: WorkOutcome) {
        // taor-lint: allow(err::swallowed-result) — disconnected
        // receiver = requester gave up; dropping the outcome is the
        // contract (see recv_timeout in handle_recognize).
        let _ = self.resp.send(outcome);
    }
}

/// A running server; dropping it shuts it down gracefully.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    queue: Arc<AdmissionQueue<Job>>,
}

impl Server {
    /// Bind, start the accept loop and the worker pool.
    pub fn spawn(service: Arc<RecognizerService>, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let queue = Arc::new(AdmissionQueue::new(cfg.queue_cap));
        let shutdown = Arc::new(AtomicBool::new(false));

        let workers: Vec<JoinHandle<()>> = (0..cfg.workers.max(1))
            .map(|_| {
                let service = Arc::clone(&service);
                let queue = Arc::clone(&queue);
                let cfg = cfg.clone();
                std::thread::spawn(move || worker_loop(&service, &queue, &cfg))
            })
            .collect();

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || accept_loop(&listener, &service, &queue, &cfg, &shutdown))
        };

        Ok(Server { addr, shutdown, accept: Some(accept), workers, queue })
    }

    /// The bound address (with the OS-assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Items currently waiting for a worker.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Graceful shutdown: stop accepting, finish open connections,
    /// drain the queue, join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // Ordering::SeqCst — cold shutdown handoff; strongest ordering
        // keeps the flag trivially correct.
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            // taor-lint: allow(err::swallowed-result) — a panicked
            // accept thread leaves nothing to recover; stop() runs in
            // Drop and must not double-panic.
            let _ = h.join();
        }
        self.queue.close();
        for h in self.workers.drain(..) {
            // taor-lint: allow(err::swallowed-result) — a panicked
            // worker already answered its jobs through isolate(); see
            // above, Drop must not double-panic.
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<RecognizerService>,
    queue: &Arc<AdmissionQueue<Job>>,
    cfg: &ServerConfig,
    shutdown: &Arc<AtomicBool>,
) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    // Ordering::SeqCst — cold shutdown handoff; strongest ordering
    // keeps the flag trivially correct.
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                conns.retain(|h| !h.is_finished());
                let service = Arc::clone(service);
                let queue = Arc::clone(queue);
                let cfg = cfg.clone();
                let shutdown = Arc::clone(shutdown);
                conns.push(std::thread::spawn(move || {
                    handle_conn(stream, &service, &queue, &cfg, &shutdown)
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Open connections are bounded by their read budgets and deadlines.
    for h in conns {
        // taor-lint: allow(err::swallowed-result) — a connection thread
        // that panicked has already dropped its socket (the client sees
        // the close); draining must reach every remaining handle.
        let _ = h.join();
    }
}

/// How often a blocked socket read wakes up to re-check deadlines and
/// the shutdown flag. Purely a poll interval: correctness comes from
/// the deadlines, this only bounds how stale they can be observed.
const READ_POLL: Duration = Duration::from_millis(100);

/// One connection: read requests until the client closes, a limit
/// trips, a transport error poisons the framing, or the server drains.
///
/// Responses go out in request order (pipelined clients get pipelined
/// answers); each response's `Connection` header tells the client
/// whether the server will read another request.
fn handle_conn(
    stream: TcpStream,
    service: &Arc<RecognizerService>,
    queue: &Arc<AdmissionQueue<Job>>,
    cfg: &ServerConfig,
    shutdown: &Arc<AtomicBool>,
) {
    // taor-lint: allow(err::swallowed-result) — best-effort socket
    // tuning: on failure reads stay blocking and the connection is
    // still bounded by its read budget and deadline.
    let _ = stream.set_read_timeout(Some(READ_POLL));
    // taor-lint: allow(err::swallowed-result) — same best-effort
    // tuning as the read timeout above.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let mut reader = ConnectionReader::new(stream);
    // Ordering::SeqCst — cold shutdown handoff; strongest ordering
    // keeps the flag trivially correct.
    let draining = || shutdown.load(Ordering::SeqCst);
    let mut served = 0usize;
    loop {
        if draining() {
            break; // refuse new requests on the kept-alive socket
        }
        // The first request must start arriving within the read budget
        // (the PR 7 contract); between kept-alive requests the client
        // gets the idle timeout instead.
        let idle = Deadline::after(if served == 0 { cfg.read_budget } else { cfg.idle_timeout });
        let (response, reuse) =
            match reader.next_request(&cfg.limits, &idle, cfg.read_budget, &draining) {
                // Quiescent: EOF, idle expiry, or drain — close quietly.
                Ok(None) => break,
                Ok(Some(req)) => {
                    served += 1;
                    let reuse = cfg.keep_alive
                        && req.keep_alive
                        && served < cfg.max_requests_per_conn
                        && !draining();
                    (route(&req, service, queue, cfg), reuse)
                }
                // Mid-request failures poison the framing: answer typed,
                // then close rather than guess where the next request
                // starts.
                Err(e) => (transport_error_response(&e), false),
            };
        if write_response(reader.get_mut(), &response, reuse).is_err() || !reuse {
            break;
        }
    }
    // taor-lint: allow(err::swallowed-result) — courtesy FIN on a
    // connection that is closing anyway; the peer may already be gone.
    let _ = reader.into_inner().shutdown(std::net::Shutdown::Both);
}

fn transport_error_response(e: &HttpError) -> Response {
    match e {
        HttpError::Malformed(_) => Response::error(400, &e.to_string()),
        HttpError::BodyTooLarge { .. } => Response::error(413, &e.to_string()),
        HttpError::Timeout => Response::error(408, &e.to_string()),
        // The write will almost certainly fail too; answer anyway.
        HttpError::Disconnected | HttpError::Io(_) => Response::error(400, &e.to_string()),
    }
}

fn route(
    req: &Request,
    service: &Arc<RecognizerService>,
    queue: &Arc<AdmissionQueue<Job>>,
    cfg: &ServerConfig,
) -> Response {
    let path = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => healthz(service, queue),
        ("POST", "/recognize") => recognize(req, service, queue, cfg),
        (_, "/healthz") | (_, "/recognize") => {
            Response::error(405, &format!("{} not allowed here", req.method))
        }
        _ => Response::error(404, &format!("no route for {path}")),
    }
}

/// Liveness + the JSON snapshot of the degradation ledger.
fn healthz(service: &Arc<RecognizerService>, queue: &Arc<AdmissionQueue<Job>>) -> Response {
    #[derive(serde::Serialize)]
    struct Health {
        status: String,
        reference_views: u64,
        gallery_size: u64,
        index: String,
        queue_depth: u64,
        queue_capacity: u64,
        diagnostics: taor_core::DiagnosticsReport,
    }
    let health = Health {
        status: "ok".to_string(),
        reference_views: service.reference_count() as u64,
        gallery_size: service.gallery_size() as u64,
        index: service.index_label().to_string(),
        queue_depth: queue.depth() as u64,
        queue_capacity: queue.capacity() as u64,
        diagnostics: service.diagnostics(),
    };
    Response::json(200, serde_json::to_string(&health).unwrap_or_default())
}

fn recognize(
    req: &Request,
    service: &Arc<RecognizerService>,
    queue: &Arc<AdmissionQueue<Job>>,
    cfg: &ServerConfig,
) -> Response {
    let test_delay = if cfg.allow_test_delay {
        req.header("x-taor-test-delay-ms")
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(Duration::ZERO)
    } else {
        Duration::ZERO
    };

    let (image, stats) = match service.decode(&req.body) {
        Ok(decoded) => decoded,
        Err(e) => return Response::error(400, &format!("bad crop: {e}")),
    };

    let deadline = Deadline::after(cfg.deadline);
    let (tx, rx) = mpsc::sync_channel(1);
    let job = Job { image, stats, deadline, test_delay, resp: tx };
    match queue.try_push(job) {
        Err(AdmitError::Shed { depth }) => {
            service.record_shed();
            let mut resp = Response::error(429, &format!("admission queue full ({depth} queued)"));
            resp.headers.push(("Retry-After", "1".to_string()));
            resp
        }
        Err(AdmitError::Closed) => Response::error(503, "shutting down"),
        Ok(()) => {
            // Workers answer Timeout themselves; the extra grace only
            // covers a worker that died mid-request.
            let wait = cfg.deadline + test_delay + Duration::from_secs(5);
            match rx.recv_timeout(wait) {
                Ok(WorkOutcome::Answered(body)) => {
                    Response::json(200, serde_json::to_string(&*body).unwrap_or_default())
                }
                Ok(WorkOutcome::TimedOut) => Response::error(504, "deadline exceeded"),
                Ok(WorkOutcome::Panicked(msg)) => {
                    Response::error(500, &format!("request failed: {msg}"))
                }
                Err(_) => {
                    service.record_timeout();
                    Response::error(504, "worker did not answer in time")
                }
            }
        }
    }
}

/// Worker: drain micro-batches, enforce deadlines, isolate panics.
fn worker_loop(
    service: &Arc<RecognizerService>,
    queue: &Arc<AdmissionQueue<Job>>,
    cfg: &ServerConfig,
) {
    while let Some(batch) = queue.pop_batch(cfg.batch, Duration::from_millis(50)) {
        if batch.is_empty() {
            continue;
        }
        // Deterministic-test hook: the configured delay simulates slow
        // recognition while this worker holds the slot.
        let delay = batch.iter().map(|j| j.test_delay).max().unwrap_or(Duration::ZERO);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }

        let mut live = Vec::new();
        for job in batch {
            if job.deadline.expired() {
                service.record_timeout();
                job.respond(WorkOutcome::TimedOut);
            } else {
                live.push(job);
            }
        }
        if live.is_empty() {
            continue;
        }

        let items: Vec<(RgbImage, DecodeStats, bool)> = live
            .iter()
            .map(|j| (j.image.clone(), j.stats, j.deadline.remaining() >= cfg.degrade_margin))
            .collect();
        match isolate(|| service.recognize_batch(&items)) {
            Ok(responses) if responses.len() == live.len() => {
                for (job, resp) in live.into_iter().zip(responses) {
                    if job.deadline.expired() {
                        service.record_timeout();
                        job.respond(WorkOutcome::TimedOut);
                    } else {
                        job.respond(WorkOutcome::Answered(Box::new(resp)));
                    }
                }
            }
            _ => {
                // The batch panicked (or answered short): retry each
                // job alone behind its own wall so only the poisoned
                // request fails.
                for job in live {
                    let item = [(
                        job.image.clone(),
                        job.stats,
                        job.deadline.remaining() >= cfg.degrade_margin,
                    )];
                    match isolate(|| service.recognize_batch(&item).into_iter().next()) {
                        Ok(Some(resp)) => {
                            job.respond(WorkOutcome::Answered(Box::new(resp)));
                        }
                        Ok(None) => {
                            job.respond(WorkOutcome::Panicked("empty batch result".to_string()));
                        }
                        Err(msg) => {
                            job.respond(WorkOutcome::Panicked(msg));
                        }
                    }
                }
            }
        }
    }
}
