// taor-lint: allow(det::wall-clock) — deadlines, queue waits and shutdown polling are wall-clock by nature; nothing in this module feeds pipeline outputs, which stay a pure function of the request bytes.
//! Robustness primitives: deadlines, bounded admission, panic walls.
//!
//! This module is the testable core of the service's overload story,
//! deliberately free of any HTTP or recognition detail:
//!
//! * [`Deadline`] — a wall-clock budget carried by each request.
//! * [`AdmissionQueue`] — a bounded MPMC queue whose `try_push` *sheds*
//!   instead of blocking, and whose `pop_batch` hands workers up to a
//!   micro-batch of items at once. The implementation lives in
//!   taor-model's protocol core (`proto::on_shim`), where `cargo test
//!   -p taor-model` exhaustively model-checks the shed and
//!   close-and-drain paths; this module re-exports it unchanged and
//!   keeps the behavioural tests below as the std-flavor regression
//!   suite.
//! * [`isolate`] — `catch_unwind` with the panic payload rendered to a
//!   string, so one poisoned request cannot take the process down.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

pub use taor_model::proto::on_shim::AdmissionQueue;
pub use taor_model::proto::AdmitError;

/// A wall-clock budget. Requests carry one from admission to response;
/// work that outlives it is answered with a typed timeout instead of
/// being completed stale.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        let now = Instant::now();
        Deadline { at: now.checked_add(budget).unwrap_or(now) }
    }

    /// Has the budget run out?
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Budget left, zero once expired.
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// Run `f` behind a panic wall. A panic becomes an `Err` carrying the
/// rendered payload; the caller answers that one request with a 500 and
/// keeps serving.
pub fn isolate<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn deadline_expires_and_reports_remaining() {
        let d = Deadline::after(Duration::from_millis(30));
        assert!(!d.expired());
        assert!(d.remaining() <= Duration::from_millis(30));
        std::thread::sleep(Duration::from_millis(40));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
    }

    #[test]
    fn queue_sheds_at_capacity_instead_of_blocking() {
        let q = AdmissionQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        // The shed depth is the locked snapshot at rejection: exactly
        // the capacity, never more (pushes are guarded by the same
        // lock), whatever pops race afterwards.
        match q.try_push(3) {
            Err(AdmitError::Shed { depth }) => assert_eq!(depth, q.capacity()),
            other => panic!("expected a shed, got {other:?}"),
        }
        assert_eq!(q.depth(), 2);
        let batch = q.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![1, 2]);
        assert!(q.try_push(3).is_ok());
    }

    /// Sheds racing concurrent pops still report `depth == capacity`:
    /// the snapshot is taken under the lock, so a pop that lands before
    /// or after the rejection cannot make the value under- or overshoot.
    #[test]
    fn shed_depth_is_capacity_even_under_racing_pops() {
        let q = Arc::new(AdmissionQueue::new(3));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let popper = {
            let q = Arc::clone(&q);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Ordering::Relaxed — a test stop flag; no data is
                // published through it.
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let _ = q.pop_batch(1, Duration::ZERO);
                }
            })
        };
        let mut sheds = 0usize;
        for i in 0..10_000 {
            if let Err(AdmitError::Shed { depth }) = q.try_push(i) {
                assert_eq!(depth, q.capacity(), "shed depth must equal capacity");
                sheds += 1;
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        popper.join().unwrap();
        assert!(sheds > 0, "the push loop must outrun the single-item popper");
    }

    #[test]
    fn pop_batch_respects_the_micro_batch_cap() {
        let q = AdmissionQueue::new(8);
        for i in 0..6 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.pop_batch(4, Duration::ZERO).unwrap().len(), 4);
        assert_eq!(q.pop_batch(4, Duration::ZERO).unwrap().len(), 2);
        assert!(q.pop_batch(4, Duration::from_millis(5)).unwrap().is_empty());
    }

    #[test]
    fn close_rejects_producers_and_drains_consumers() {
        let q = AdmissionQueue::new(4);
        q.try_push("job").unwrap();
        q.close();
        assert_eq!(q.try_push("late"), Err(AdmitError::Closed));
        assert_eq!(q.pop_batch(4, Duration::ZERO), Some(vec!["job"]));
        assert_eq!(q.pop_batch(4, Duration::ZERO), None);
    }

    #[test]
    fn close_wakes_a_blocked_consumer() {
        let q = Arc::new(AdmissionQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            // Long wait: only the close() should end it promptly.
            q2.pop_batch(4, Duration::from_secs(10))
        });
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn queue_is_mpmc_and_loses_nothing() {
        let q = Arc::new(AdmissionQueue::new(1024));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        while q.try_push(p * 100 + i).is_err() {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match q.pop_batch(16, Duration::from_millis(20)) {
                            None => break got,
                            Some(batch) => got.extend(batch),
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<i32> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        let expect: Vec<i32> = (0..4).flat_map(|p| (0..100).map(move |i| p * 100 + i)).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn isolate_turns_panics_into_errors() {
        assert_eq!(isolate(|| 7), Ok(7));
        let err = isolate(|| panic!("poisoned request {}", 3)).unwrap_err();
        assert!(err.contains("poisoned request 3"));
    }
}
