//! The recognition service: precomputed gallery artifacts behind a
//! deterministic, degradable `recognize` entry point.
//!
//! Everything immutable is built once at startup and `Arc`-shared from
//! then on: the preprocessed reference views (histograms, Hu moments,
//! contours) inside the fallback [`Recognizer`], the seeded
//! Normalized-X-Corr network, and the gallery's tower embeddings. A
//! request therefore costs one crop decode, one (optionally
//! micro-batched) tower forward and a head sweep over the gallery —
//! never a re-preparation of the reference set.
//!
//! The degrade ladder: the Siamese pipeline is the primary answer;
//! when it fails with a typed error (or is deliberately skipped
//! because the request's remaining deadline budget is too small), the
//! service answers from the cheap histogram/Hu pipelines instead and
//! labels the response `degraded: true`. Every fallback is counted in
//! the shared [`Diagnostics`] ledger.

use taor_core::prelude::*;
use taor_core::wire::{decode_crop, DecodeStats};
use taor_core::{Error, Result};
use taor_data::{shapenet_set1, ObjectClass};
use taor_features::{
    BinaryDescriptors, FloatDescriptors, HnswIndex, HnswParams, MihIndex, MihParams,
};
use taor_imgproc::cmp::nan_last_f64;
use taor_imgproc::image::RgbImage;
use taor_nn::{NetConfig, NormXCorrNet, Tensor, TensorError};

/// How the service is assembled.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Seed for the reference gallery and the network init.
    pub seed: u64,
    /// The cheap fallback pipeline (and the primary one when
    /// `use_siamese` is off).
    pub method: Method,
    /// Whether the Siamese pipeline is the primary answer.
    pub use_siamese: bool,
    /// Network architecture. The default is a small deterministic net
    /// sized for service latency, not accuracy.
    pub net: NetConfig,
    /// Chaos knob: force the Siamese step to fail with a typed error,
    /// exercising the degrade ladder deterministically.
    pub chaos_siamese_error: bool,
    /// Gallery index for the Siamese path. `Flat` runs the head over
    /// every gallery view (the original behaviour); `Hnsw` shortlists by
    /// embedding L2 via a graph index; `Mih` shortlists by Hamming
    /// distance over sign-projected embedding bits. Non-flat modes score
    /// only the shortlist — classes absent from it keep an infinite
    /// distance and rank last.
    pub index: AnnIndexMode,
    /// How many gallery views a non-flat index hands to the head.
    pub shortlist: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            seed: 2019,
            method: Method::default(),
            use_siamese: true,
            net: NetConfig {
                height: 32,
                width: 24,
                c1: 4,
                c2: 4,
                c3: 4,
                dense: 8,
                ..NetConfig::default()
            },
            chaos_siamese_error: false,
            index: AnnIndexMode::Flat,
            shortlist: 16,
        }
    }
}

/// One recognition answer, as serialised into the response body.
///
/// Deliberately free of timing fields: identical crop bytes must yield
/// byte-identical bodies across thread widths and server spawns.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ServiceResponse {
    /// Top-1 class name.
    pub class: String,
    /// WordNet synset id of the top-1 class.
    pub synset: String,
    /// Softmin-margin confidence in `[0, 1]`.
    pub confidence: f64,
    /// Full hypothesis ranking, best first.
    pub ranking: Vec<String>,
    /// Which pipeline answered: `siamese`, `hybrid`, `shape`, `color`.
    pub pipeline: String,
    /// Whether this answer came from a fallback path.
    pub degraded: bool,
    /// Non-finite samples quarantined while decoding the crop.
    pub quarantined_samples: u64,
}

/// The shared immutable artifacts plus the per-run ledger.
pub struct RecognizerService {
    fallback: Recognizer,
    net: Option<NormXCorrNet>,
    /// Tower embeddings of every gallery view, stacked `[N, …]`.
    ref_embeds: Option<Tensor>,
    /// Class of each stacked gallery view, row-aligned with
    /// `ref_embeds`.
    ref_classes: Vec<ObjectClass>,
    /// Per-view embedding tensors (only populated for non-flat indexes,
    /// where shortlisted subsets must be restacked per query).
    ref_embed_views: Vec<Tensor>,
    /// The shortlist index over the gallery embeddings.
    gallery_index: GalleryIndex,
    cfg: ServiceConfig,
    diag: Diagnostics,
}

/// The built form of [`ServiceConfig::index`].
enum GalleryIndex {
    Flat,
    Hnsw(Box<HnswIndex>),
    Mih(Box<MihIndex>),
}

/// Bits in the sign-projection signature the MIH mode hashes.
const SIG_BITS: usize = 256;
const SIG_BYTES: usize = SIG_BITS / 8;

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SimHash-style signature: each bit is the sign of the embedding's dot
/// product with a seeded Rademacher (±1) vector. Nearby embeddings agree
/// on most bits, so Hamming shortlists approximate L2 shortlists. Purely
/// a function of `(row, seed)` — bit-stable across spawns and widths.
fn sign_signature(row: &[f32], seed: u64) -> Vec<u8> {
    let mut out = vec![0u8; SIG_BYTES];
    for bit in 0..SIG_BITS {
        let mut acc = 0.0f64;
        for (i, &v) in row.iter().enumerate() {
            let h = splitmix64(seed ^ (((bit as u64) << 32) | i as u64));
            let w = if h & 1 == 1 { 1.0 } else { -1.0 };
            acc += w * f64::from(v);
        }
        if acc > 0.0 {
            if let Some(byte) = out.get_mut(bit / 8) {
                *byte |= 1 << (bit % 8);
            }
        }
    }
    out
}

fn method_label(method: &Method) -> &'static str {
    match method {
        Method::Shape(_) => "shape",
        Method::Color(_) => "color",
        Method::Hybrid(_) => "hybrid",
    }
}

impl RecognizerService {
    /// Build every immutable artifact once: reference views, network,
    /// gallery embeddings.
    pub fn new(cfg: ServiceConfig) -> Result<Self> {
        let catalog = shapenet_set1(cfg.seed);
        let fallback = Recognizer::try_new(&catalog, cfg.method, Background::Black)?;
        let (net, ref_embeds, ref_classes) = if cfg.use_siamese {
            let mut net_cfg = cfg.net.clone();
            net_cfg.seed = cfg.seed;
            let net = NormXCorrNet::new(net_cfg.clone())?;
            let tensors: Vec<Tensor> =
                catalog.images.iter().map(|li| image_to_tensor(&li.image, &net_cfg)).collect();
            let views: Vec<&Tensor> = tensors.iter().collect();
            let stacked = Tensor::stack_batch(&views)?;
            let embeds = net.tower_embed(&stacked)?;
            let classes = catalog.images.iter().map(|li| li.class).collect();
            (Some(net), Some(embeds), classes)
        } else {
            (None, None, Vec::new())
        };
        let (gallery_index, ref_embed_views) = match (&ref_embeds, cfg.index) {
            (Some(embeds), AnnIndexMode::Hnsw) => {
                let views = embeds.split_batch()?;
                let row_len = views.first().map_or(0, |v| v.data().len());
                let mut descs = FloatDescriptors::new(row_len);
                for v in &views {
                    descs.push(v.data());
                }
                let params = HnswParams { seed: cfg.seed, ..HnswParams::default() };
                let index = HnswIndex::build(descs, params).map_err(Error::from)?;
                (GalleryIndex::Hnsw(Box::new(index)), views)
            }
            (Some(embeds), AnnIndexMode::Mih) => {
                let views = embeds.split_batch()?;
                let mut descs = BinaryDescriptors::new(SIG_BYTES);
                for v in &views {
                    descs.push(&sign_signature(v.data(), cfg.seed));
                }
                let index = MihIndex::build(descs, MihParams::default()).map_err(Error::from)?;
                (GalleryIndex::Mih(Box::new(index)), views)
            }
            _ => (GalleryIndex::Flat, Vec::new()),
        };
        Ok(RecognizerService {
            fallback,
            net,
            ref_embeds,
            ref_classes,
            ref_embed_views,
            gallery_index,
            cfg,
            diag: Diagnostics::new(),
        })
    }

    /// A service over the same gallery artifacts and the same ledger.
    /// `Recognizer` is `Arc`-shared internally, so this is cheap; the
    /// network weights are cloned (small, immutable after init).
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Number of reference views in the gallery.
    pub fn reference_count(&self) -> usize {
        self.fallback.reference_count()
    }

    /// Number of views the active gallery (Siamese embeddings when that
    /// pipeline is on, otherwise the fallback reference set) holds.
    pub fn gallery_size(&self) -> usize {
        if self.ref_classes.is_empty() {
            self.fallback.reference_count()
        } else {
            self.ref_classes.len()
        }
    }

    /// The index actually built over the gallery (`flat` when the
    /// Siamese pipeline is off, whatever the config asked for).
    pub fn index_label(&self) -> &'static str {
        match &self.gallery_index {
            GalleryIndex::Flat => "flat",
            GalleryIndex::Hnsw(_) => "hnsw",
            GalleryIndex::Mih(_) => "mih",
        }
    }

    /// Decode a wire crop (typed errors for malformed buffers).
    pub fn decode(&self, bytes: &[u8]) -> Result<(RgbImage, DecodeStats)> {
        decode_crop(bytes)
    }

    /// Merged degradation ledger: the fallback recogniser's counters
    /// plus the service-level ones (shed, timeouts, siamese fallbacks).
    pub fn diagnostics(&self) -> DiagnosticsReport {
        let merged = Diagnostics::new();
        merged.merge(&self.diag);
        let r = self.fallback.diagnostics();
        merged.record_nan_scores(r.nan_scores);
        merged.record_degraded(r.degraded);
        merged.record_shed(r.shed);
        merged.record_timeouts(r.timeouts);
        merged.report()
    }

    /// Record a request shed at the admission boundary.
    pub fn record_shed(&self) {
        self.diag.record_shed(1);
    }

    /// Record a request that missed its deadline.
    pub fn record_timeout(&self) {
        self.diag.record_timeouts(1);
    }

    /// Recognise one decoded crop. `allow_expensive` gates the Siamese
    /// pipeline: overload control passes `false` to drop straight to
    /// the cheap pipelines (a labelled degradation, not an error).
    pub fn recognize_image(
        &self,
        img: &RgbImage,
        stats: DecodeStats,
        allow_expensive: bool,
    ) -> ServiceResponse {
        self.recognize_batch(&[(img.clone(), stats, allow_expensive)])
            .into_iter()
            .next()
            .unwrap_or_else(|| self.fallback_response(img, stats, true))
    }

    /// Recognise a micro-batch. All crops that may use the Siamese
    /// pipeline share one batched tower forward; per-item results are
    /// bit-identical regardless of how requests were grouped, so
    /// batching never shows in the bodies.
    pub fn recognize_batch(&self, items: &[(RgbImage, DecodeStats, bool)]) -> Vec<ServiceResponse> {
        // Embed the expensive-path crops in one batched tower forward.
        let mut embeds: Vec<Option<Tensor>> = vec![None; items.len()];
        if let Some(net) = &self.net {
            let expensive: Vec<usize> = items
                .iter()
                .enumerate()
                .filter(|(_, (_, _, allow))| *allow && !self.cfg.chaos_siamese_error)
                .map(|(i, _)| i)
                .collect();
            if !expensive.is_empty() {
                let tensors: Vec<Tensor> = expensive
                    .iter()
                    .filter_map(|&i| items.get(i))
                    .map(|(img, _, _)| image_to_tensor(img, &net.config))
                    .collect();
                let views: Vec<&Tensor> = tensors.iter().collect();
                if let Ok(batch_embed) = Tensor::stack_batch(&views).and_then(|b| {
                    let e = net.tower_embed(&b)?;
                    e.split_batch()
                }) {
                    for (&i, e) in expensive.iter().zip(batch_embed) {
                        if let Some(slot) = embeds.get_mut(i) {
                            *slot = Some(e);
                        }
                    }
                }
            }
        }

        items
            .iter()
            .zip(embeds)
            .map(|((img, stats, allow), embed)| {
                if self.net.is_some() && *allow {
                    match self.siamese_answer(embed, *stats) {
                        Ok(resp) => resp,
                        Err(_) => {
                            // Typed pipeline failure: degrade to the
                            // cheap pipelines, labelled and counted.
                            self.diag.record_degraded(1);
                            self.fallback_response(img, *stats, true)
                        }
                    }
                } else if *allow {
                    // The cheap pipeline IS the configured primary: a
                    // normal answer, not a degradation.
                    self.fallback_response(img, *stats, false)
                } else {
                    // Overload control skipped the expensive pipeline.
                    self.diag.record_degraded(1);
                    self.fallback_response(img, *stats, true)
                }
            })
            .collect()
    }

    /// Score one embedded query against every gallery embedding and
    /// rank per-class minima.
    fn siamese_answer(&self, embed: Option<Tensor>, stats: DecodeStats) -> Result<ServiceResponse> {
        if self.cfg.chaos_siamese_error {
            return Err(Error::Nn(TensorError::EmptyTrainingSet));
        }
        let (net, refs) = match (&self.net, &self.ref_embeds) {
            (Some(n), Some(r)) => (n, r),
            _ => return Err(Error::EmptyReference("siamese gallery is not built")),
        };
        let embed = embed.ok_or(Error::Nn(TensorError::EmptyTrainingSet))?;
        let n = self.ref_classes.len();

        // Which gallery rows the head scores: everything in flat mode,
        // the index's shortlist otherwise (ascending row order, so the
        // stacked batch layout is deterministic).
        let (rows, probs) = match &self.gallery_index {
            GalleryIndex::Flat => {
                let repeated: Vec<&Tensor> = std::iter::repeat_n(&embed, n).collect();
                let query_rows = Tensor::stack_batch(&repeated)?;
                let probs = net.predict_similar_features(&query_rows, refs)?;
                ((0..n).collect::<Vec<usize>>(), probs)
            }
            GalleryIndex::Hnsw(ix) => {
                let found = ix.search(embed.data(), self.cfg.shortlist.max(1));
                self.score_shortlist(net, &embed, found.into_iter().map(|(i, _)| i).collect())?
            }
            GalleryIndex::Mih(ix) => {
                let sig = sign_signature(embed.data(), self.cfg.seed);
                let found = ix.search(&sig, self.cfg.shortlist.max(1));
                self.score_shortlist(net, &embed, found.into_iter().map(|(i, _)| i).collect())?
            }
        };

        let mut best = [f64::INFINITY; ObjectClass::COUNT];
        let mut nan_seen = 0u64;
        for (class, p) in rows.iter().filter_map(|&i| self.ref_classes.get(i)).zip(&probs) {
            let d = 1.0 - f64::from(*p);
            if d.is_nan() {
                nan_seen += 1;
            } else {
                let slot = best.get_mut(class.index());
                if let Some(slot) = slot {
                    if d < *slot {
                        *slot = d;
                    }
                }
            }
        }
        self.diag.record_nan_scores(nan_seen);
        let (ranking, confidence, degraded) = rank_distances(&best);
        if degraded {
            self.diag.record_degraded(1);
        }
        let class = ranking.first().copied().unwrap_or(ObjectClass::Box);
        Ok(ServiceResponse {
            class: class.name().to_string(),
            synset: class.synset().id.to_string(),
            confidence,
            ranking: ranking.iter().map(|c| c.name().to_string()).collect(),
            pipeline: "siamese".to_string(),
            degraded,
            quarantined_samples: stats.nan_pixels,
        })
    }

    /// Stack the shortlisted gallery rows, run the head over just those
    /// pairs, and return `(rows, probs)` in ascending row order (so the
    /// batch layout — and therefore the bytes — never depend on the
    /// index's internal traversal order).
    fn score_shortlist(
        &self,
        net: &NormXCorrNet,
        embed: &Tensor,
        mut rows: Vec<usize>,
    ) -> Result<(Vec<usize>, Vec<f32>)> {
        rows.sort_unstable();
        let subset: Vec<&Tensor> =
            rows.iter().filter_map(|&i| self.ref_embed_views.get(i)).collect();
        if subset.is_empty() {
            // A fully quarantined query (or an empty gallery) shortlists
            // nothing: degrade down the ladder.
            return Err(Error::EmptyReference("gallery shortlist is empty"));
        }
        let stacked_refs = Tensor::stack_batch(&subset)?;
        let repeated: Vec<&Tensor> = std::iter::repeat_n(embed, subset.len()).collect();
        let query_rows = Tensor::stack_batch(&repeated)?;
        let probs = net.predict_similar_features(&query_rows, &stacked_refs)?;
        Ok((rows, probs))
    }

    /// The cheap-pipeline answer (histograms/Hu via the shared
    /// [`Recognizer`]).
    fn fallback_response(
        &self,
        img: &RgbImage,
        stats: DecodeStats,
        degraded_by_ladder: bool,
    ) -> ServiceResponse {
        let rec = self.fallback.recognize(img);
        ServiceResponse {
            class: rec.class.name().to_string(),
            synset: rec.synset.id.to_string(),
            confidence: rec.confidence,
            ranking: rec.ranking.iter().map(|c| c.name().to_string()).collect(),
            pipeline: method_label(&self.cfg.method).to_string(),
            degraded: degraded_by_ladder || rec.degraded,
            quarantined_samples: stats.nan_pixels,
        }
    }
}

/// Ranking + softmin-margin confidence from per-class best distances —
/// the same conventions as `Recognizer::recognize`, shared here for the
/// siamese path. Returns `(ranking, confidence, degraded)`.
fn rank_distances(best: &[f64; ObjectClass::COUNT]) -> (Vec<ObjectClass>, f64, bool) {
    let mut order: Vec<usize> = (0..ObjectClass::COUNT).collect();
    order.sort_by(|&a, &b| {
        let (da, db) = (best.get(a), best.get(b));
        match (da, db) {
            (Some(x), Some(y)) => nan_last_f64(*x, *y),
            _ => std::cmp::Ordering::Equal,
        }
    });
    let ranking: Vec<ObjectClass> =
        order.iter().copied().filter_map(ObjectClass::from_index).collect();
    let d1 = order.first().and_then(|&i| best.get(i)).copied().unwrap_or(f64::INFINITY);
    let d2 = order.get(1).and_then(|&i| best.get(i)).copied().unwrap_or(f64::INFINITY);
    if !d1.is_finite() {
        (ranking, 1.0 / ObjectClass::COUNT as f64, true)
    } else if !d2.is_finite() {
        (ranking, 1.0, false)
    } else {
        let gap = (d2 - d1).max(0.0);
        let scale = d1.abs().max(1e-6);
        (ranking, 1.0 - 0.5 * (-gap / scale).exp(), false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taor_core::wire::encode_rgb8;
    use taor_data::nyu_set_subsampled;

    fn service(use_siamese: bool) -> RecognizerService {
        RecognizerService::new(ServiceConfig { use_siamese, ..ServiceConfig::default() })
            .expect("gallery builds")
    }

    fn crop() -> RgbImage {
        nyu_set_subsampled(2019, 1).images[0].image.clone()
    }

    #[test]
    fn siamese_answer_is_full_and_deterministic() {
        let s = service(true);
        let (img, stats) = s.decode(&encode_rgb8(&crop())).unwrap();
        let a = s.recognize_image(&img, stats, true);
        let b = s.recognize_image(&img, stats, true);
        assert_eq!(a.pipeline, "siamese");
        assert!(!a.degraded);
        assert_eq!(a.ranking.len(), ObjectClass::COUNT);
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }

    #[test]
    fn batched_and_single_answers_are_identical() {
        let s = service(true);
        let crops = nyu_set_subsampled(2019, 1);
        let items: Vec<(RgbImage, DecodeStats, bool)> = crops
            .images
            .iter()
            .take(4)
            .map(|li| (li.image.clone(), DecodeStats::default(), true))
            .collect();
        let batched = s.recognize_batch(&items);
        for (item, batched_resp) in items.iter().zip(&batched) {
            let single = s.recognize_image(&item.0, item.1, true);
            assert_eq!(
                serde_json::to_string(&single).unwrap(),
                serde_json::to_string(batched_resp).unwrap(),
                "micro-batching must not change the answer"
            );
        }
    }

    #[test]
    fn chaos_knob_degrades_with_a_label() {
        let s = RecognizerService::new(ServiceConfig {
            chaos_siamese_error: true,
            ..ServiceConfig::default()
        })
        .unwrap();
        let resp = s.recognize_image(&crop(), DecodeStats::default(), true);
        assert!(resp.degraded, "forced siamese failure must be labelled");
        assert_eq!(resp.pipeline, "hybrid");
        assert!(s.diagnostics().degraded >= 1);
    }

    #[test]
    fn overload_skip_degrades_with_a_label() {
        let s = service(true);
        let resp = s.recognize_image(&crop(), DecodeStats::default(), false);
        assert!(resp.degraded);
        assert_eq!(resp.pipeline, "hybrid");
    }

    #[test]
    fn no_siamese_config_answers_with_the_cheap_pipeline() {
        let s = service(false);
        let resp = s.recognize_image(&crop(), DecodeStats::default(), true);
        assert_eq!(resp.pipeline, "hybrid");
        assert!(!resp.degraded, "the configured primary pipeline is not a degradation");
    }

    #[test]
    fn hnsw_shortlist_covering_the_gallery_matches_flat() {
        // With the shortlist at least as large as the gallery, the HNSW
        // path scores every view the flat path scores, so the answer
        // must be byte-identical (the head is per-pair).
        let flat = service(true);
        let hnsw = RecognizerService::new(ServiceConfig {
            index: AnnIndexMode::Hnsw,
            shortlist: 1024,
            ..ServiceConfig::default()
        })
        .expect("hnsw gallery builds");
        assert_eq!(hnsw.index_label(), "hnsw");
        assert_eq!(hnsw.gallery_size(), flat.gallery_size());
        for li in nyu_set_subsampled(2019, 1).images.iter().take(3) {
            let a = flat.recognize_image(&li.image, DecodeStats::default(), true);
            let b = hnsw.recognize_image(&li.image, DecodeStats::default(), true);
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap(),
                "a gallery-covering shortlist must reproduce the flat answer"
            );
        }
    }

    #[test]
    fn small_shortlist_still_answers_siamese_deterministically() {
        for index in [AnnIndexMode::Hnsw, AnnIndexMode::Mih] {
            let s = RecognizerService::new(ServiceConfig {
                index,
                shortlist: 8,
                ..ServiceConfig::default()
            })
            .expect("indexed gallery builds");
            assert_eq!(s.index_label(), index.label());
            let a = s.recognize_image(&crop(), DecodeStats::default(), true);
            let b = s.recognize_image(&crop(), DecodeStats::default(), true);
            assert_eq!(a.pipeline, "siamese");
            assert!(!a.degraded, "a shortlisted answer is not a degradation");
            assert_eq!(a.ranking.len(), ObjectClass::COUNT);
            assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
        }
    }

    #[test]
    fn index_without_siamese_stays_flat() {
        let s = RecognizerService::new(ServiceConfig {
            use_siamese: false,
            index: AnnIndexMode::Hnsw,
            ..ServiceConfig::default()
        })
        .expect("cheap gallery builds");
        assert_eq!(s.index_label(), "flat", "no embeddings means no index to build");
        assert!(s.gallery_size() > 0);
    }

    #[test]
    fn shed_and_timeout_counters_reach_the_merged_report() {
        let s = service(false);
        s.record_shed();
        s.record_shed();
        s.record_timeout();
        let d = s.diagnostics();
        assert_eq!(d.shed, 2);
        assert_eq!(d.timeouts, 1);
    }
}
