//! A minimal, defensive HTTP/1.1 subset — just enough wire protocol to
//! carry recognition requests and responses, hardened against the
//! hostile byte streams the chaos harness throws at it.
//!
//! The parser is incremental and bounded everywhere: header bytes are
//! capped, the body is read to an exact declared `Content-Length`
//! (bounded by [`HttpLimits::max_body`]), every read is cut off by the
//! caller-supplied [`Deadline`], and each failure is a typed
//! [`HttpError`] the server maps to a precise status code.
//!
//! Connections persist: [`ConnectionReader`] owns the socket's read
//! side, buffers, and carries bytes read past the current body over to
//! the next request — pipelined requests are re-framed, never treated
//! as protocol errors. Framing is strict where reuse makes laxity
//! dangerous: duplicate `Content-Length` headers and `Transfer-Encoding`
//! (unimplemented here) are both hard 400s, because first-match framing
//! on a reused connection is exactly the request-smuggling shape.
//! No routing, no chunked encoding.

use crate::robust::Deadline;
use std::io::{Read, Write};
use std::time::Duration;

/// Transport bounds for one connection.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Maximum accepted `Content-Length`; beyond it the request is a
    /// 413 before any body byte is read.
    pub max_body: usize,
    /// Maximum header-section bytes before the request is malformed.
    pub max_header_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        // 2 MiB fits any plausible segmented crop (a full 256x256 RGBF32
        // crop is 768 KiB); headers never legitimately reach 8 KiB.
        HttpLimits { max_body: 2 << 20, max_header_bytes: 8 << 10 }
    }
}

/// Typed transport failures, each with its own HTTP status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Unparseable request head (400).
    Malformed(&'static str),
    /// Declared body larger than [`HttpLimits::max_body`] (413).
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The configured cap.
        max: usize,
    },
    /// The client went quiet before delivering what it declared (408).
    Timeout,
    /// The client disconnected mid-request.
    Disconnected,
    /// Any other socket error.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::BodyTooLarge { declared, max } => {
                write!(f, "declared body of {declared} bytes exceeds the {max}-byte limit")
            }
            HttpError::Timeout => write!(f, "client did not deliver the request in time"),
            HttpError::Disconnected => write!(f, "client disconnected mid-request"),
            HttpError::Io(kind) => write!(f, "socket error: {kind:?}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// Request path, verbatim, query string included.
    pub path: String,
    /// Lower-cased header names with their raw values.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
    /// What the client asked for, framing-wise: `true` for HTTP/1.1
    /// unless `Connection: close`, `false` for HTTP/1.0 unless
    /// `Connection: keep-alive`. The server may still close earlier
    /// (limits, errors, shutdown).
    pub keep_alive: bool,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// One response ready to serialise.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond `Content-Length`/`Connection`.
    pub headers: Vec<(&'static str, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: vec![("Content-Type", "application/json".into())],
            body: body.into(),
        }
    }

    /// The standard error body: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        let quoted =
            serde_json::to_string(&message.to_string()).unwrap_or_else(|_| "\"error\"".to_string());
        Response::json(status, format!("{{\"error\":{quoted}}}"))
    }
}

/// Canonical reason phrases for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// What one bounded read observed.
enum ReadEvent {
    /// `n` fresh bytes.
    Data(usize),
    /// Orderly EOF from the peer.
    Eof,
    /// The socket's read timeout elapsed with nothing to read.
    TimedOut,
}

/// One read, with timeout-ish kinds surfaced as [`ReadEvent::TimedOut`]
/// so the caller can decide whether the budget is actually spent.
fn read_event<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<ReadEvent, HttpError> {
    loop {
        match r.read(buf) {
            Ok(0) => return Ok(ReadEvent::Eof),
            Ok(n) => return Ok(ReadEvent::Data(n)),
            Err(e) => match e.kind() {
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                    return Ok(ReadEvent::TimedOut)
                }
                std::io::ErrorKind::Interrupted => continue,
                kind => return Err(HttpError::Io(kind)),
            },
        }
    }
}

/// A connection's read side: the socket plus every byte read past the
/// request most recently parsed.
///
/// HTTP/1.1 clients may pipeline: the read that completes request N's
/// body is allowed to also deliver request N+1 (or half of it). Those
/// bytes belong to the *next* call of [`ConnectionReader::next_request`],
/// so they are carried here instead of being condemned as "more body
/// bytes than Content-Length" the way the PR 7 one-shot parser did.
pub struct ConnectionReader<R> {
    inner: R,
    /// Bytes read but not yet consumed by a parsed request.
    buf: Vec<u8>,
}

impl<R: Read> ConnectionReader<R> {
    /// Wrap a connection's read side.
    pub fn new(inner: R) -> Self {
        ConnectionReader { inner, buf: Vec::new() }
    }

    /// Bytes already buffered for the next request (a pipelined client
    /// has more framing queued).
    pub fn has_buffered(&self) -> bool {
        !self.buf.is_empty()
    }

    /// The wrapped reader, e.g. to write a response on a duplex socket.
    pub fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }

    /// Unwrap, dropping any buffered bytes.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Read the next request off the connection.
    ///
    /// * `Ok(Some(req))` — a complete request, framed by its own
    ///   `Content-Length`; surplus bytes stay buffered for the next call.
    /// * `Ok(None)` — the connection went quiescent before any byte of
    ///   a next request arrived: orderly EOF, `idle` expiry, or
    ///   `cancel_idle` returning true (server drain). Close the socket;
    ///   there is nobody to answer.
    /// * `Err(_)` — a typed failure *mid-request*; the server answers
    ///   it and closes, because the framing can no longer be trusted.
    ///
    /// Once the first byte of a request exists, the whole request
    /// (head and body) must arrive within `budget` — that budget, not
    /// the per-read socket timeout, is what stops the slow-loris client
    /// dribbling one byte per interval forever.
    pub fn next_request(
        &mut self,
        limits: &HttpLimits,
        idle: &Deadline,
        budget: Duration,
        cancel_idle: &dyn Fn() -> bool,
    ) -> Result<Option<Request>, HttpError> {
        let mut chunk = [0u8; 1024];
        // Idle phase: nothing of the next request has arrived yet.
        while self.buf.is_empty() {
            if cancel_idle() || idle.expired() {
                return Ok(None);
            }
            match read_event(&mut self.inner, &mut chunk)? {
                ReadEvent::Eof => return Ok(None),
                ReadEvent::TimedOut => continue,
                ReadEvent::Data(n) => self.buf.extend_from_slice(chunk.get(..n).unwrap_or(&[])),
            }
        }

        // Request phase: the budget clock runs from the first byte.
        let deadline = Deadline::after(budget);
        // Head: accumulate until the blank line, bounded in bytes and
        // time. `scanned` is how far the terminator search has already
        // looked, so each fresh chunk costs one pass over its own bytes
        // (plus a 3-byte overlap), not a rescan of the whole head.
        let mut scanned = 0usize;
        let split = loop {
            if let Some(pos) = find_head_end(&self.buf, scanned) {
                break pos;
            }
            scanned = self.buf.len().saturating_sub(3);
            if self.buf.len() > limits.max_header_bytes {
                return Err(HttpError::Malformed("header section too large"));
            }
            if deadline.expired() {
                return Err(HttpError::Timeout);
            }
            match read_event(&mut self.inner, &mut chunk)? {
                ReadEvent::Eof => return Err(HttpError::Disconnected),
                ReadEvent::TimedOut => continue,
                ReadEvent::Data(n) => self.buf.extend_from_slice(chunk.get(..n).unwrap_or(&[])),
            }
        };

        // Detach the head; everything after the terminator stays in
        // `self.buf` as (the start of) the body and beyond.
        let mut rest = self.buf.split_off((split + 4).min(self.buf.len()));
        std::mem::swap(&mut self.buf, &mut rest);
        let mut head = rest;
        head.truncate(split);

        let parsed = parse_head(&head)?;
        let content_length = parsed.content_length;
        if content_length > limits.max_body {
            return Err(HttpError::BodyTooLarge { declared: content_length, max: limits.max_body });
        }

        // Body: take exactly `content_length` bytes; anything beyond is
        // the next pipelined request and stays buffered.
        while self.buf.len() < content_length {
            if deadline.expired() {
                return Err(HttpError::Timeout);
            }
            match read_event(&mut self.inner, &mut chunk)? {
                ReadEvent::Eof => return Err(HttpError::Disconnected),
                ReadEvent::TimedOut => continue,
                ReadEvent::Data(n) => self.buf.extend_from_slice(chunk.get(..n).unwrap_or(&[])),
            }
        }
        let mut body = std::mem::take(&mut self.buf);
        self.buf = body.split_off(content_length.min(body.len()));

        Ok(Some(Request {
            method: parsed.method,
            path: parsed.path,
            headers: parsed.headers,
            body,
            keep_alive: parsed.keep_alive,
        }))
    }
}

/// The parsed request head, before the body is framed.
struct Head {
    method: String,
    path: String,
    headers: Vec<(String, String)>,
    content_length: usize,
    keep_alive: bool,
}

/// Parse the head bytes (request line + headers, no terminator) and
/// resolve the framing headers strictly.
fn parse_head(head_bytes: &[u8]) -> Result<Head, HttpError> {
    let head_str = std::str::from_utf8(head_bytes)
        .map_err(|_| HttpError::Malformed("non-UTF-8 request head"))?;
    let mut lines = head_str.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(HttpError::Malformed("empty request line"))?.to_string();
    let path = parts.next().ok_or(HttpError::Malformed("request line has no path"))?.to_string();
    let version = parts.next().ok_or(HttpError::Malformed("request line has no version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    let http_11_or_later = version != "HTTP/1.0";

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header line without a colon"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // Framing must be unambiguous on a reusable connection: a request
    // whose length two parsers could disagree on is the smuggling
    // primitive. Duplicate Content-Length (even with identical values)
    // and Transfer-Encoding (not implemented here) are both rejected
    // outright instead of resolved by first-match.
    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(HttpError::Malformed("Transfer-Encoding is not supported"));
    }
    let mut lengths = headers.iter().filter(|(n, _)| n == "content-length");
    let content_length = match lengths.next() {
        None => 0,
        Some((_, v)) => {
            if lengths.next().is_some() {
                return Err(HttpError::Malformed("duplicate Content-Length"));
            }
            v.parse::<usize>().map_err(|_| HttpError::Malformed("unparseable Content-Length"))?
        }
    };

    // Connection is a comma-separated token list; only the two framing
    // tokens matter here.
    let conn = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase())
        .unwrap_or_default();
    let has_token = |t: &str| conn.split(',').any(|tok| tok.trim() == t);
    let keep_alive = if http_11_or_later { !has_token("close") } else { has_token("keep-alive") };

    Ok(Head { method, path, headers, content_length, keep_alive })
}

/// Read one request from a one-shot stream (tests and simple clients):
/// a [`ConnectionReader`] that treats quiescence as a disconnect and
/// discards any pipelined surplus.
pub fn read_request<R: Read>(
    r: &mut R,
    limits: &HttpLimits,
    read_deadline: &Deadline,
) -> Result<Request, HttpError> {
    let mut reader = ConnectionReader::new(r);
    reader
        .next_request(limits, read_deadline, read_deadline.remaining(), &|| false)?
        .ok_or(HttpError::Disconnected)
}

/// Byte offset of the `\r\n\r\n` head terminator at or after
/// `from.saturating_sub(3)` — the caller passes how far previous scans
/// got so the search never re-reads old bytes.
fn find_head_end(buf: &[u8], from: usize) -> Option<usize> {
    let start = from.min(buf.len());
    buf.get(start..)?.windows(4).position(|w| w == b"\r\n\r\n").map(|p| start + p)
}

/// Serialise `resp` as an HTTP/1.1 response. `keep_alive` picks the
/// `Connection` header: `keep-alive` promises the server will read
/// another request on this socket, `close` that it will not.
pub fn write_response<W: Write>(
    w: &mut W,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(resp.body.len() + 256);
    out.extend_from_slice(
        format!("HTTP/1.1 {} {}\r\n", resp.status, reason(resp.status)).as_bytes(),
    );
    for (name, value) in &resp.headers {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(format!("Content-Length: {}\r\n", resp.body.len()).as_bytes());
    if keep_alive {
        out.extend_from_slice(b"Connection: keep-alive\r\n\r\n");
    } else {
        out.extend_from_slice(b"Connection: close\r\n\r\n");
    }
    out.extend_from_slice(&resp.body);
    w.write_all(&out)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn deadline() -> Deadline {
        Deadline::after(Duration::from_secs(5))
    }

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut std::io::Cursor::new(raw.to_vec()), &HttpLimits::default(), &deadline())
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /recognize HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = parse(raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/recognize");
        assert_eq!(req.body, b"hello");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let raw = b"POST / HTTP/1.1\r\ncOnTeNt-LeNgTh: 2\r\nX-Taor-Test-Delay-Ms: 9\r\n\r\nok";
        let req = parse(raw).unwrap();
        assert_eq!(req.body, b"ok");
        assert_eq!(req.header("x-taor-test-delay-ms"), Some("9"));
    }

    #[test]
    fn connection_semantics_follow_version_and_header() {
        let close_11 = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!close_11.keep_alive);
        let tokens = parse(b"GET / HTTP/1.1\r\nConnection: foo, Close\r\n\r\n").unwrap();
        assert!(!tokens.keep_alive, "close is recognised inside a token list");
        let plain_10 = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!plain_10.keep_alive, "HTTP/1.0 defaults to close");
        let ka_10 = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(ka_10.keep_alive);
    }

    #[test]
    fn typed_errors_for_malformed_heads() {
        assert!(matches!(parse(b"\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse(b"GET\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse(b"GET / SPDY/9\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn duplicate_content_length_is_rejected_not_first_matched() {
        // Differing values: the classic smuggling shape.
        let differing = b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\nhello";
        assert_eq!(parse(differing), Err(HttpError::Malformed("duplicate Content-Length")));
        // Identical values: still ambiguous framing, still a 400.
        let identical = b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello";
        assert_eq!(parse(identical), Err(HttpError::Malformed("duplicate Content-Length")));
    }

    #[test]
    fn transfer_encoding_is_rejected() {
        let raw =
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 5\r\n\r\nhello";
        assert_eq!(parse(raw), Err(HttpError::Malformed("Transfer-Encoding is not supported")));
    }

    #[test]
    fn zero_content_length_post_parses_with_an_empty_body() {
        let req = parse(b"POST /recognize HTTP/1.1\r\nContent-Length: 0\r\n\r\n").unwrap();
        assert_eq!(req.method, "POST");
        assert!(req.body.is_empty());
    }

    #[test]
    fn oversized_declaration_rejected_before_reading_the_body() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        assert!(matches!(parse(raw), Err(HttpError::BodyTooLarge { declared: 99999999, .. })));
    }

    #[test]
    fn truncated_body_is_a_disconnect() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort";
        assert_eq!(parse(raw), Err(HttpError::Disconnected));
    }

    #[test]
    fn pipelined_requests_are_reframed_not_errors() {
        // Two complete requests delivered in one stream: the bytes past
        // the first body are the second request, not a protocol error.
        let raw = b"POST /recognize HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello\
                    GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        let mut cursor = std::io::Cursor::new(raw.to_vec());
        let mut reader = ConnectionReader::new(&mut cursor);
        let limits = HttpLimits::default();
        let idle = deadline();
        let first = reader
            .next_request(&limits, &idle, Duration::from_secs(5), &|| false)
            .unwrap()
            .unwrap();
        assert_eq!(first.body, b"hello");
        assert!(reader.has_buffered(), "the second request is carried over");
        let second = reader
            .next_request(&limits, &idle, Duration::from_secs(5), &|| false)
            .unwrap()
            .unwrap();
        assert_eq!((second.method.as_str(), second.path.as_str()), ("GET", "/healthz"));
        assert!(second.body.is_empty());
        // Stream exhausted: the connection is quiescent, not broken.
        let end = reader.next_request(&limits, &idle, Duration::from_secs(5), &|| false).unwrap();
        assert!(end.is_none());
    }

    #[test]
    fn cancel_idle_refuses_a_new_request() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let mut cursor = std::io::Cursor::new(raw.to_vec());
        let mut reader = ConnectionReader::new(&mut cursor);
        let got = reader
            .next_request(&HttpLimits::default(), &deadline(), Duration::from_secs(5), &|| true)
            .unwrap();
        assert!(got.is_none(), "a draining server reads no new request");
    }

    /// Slow-loris-sized head: a near-cap header section delivered one
    /// byte per read must still parse (and in O(total), not O(total²) —
    /// the terminator scan tracks an offset instead of rescanning).
    #[test]
    fn one_byte_reads_of_a_near_cap_head_still_parse() {
        struct OneByte(std::io::Cursor<Vec<u8>>);
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let take = buf.len().min(1);
                self.0.read(&mut buf[..take])
            }
        }
        let limits = HttpLimits::default();
        let mut raw = b"POST /recognize HTTP/1.1\r\nContent-Length: 2\r\n".to_vec();
        let mut pad = 0usize;
        while raw.len() + 64 < limits.max_header_bytes {
            raw.extend_from_slice(format!("X-Pad-{pad}: {}\r\n", "y".repeat(40)).as_bytes());
            pad += 1;
        }
        raw.extend_from_slice(b"\r\nok");
        let head_len = raw.len() - 2;
        assert!(head_len > limits.max_header_bytes / 2, "test must exercise a large head");
        let req = read_request(&mut OneByte(std::io::Cursor::new(raw)), &limits, &deadline())
            .expect("near-cap head parses");
        assert_eq!(req.body, b"ok");
        assert!(req.headers.len() > 100);
    }

    #[test]
    fn expired_deadline_times_out_an_incomplete_request() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\n".to_vec();
        struct Stall(std::io::Cursor<Vec<u8>>);
        impl Read for Stall {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = self.0.read(buf)?;
                if n == 0 {
                    // A live-but-silent client: each read "times out".
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                Ok(n)
            }
        }
        let mut stall = Stall(std::io::Cursor::new(raw));
        let mut reader = ConnectionReader::new(&mut stall);
        // Request bytes arrive instantly; the zero budget then expires
        // with the body incomplete.
        let res =
            reader.next_request(&HttpLimits::default(), &deadline(), Duration::ZERO, &|| false);
        assert_eq!(res, Err(HttpError::Timeout));
    }

    #[test]
    fn response_roundtrips_with_length_and_connection() {
        let resp = Response::json(200, "{\"ok\":true}");
        let mut out = Vec::new();
        write_response(&mut out, &resp, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));

        let mut out = Vec::new();
        write_response(&mut out, &resp, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(!text.contains("Connection: close\r\n"));
    }

    #[test]
    fn error_body_is_json() {
        let resp = Response::error(429, "queue full");
        assert_eq!(resp.status, 429);
        assert_eq!(resp.body, b"{\"error\":\"queue full\"}");
    }
}
