//! A minimal, defensive HTTP/1.1 subset — just enough wire protocol to
//! carry one request and one response, hardened against the hostile
//! byte streams the chaos harness throws at it.
//!
//! The parser is incremental and bounded everywhere: header bytes are
//! capped, the body is read to an exact declared `Content-Length`
//! (bounded by [`HttpLimits::max_body`]), every read is cut off by the
//! caller-supplied [`Deadline`], and each failure is a typed
//! [`HttpError`] the server maps to a precise status code. No routing,
//! no keep-alive, no chunked encoding: one request, one response, one
//! connection.

use crate::robust::Deadline;
use std::io::{Read, Write};

/// Transport bounds for one connection.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Maximum accepted `Content-Length`; beyond it the request is a
    /// 413 before any body byte is read.
    pub max_body: usize,
    /// Maximum header-section bytes before the request is malformed.
    pub max_header_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        // 2 MiB fits any plausible segmented crop (a full 256x256 RGBF32
        // crop is 768 KiB); headers never legitimately reach 8 KiB.
        HttpLimits { max_body: 2 << 20, max_header_bytes: 8 << 10 }
    }
}

/// Typed transport failures, each with its own HTTP status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Unparseable request head (400).
    Malformed(&'static str),
    /// Declared body larger than [`HttpLimits::max_body`] (413).
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The configured cap.
        max: usize,
    },
    /// The client went quiet before delivering what it declared (408).
    Timeout,
    /// The client disconnected mid-request.
    Disconnected,
    /// Any other socket error.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::BodyTooLarge { declared, max } => {
                write!(f, "declared body of {declared} bytes exceeds the {max}-byte limit")
            }
            HttpError::Timeout => write!(f, "client did not deliver the request in time"),
            HttpError::Disconnected => write!(f, "client disconnected mid-request"),
            HttpError::Io(kind) => write!(f, "socket error: {kind:?}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// Request path, verbatim, query string included.
    pub path: String,
    /// Lower-cased header names with their raw values.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// One response ready to serialise.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond `Content-Length`/`Connection`.
    pub headers: Vec<(&'static str, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: vec![("Content-Type", "application/json".into())],
            body: body.into(),
        }
    }

    /// The standard error body: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        let quoted =
            serde_json::to_string(&message.to_string()).unwrap_or_else(|_| "\"error\"".to_string());
        Response::json(status, format!("{{\"error\":{quoted}}}"))
    }
}

/// Canonical reason phrases for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Read one byte, treating timeout-ish kinds as [`HttpError::Timeout`]
/// and EOF as [`HttpError::Disconnected`].
fn read_some<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, HttpError> {
    loop {
        match r.read(buf) {
            Ok(0) => return Err(HttpError::Disconnected),
            Ok(n) => return Ok(n),
            Err(e) => match e.kind() {
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                    return Err(HttpError::Timeout)
                }
                std::io::ErrorKind::Interrupted => continue,
                kind => return Err(HttpError::Io(kind)),
            },
        }
    }
}

/// Read a full request, hard-bounded by `limits` and `read_deadline`.
///
/// The deadline covers the whole request (head and body): the
/// per-socket read timeout bounds each individual `read`, and this
/// bound stops the slow-loris client that dribbles one byte per
/// interval forever.
pub fn read_request<R: Read>(
    r: &mut R,
    limits: &HttpLimits,
    read_deadline: &Deadline,
) -> Result<Request, HttpError> {
    // Head: accumulate until the blank line, bounded in bytes and time.
    let mut head: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 1024];
    let split = loop {
        if let Some(pos) = find_head_end(&head) {
            break pos;
        }
        if head.len() > limits.max_header_bytes {
            return Err(HttpError::Malformed("header section too large"));
        }
        if read_deadline.expired() {
            return Err(HttpError::Timeout);
        }
        let n = read_some(r, &mut chunk)?;
        head.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
    };
    let (head_bytes, rest) = head.split_at(split);
    let mut body: Vec<u8> = rest.get(4..).unwrap_or(&[]).to_vec(); // skip "\r\n\r\n"

    let head_str = std::str::from_utf8(head_bytes)
        .map_err(|_| HttpError::Malformed("non-UTF-8 request head"))?;
    let mut lines = head_str.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(HttpError::Malformed("empty request line"))?.to_string();
    let path = parts.next().ok_or(HttpError::Malformed("request line has no path"))?.to_string();
    let version = parts.next().ok_or(HttpError::Malformed("request line has no version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header line without a colon"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => {
            v.parse::<usize>().map_err(|_| HttpError::Malformed("unparseable Content-Length"))?
        }
    };
    if content_length > limits.max_body {
        return Err(HttpError::BodyTooLarge { declared: content_length, max: limits.max_body });
    }
    if body.len() > content_length {
        return Err(HttpError::Malformed("more body bytes than Content-Length"));
    }

    while body.len() < content_length {
        if read_deadline.expired() {
            return Err(HttpError::Timeout);
        }
        let n = read_some(r, &mut chunk)?;
        let need = content_length - body.len();
        if n > need {
            return Err(HttpError::Malformed("more body bytes than Content-Length"));
        }
        body.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
    }

    Ok(Request { method, path, headers, body })
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Serialise `resp` as an HTTP/1.1 close-delimited response.
pub fn write_response<W: Write>(w: &mut W, resp: &Response) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(resp.body.len() + 256);
    out.extend_from_slice(
        format!("HTTP/1.1 {} {}\r\n", resp.status, reason(resp.status)).as_bytes(),
    );
    for (name, value) in &resp.headers {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(format!("Content-Length: {}\r\n", resp.body.len()).as_bytes());
    out.extend_from_slice(b"Connection: close\r\n\r\n");
    out.extend_from_slice(&resp.body);
    w.write_all(&out)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn deadline() -> Deadline {
        Deadline::after(Duration::from_secs(5))
    }

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut std::io::Cursor::new(raw.to_vec()), &HttpLimits::default(), &deadline())
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /recognize HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = parse(raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/recognize");
        assert_eq!(req.body, b"hello");
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let raw = b"POST / HTTP/1.1\r\ncOnTeNt-LeNgTh: 2\r\nX-Taor-Test-Delay-Ms: 9\r\n\r\nok";
        let req = parse(raw).unwrap();
        assert_eq!(req.body, b"ok");
        assert_eq!(req.header("x-taor-test-delay-ms"), Some("9"));
    }

    #[test]
    fn typed_errors_for_malformed_heads() {
        assert!(matches!(parse(b"\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse(b"GET\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse(b"GET / SPDY/9\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_declaration_rejected_before_reading_the_body() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        assert!(matches!(parse(raw), Err(HttpError::BodyTooLarge { declared: 99999999, .. })));
    }

    #[test]
    fn truncated_body_is_a_disconnect() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort";
        assert_eq!(parse(raw), Err(HttpError::Disconnected));
    }

    #[test]
    fn expired_deadline_times_out_an_incomplete_request() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\n".to_vec();
        struct Stall(std::io::Cursor<Vec<u8>>);
        impl Read for Stall {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = self.0.read(buf)?;
                if n == 0 {
                    // A live-but-silent client: each read "times out".
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                Ok(n)
            }
        }
        let expired = Deadline::after(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(2));
        let res =
            read_request(&mut Stall(std::io::Cursor::new(raw)), &HttpLimits::default(), &expired);
        assert_eq!(res, Err(HttpError::Timeout));
    }

    #[test]
    fn response_roundtrips_with_length_and_close() {
        let resp = Response::json(200, "{\"ok\":true}");
        let mut out = Vec::new();
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn error_body_is_json() {
        let resp = Response::error(429, "queue full");
        assert_eq!(resp.status, 429);
        assert_eq!(resp.body, b"{\"error\":\"queue full\"}");
    }
}
