//! SIGTERM/SIGINT → one atomic flag, with no signal-handling crate.
//!
//! The handler does the only thing that is async-signal-safe here: an
//! atomic store. The binary's main loop polls [`shutdown_requested`]
//! and runs the ordinary graceful-shutdown path — queued work drains,
//! workers join, the process exits 0.

use taor_model::sync::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Has a termination signal arrived (or [`request_shutdown`] been
/// called)?
pub fn shutdown_requested() -> bool {
    // Ordering::SeqCst — cold shutdown handoff; strongest ordering
    // keeps the flag trivially correct.
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Trip the flag programmatically (tests, admin paths).
pub fn request_shutdown() {
    // Ordering::SeqCst — cold shutdown handoff; strongest ordering
    // keeps the flag trivially correct.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Install the handler for SIGTERM and SIGINT. On non-unix targets
/// this is a no-op (ctrl-c still kills the process, just not
/// gracefully).
pub fn install_handlers() {
    #[cfg(unix)]
    unix::install();
}

#[cfg(unix)]
mod unix {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// POSIX `signal(2)`. std already links libc on unix targets,
        /// so the symbol is always present.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// The handler body is a single atomic store — async-signal-safe.
    extern "C" fn on_signal(_signum: i32) {
        super::request_shutdown();
    }

    pub(super) fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        // SAFETY: `signal` is the POSIX C API with the documented
        // signature; the handler passed is a valid `extern "C" fn(i32)`
        // for the process's lifetime (a static item), and its body
        // performs only an async-signal-safe atomic store.
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_shutdown_trips_the_flag() {
        // Note: the flag is process-global; this test is the only one
        // in the crate that trips it.
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
    }
}
