//! `taor-serve` — the recognition service binary.
//!
//! ```text
//! taor-serve [--addr 127.0.0.1:0] [--workers N] [--queue-cap N]
//!            [--batch N] [--deadline-ms N] [--degrade-margin-ms N]
//!            [--read-budget-ms N] [--max-body BYTES] [--seed N]
//!            [--keep-alive true|false] [--max-requests-per-conn N]
//!            [--idle-timeout-ms N]
//!            [--method hybrid|shape|color] [--no-siamese]
//!            [--index flat|hnsw|mih] [--shortlist N]
//!            [--chaos-siamese-error] [--allow-test-delay]
//! ```
//!
//! Prints `taor-serve listening on ADDR` once ready (tests and scripts
//! parse that line for the OS-assigned port), then serves until
//! SIGTERM/SIGINT, drains gracefully and exits 0.

use std::sync::Arc;
use std::time::Duration;

use taor_core::prelude::{ColorScorer, Method, ShapeScorer};
use taor_serve::{signal, RecognizerService, Server, ServerConfig, ServiceConfig};

const USAGE: &str = "taor-serve: recognition-as-a-service over the taor pipelines
  --addr A               bind address (default 127.0.0.1:0)
  --workers N            recognition worker threads (default 2)
  --queue-cap N          admission queue capacity (default 64)
  --batch N              micro-batch cap per worker wakeup (default 4)
  --deadline-ms N        per-request deadline (default 2000)
  --degrade-margin-ms N  skip the expensive pipeline below this remaining budget (default 100)
  --read-budget-ms N     total budget for reading one request (default 2000)
  --max-body BYTES       request body cap (default 2 MiB)
  --keep-alive B         reuse connections, true|false (default true)
  --max-requests-per-conn N  requests served per connection before rotation (default 128)
  --idle-timeout-ms N    close kept-alive connections idle this long (default 5000)
  --seed N               gallery + network seed (default 2019)
  --method M             fallback pipeline: hybrid | shape | color (default hybrid)
  --no-siamese           answer from the cheap pipeline only
  --index M              gallery index for the siamese path: flat | hnsw | mih (default flat)
  --shortlist N          views a non-flat index hands to the scoring head (default 16)
  --chaos-siamese-error  force the siamese step to fail (degrade-ladder testing)
  --allow-test-delay     honour X-Taor-Test-Delay-Ms (tests only)";

fn main() {
    if let Err(msg) = run() {
        eprintln!("taor-serve: {msg}");
        std::process::exit(2);
    }
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, String> {
    value
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag}: unparseable value"))
}

fn run() -> Result<(), String> {
    let mut server_cfg = ServerConfig::default();
    let mut service_cfg = ServiceConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => server_cfg.addr = parse("--addr", args.next())?,
            "--workers" => server_cfg.workers = parse("--workers", args.next())?,
            "--queue-cap" => server_cfg.queue_cap = parse("--queue-cap", args.next())?,
            "--batch" => server_cfg.batch = parse("--batch", args.next())?,
            "--deadline-ms" => {
                server_cfg.deadline = Duration::from_millis(parse("--deadline-ms", args.next())?)
            }
            "--degrade-margin-ms" => {
                server_cfg.degrade_margin =
                    Duration::from_millis(parse("--degrade-margin-ms", args.next())?)
            }
            "--read-budget-ms" => {
                server_cfg.read_budget =
                    Duration::from_millis(parse("--read-budget-ms", args.next())?)
            }
            "--max-body" => server_cfg.limits.max_body = parse("--max-body", args.next())?,
            "--keep-alive" => server_cfg.keep_alive = parse("--keep-alive", args.next())?,
            "--max-requests-per-conn" => {
                server_cfg.max_requests_per_conn =
                    parse::<usize>("--max-requests-per-conn", args.next())?.max(1)
            }
            "--idle-timeout-ms" => {
                server_cfg.idle_timeout =
                    Duration::from_millis(parse("--idle-timeout-ms", args.next())?)
            }
            "--seed" => service_cfg.seed = parse("--seed", args.next())?,
            "--method" => {
                service_cfg.method = match args.next().as_deref() {
                    Some("hybrid") => Method::default(),
                    Some("shape") => Method::Shape(ShapeScorer::ALL[2]),
                    Some("color") => Method::Color(ColorScorer::ALL[3]),
                    other => return Err(format!("--method: unknown pipeline {other:?}")),
                }
            }
            "--no-siamese" => service_cfg.use_siamese = false,
            "--index" => service_cfg.index = parse("--index", args.next())?,
            "--shortlist" => {
                service_cfg.shortlist = parse::<usize>("--shortlist", args.next())?.max(1)
            }
            "--chaos-siamese-error" => service_cfg.chaos_siamese_error = true,
            "--allow-test-delay" => server_cfg.allow_test_delay = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }

    signal::install_handlers();

    let service = Arc::new(
        RecognizerService::new(service_cfg).map_err(|e| format!("building the service: {e}"))?,
    );
    let server = Server::spawn(Arc::clone(&service), server_cfg)
        .map_err(|e| format!("binding the server: {e}"))?;
    println!("taor-serve listening on {}", server.local_addr());
    use std::io::Write as _;
    // taor-lint: allow(err::swallowed-result) — best-effort flush of
    // the listening banner; a broken stdout must not kill the server.
    let _ = std::io::stdout().flush();

    while !signal::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
    let report = service.diagnostics();
    println!(
        "taor-serve: graceful shutdown (shed {}, timeouts {}, degraded {})",
        report.shed, report.timeouts, report.degraded
    );
    Ok(())
}
