//! Client-side fault injectors: every way a robot's flaky uplink can
//! mistreat the server, packaged for the chaos tests and the load
//! generator.
//!
//! Each injector opens a raw TCP connection and misbehaves in one
//! specific way — truncated bodies, oversized declarations, slow-loris
//! dribbles, mid-request disconnects — then reports what the server
//! did. The contract under chaos is always the same: the server
//! answers *something typed* (or observes the disconnect), never
//! panics, and keeps answering well-formed requests afterwards.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// What a chaos client observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// The server answered with this status code.
    Responded(u16),
    /// The connection closed without a parseable response (fine for
    /// clients that hung up first).
    ConnectionClosed,
    /// A socket error on the client side.
    IoError(String),
}

/// Parse `HTTP/1.1 <code> ...` out of a raw response.
fn parse_status(raw: &[u8]) -> Option<u16> {
    let text = std::str::from_utf8(raw).ok()?;
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    if !parts.next()?.starts_with("HTTP/1.") {
        return None;
    }
    parts.next()?.parse().ok()
}

/// Body bytes after the blank line, if any.
fn parse_body(raw: &[u8]) -> Vec<u8> {
    raw.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| raw.get(i + 4..).unwrap_or(&[]).to_vec())
        .unwrap_or_default()
}

fn connect(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    Ok(stream)
}

fn read_to_end(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    Ok(raw)
}

/// A well-formed request: write `raw`, half-close, read the response.
/// Returns `(status, body)`.
///
/// The half-close is what makes one-shot clients coexist with the
/// keep-alive server: after answering, the server's next read sees EOF
/// and closes, so `read_to_end` terminates without waiting out the
/// idle timeout.
pub fn http_roundtrip(addr: SocketAddr, raw: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
    let mut stream = connect(addr)?;
    stream.write_all(raw)?;
    stream.flush()?;
    stream.shutdown(std::net::Shutdown::Write)?;
    let response = read_to_end(&mut stream)?;
    let status = parse_status(&response)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line"))?;
    Ok((status, parse_body(&response)))
}

/// A client that keeps one connection open across requests — the
/// counterpart of the server's keep-alive path, used by the reuse and
/// pipelining tests and `bench_serve`'s persistent mode.
///
/// Responses are framed by their `Content-Length` (never by EOF), so
/// several can be read back-to-back off one socket in order.
pub struct PersistentClient {
    stream: TcpStream,
    /// Response bytes read past the last parsed response.
    buf: Vec<u8>,
}

impl PersistentClient {
    /// Open a connection to reuse.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Ok(PersistentClient { stream: connect(addr)?, buf: Vec::new() })
    }

    /// Write raw request bytes without reading anything — the
    /// pipelining primitive.
    pub fn send_raw(&mut self, raw: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(raw)?;
        self.stream.flush()
    }

    /// Serialise a request for this connection; `close` asks the server
    /// to end the connection after answering.
    pub fn request_bytes(
        method: &str,
        path: &str,
        body: &[u8],
        extra_headers: &[(&str, &str)],
        close: bool,
    ) -> Vec<u8> {
        let mut raw = format!("{method} {path} HTTP/1.1\r\nHost: taor\r\n");
        if !body.is_empty() || method == "POST" {
            raw.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        for (name, value) in extra_headers {
            raw.push_str(&format!("{name}: {value}\r\n"));
        }
        if close {
            raw.push_str("Connection: close\r\n");
        }
        raw.push_str("\r\n");
        let mut bytes = raw.into_bytes();
        bytes.extend_from_slice(body);
        bytes
    }

    /// One request-response exchange on the reused connection.
    pub fn roundtrip(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
        close: bool,
    ) -> std::io::Result<(u16, Vec<u8>)> {
        self.send_raw(&Self::request_bytes(method, path, body, &[], close))?;
        self.read_response()
    }

    /// POST a wire crop to `/recognize` on the reused connection.
    pub fn post_crop(&mut self, crop: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
        self.roundtrip("POST", "/recognize", crop, false)
    }

    /// Read exactly one `Content-Length`-framed response; surplus bytes
    /// (the next pipelined response) stay buffered.
    pub fn read_response(&mut self) -> std::io::Result<(u16, Vec<u8>)> {
        let bad =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        // Head: accumulate until the blank line.
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(bad("connection closed mid-response"));
            }
            self.buf.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
        };
        let rest = self.buf.split_off(head_end + 4);
        let head = std::mem::replace(&mut self.buf, rest);
        let head_text = std::str::from_utf8(head.get(..head_end).unwrap_or(&[]))
            .map_err(|_| bad("non-UTF-8 head"))?;
        let status = parse_status(head_text.as_bytes()).ok_or_else(|| bad("no status line"))?;
        let content_length: usize = head_text
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.trim().eq_ignore_ascii_case("content-length").then(|| value.trim())
            })
            .ok_or_else(|| bad("response without Content-Length"))?
            .parse()
            .map_err(|_| bad("unparseable Content-Length"))?;
        // Body: exact bytes; surplus stays for the next response.
        while self.buf.len() < content_length {
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(bad("connection closed mid-body"));
            }
            self.buf.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
        }
        let mut body = std::mem::take(&mut self.buf);
        self.buf = body.split_off(content_length.min(body.len()));
        Ok((status, body))
    }

    /// Has the server closed the connection? Waits up to two seconds
    /// for the close to land. Call it at quiescence (no response
    /// outstanding): a `false` may also mean unread bytes arrived.
    pub fn server_closed(&mut self) -> bool {
        // taor-lint: allow(err::swallowed-result) — probing a socket
        // that may already be closed; a failed timeout tweak just makes
        // the probe block longer.
        let _ = self.stream.set_read_timeout(Some(Duration::from_secs(2)));
        let mut probe = [0u8; 1];
        let closed = matches!(self.stream.read(&mut probe), Ok(0));
        // taor-lint: allow(err::swallowed-result) — restoring the long
        // timeout, same best-effort basis as above.
        let _ = self.stream.set_read_timeout(Some(Duration::from_secs(30)));
        closed
    }
}

/// Pipelined burst: `n` requests written in one `write`, answered in
/// order off the same socket. Returns each response's status, or the
/// error that cut the burst short.
pub fn pipelined_burst(addr: SocketAddr, n: usize) -> std::io::Result<Vec<u16>> {
    let mut client = PersistentClient::connect(addr)?;
    let mut burst = Vec::new();
    for i in 0..n {
        let close = i + 1 == n;
        burst.extend_from_slice(&PersistentClient::request_bytes(
            "GET",
            "/healthz",
            &[],
            &[],
            close,
        ));
    }
    client.send_raw(&burst)?;
    (0..n).map(|_| client.read_response().map(|(status, _)| status)).collect()
}

/// Half a request head, then silence with the socket held open — the
/// patient cousin of the slow-loris. The server's read budget must
/// answer 408 (or close), never leave the connection thread parked.
pub fn half_request_then_idle(addr: SocketAddr, idle: Duration) -> ChaosOutcome {
    let run = || -> std::io::Result<(u16, Vec<u8>)> {
        let mut stream = connect(addr)?;
        stream.write_all(b"POST /recognize HTTP/1.1\r\nHost: taor\r\nContent-Le")?;
        stream.flush()?;
        std::thread::sleep(idle);
        let response = read_to_end(&mut stream)?;
        parse_status(&response)
            .map(|s| (s, parse_body(&response)))
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line"))
    };
    outcome_of(run())
}

/// Smuggling-shaped framing: two conflicting `Content-Length` headers,
/// with a second request hidden where the larger length would put it.
/// A safe server answers 400 and closes — the hidden request must never
/// be parsed, let alone answered.
pub fn smuggled_framing(addr: SocketAddr) -> (ChaosOutcome, bool) {
    let run = || -> std::io::Result<(ChaosOutcome, bool)> {
        let mut client = PersistentClient::connect(addr)?;
        client.send_raw(
            b"POST /recognize HTTP/1.1\r\nHost: taor\r\n\
              Content-Length: 4\r\nContent-Length: 52\r\n\r\n\
              AAAAGET /healthz HTTP/1.1\r\nHost: smuggled\r\n\r\n",
        )?;
        let outcome = match client.read_response() {
            Ok((status, _)) => ChaosOutcome::Responded(status),
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => ChaosOutcome::ConnectionClosed,
            Err(e) => return Ok((ChaosOutcome::IoError(e.to_string()), false)),
        };
        // If a second response ever arrives, the hidden request was
        // served: the smuggle landed.
        let smuggle_answered = client.read_response().is_ok();
        Ok((outcome, smuggle_answered))
    };
    match run() {
        Ok(pair) => pair,
        Err(e) => (ChaosOutcome::IoError(e.to_string()), false),
    }
}

/// POST `body` to `path` with optional extra headers.
pub fn post(
    addr: SocketAddr,
    path: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
) -> std::io::Result<(u16, Vec<u8>)> {
    let mut raw =
        format!("POST {path} HTTP/1.1\r\nHost: taor\r\nContent-Length: {}\r\n", body.len());
    for (name, value) in extra_headers {
        raw.push_str(&format!("{name}: {value}\r\n"));
    }
    raw.push_str("\r\n");
    let mut bytes = raw.into_bytes();
    bytes.extend_from_slice(body);
    http_roundtrip(addr, &bytes)
}

/// POST a wire crop to `/recognize`.
pub fn post_crop(addr: SocketAddr, crop: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
    post(addr, "/recognize", crop, &[])
}

/// GET a path (for `/healthz`).
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, Vec<u8>)> {
    http_roundtrip(addr, format!("GET {path} HTTP/1.1\r\nHost: taor\r\n\r\n").as_bytes())
}

fn outcome_of(res: std::io::Result<(u16, Vec<u8>)>) -> ChaosOutcome {
    match res {
        Ok((status, _)) => ChaosOutcome::Responded(status),
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => ChaosOutcome::ConnectionClosed,
        Err(e) => ChaosOutcome::IoError(e.to_string()),
    }
}

/// Declare a large body, deliver a fraction, then half-close. The
/// server must answer 400 (truncated) rather than hang or panic.
pub fn truncated_body(addr: SocketAddr) -> ChaosOutcome {
    let run = || -> std::io::Result<(u16, Vec<u8>)> {
        let mut stream = connect(addr)?;
        stream
            .write_all(b"POST /recognize HTTP/1.1\r\nHost: taor\r\nContent-Length: 1000\r\n\r\n")?;
        stream.write_all(&[0u8; 10])?;
        stream.flush()?;
        // Half-close: the server sees EOF mid-body.
        stream.shutdown(std::net::Shutdown::Write)?;
        let response = read_to_end(&mut stream)?;
        parse_status(&response)
            .map(|s| (s, parse_body(&response)))
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line"))
    };
    outcome_of(run())
}

/// Declare a body over the server's cap. Must be 413 before any body
/// byte is transferred.
pub fn oversized_declaration(addr: SocketAddr, over: usize) -> ChaosOutcome {
    let run = || -> std::io::Result<(u16, Vec<u8>)> {
        let mut stream = connect(addr)?;
        stream.write_all(
            format!("POST /recognize HTTP/1.1\r\nHost: taor\r\nContent-Length: {over}\r\n\r\n")
                .as_bytes(),
        )?;
        stream.flush()?;
        let response = read_to_end(&mut stream)?;
        parse_status(&response)
            .map(|s| (s, parse_body(&response)))
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line"))
    };
    outcome_of(run())
}

/// Dribble the request one small chunk at a time with `gap` pauses —
/// the classic slow-loris. The server's read budget must cut it off
/// with 408 (or a close), never an unbounded stall.
pub fn slow_loris(addr: SocketAddr, chunks: usize, gap: Duration) -> ChaosOutcome {
    let run = || -> std::io::Result<(u16, Vec<u8>)> {
        let mut stream = connect(addr)?;
        for _ in 0..chunks {
            stream.write_all(b"X-Pad: y\r\n")?;
            stream.flush()?;
            std::thread::sleep(gap);
        }
        // Never sends the request line or the blank line.
        let response = read_to_end(&mut stream)?;
        parse_status(&response)
            .map(|s| (s, parse_body(&response)))
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line"))
    };
    outcome_of(run())
}

/// Write half a request head and hang up. The server must treat the
/// disconnect as that client's problem and move on.
pub fn disconnect_mid_request(addr: SocketAddr) -> ChaosOutcome {
    let run = || -> std::io::Result<()> {
        let mut stream = connect(addr)?;
        stream.write_all(b"POST /recogni")?;
        stream.flush()?;
        drop(stream);
        Ok(())
    };
    match run() {
        Ok(()) => ChaosOutcome::ConnectionClosed,
        Err(e) => ChaosOutcome::IoError(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_and_body_parse_from_raw_responses() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\n\r\n{\"error\":\"full\"}";
        assert_eq!(parse_status(raw), Some(429));
        assert_eq!(parse_body(raw), b"{\"error\":\"full\"}");
        assert_eq!(parse_status(b"garbage"), None);
        assert!(parse_body(b"no blank line").is_empty());
    }
}
