//! Client-side fault injectors: every way a robot's flaky uplink can
//! mistreat the server, packaged for the chaos tests and the load
//! generator.
//!
//! Each injector opens a raw TCP connection and misbehaves in one
//! specific way — truncated bodies, oversized declarations, slow-loris
//! dribbles, mid-request disconnects — then reports what the server
//! did. The contract under chaos is always the same: the server
//! answers *something typed* (or observes the disconnect), never
//! panics, and keeps answering well-formed requests afterwards.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// What a chaos client observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// The server answered with this status code.
    Responded(u16),
    /// The connection closed without a parseable response (fine for
    /// clients that hung up first).
    ConnectionClosed,
    /// A socket error on the client side.
    IoError(String),
}

/// Parse `HTTP/1.1 <code> ...` out of a raw response.
fn parse_status(raw: &[u8]) -> Option<u16> {
    let text = std::str::from_utf8(raw).ok()?;
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    if !parts.next()?.starts_with("HTTP/1.") {
        return None;
    }
    parts.next()?.parse().ok()
}

/// Body bytes after the blank line, if any.
fn parse_body(raw: &[u8]) -> Vec<u8> {
    raw.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| raw.get(i + 4..).unwrap_or(&[]).to_vec())
        .unwrap_or_default()
}

fn connect(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    Ok(stream)
}

fn read_to_end(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    Ok(raw)
}

/// A well-formed request: write `raw`, half-close, read the response.
/// Returns `(status, body)`.
pub fn http_roundtrip(addr: SocketAddr, raw: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
    let mut stream = connect(addr)?;
    stream.write_all(raw)?;
    stream.flush()?;
    let response = read_to_end(&mut stream)?;
    let status = parse_status(&response)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line"))?;
    Ok((status, parse_body(&response)))
}

/// POST `body` to `path` with optional extra headers.
pub fn post(
    addr: SocketAddr,
    path: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
) -> std::io::Result<(u16, Vec<u8>)> {
    let mut raw =
        format!("POST {path} HTTP/1.1\r\nHost: taor\r\nContent-Length: {}\r\n", body.len());
    for (name, value) in extra_headers {
        raw.push_str(&format!("{name}: {value}\r\n"));
    }
    raw.push_str("\r\n");
    let mut bytes = raw.into_bytes();
    bytes.extend_from_slice(body);
    http_roundtrip(addr, &bytes)
}

/// POST a wire crop to `/recognize`.
pub fn post_crop(addr: SocketAddr, crop: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
    post(addr, "/recognize", crop, &[])
}

/// GET a path (for `/healthz`).
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, Vec<u8>)> {
    http_roundtrip(addr, format!("GET {path} HTTP/1.1\r\nHost: taor\r\n\r\n").as_bytes())
}

fn outcome_of(res: std::io::Result<(u16, Vec<u8>)>) -> ChaosOutcome {
    match res {
        Ok((status, _)) => ChaosOutcome::Responded(status),
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => ChaosOutcome::ConnectionClosed,
        Err(e) => ChaosOutcome::IoError(e.to_string()),
    }
}

/// Declare a large body, deliver a fraction, then half-close. The
/// server must answer 400 (truncated) rather than hang or panic.
pub fn truncated_body(addr: SocketAddr) -> ChaosOutcome {
    let run = || -> std::io::Result<(u16, Vec<u8>)> {
        let mut stream = connect(addr)?;
        stream
            .write_all(b"POST /recognize HTTP/1.1\r\nHost: taor\r\nContent-Length: 1000\r\n\r\n")?;
        stream.write_all(&[0u8; 10])?;
        stream.flush()?;
        // Half-close: the server sees EOF mid-body.
        stream.shutdown(std::net::Shutdown::Write)?;
        let response = read_to_end(&mut stream)?;
        parse_status(&response)
            .map(|s| (s, parse_body(&response)))
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line"))
    };
    outcome_of(run())
}

/// Declare a body over the server's cap. Must be 413 before any body
/// byte is transferred.
pub fn oversized_declaration(addr: SocketAddr, over: usize) -> ChaosOutcome {
    let run = || -> std::io::Result<(u16, Vec<u8>)> {
        let mut stream = connect(addr)?;
        stream.write_all(
            format!("POST /recognize HTTP/1.1\r\nHost: taor\r\nContent-Length: {over}\r\n\r\n")
                .as_bytes(),
        )?;
        stream.flush()?;
        let response = read_to_end(&mut stream)?;
        parse_status(&response)
            .map(|s| (s, parse_body(&response)))
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line"))
    };
    outcome_of(run())
}

/// Dribble the request one small chunk at a time with `gap` pauses —
/// the classic slow-loris. The server's read budget must cut it off
/// with 408 (or a close), never an unbounded stall.
pub fn slow_loris(addr: SocketAddr, chunks: usize, gap: Duration) -> ChaosOutcome {
    let run = || -> std::io::Result<(u16, Vec<u8>)> {
        let mut stream = connect(addr)?;
        for _ in 0..chunks {
            stream.write_all(b"X-Pad: y\r\n")?;
            stream.flush()?;
            std::thread::sleep(gap);
        }
        // Never sends the request line or the blank line.
        let response = read_to_end(&mut stream)?;
        parse_status(&response)
            .map(|s| (s, parse_body(&response)))
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line"))
    };
    outcome_of(run())
}

/// Write half a request head and hang up. The server must treat the
/// disconnect as that client's problem and move on.
pub fn disconnect_mid_request(addr: SocketAddr) -> ChaosOutcome {
    let run = || -> std::io::Result<()> {
        let mut stream = connect(addr)?;
        stream.write_all(b"POST /recogni")?;
        stream.flush()?;
        drop(stream);
        Ok(())
    };
    match run() {
        Ok(()) => ChaosOutcome::ConnectionClosed,
        Err(e) => ChaosOutcome::IoError(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_and_body_parse_from_raw_responses() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\n\r\n{\"error\":\"full\"}";
        assert_eq!(parse_status(raw), Some(429));
        assert_eq!(parse_body(raw), b"{\"error\":\"full\"}");
        assert_eq!(parse_status(b"garbage"), None);
        assert!(parse_body(b"no blank line").is_empty());
    }
}
