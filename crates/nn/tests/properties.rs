//! Property-based tests for the neural-network substrate.

use proptest::prelude::*;
use taor_nn::layers::{flatten, softmax_cross_entropy, softmax_probs, Conv2D, Dense, MaxPool2D, Relu};
use taor_nn::{Adam, NormXCorr, Tensor};

fn arb_tensor(shape: &'static [usize]) -> impl Strategy<Value = Tensor> {
    let len: usize = shape.iter().product();
    proptest::collection::vec(-2.0f32..2.0, len)
        .prop_map(move |data| Tensor::from_vec(shape, data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn softmax_rows_are_distributions(t in arb_tensor(&[4, 6])) {
        let p = softmax_probs(&t).unwrap();
        for i in 0..4 {
            let row = &p.data()[i * 6..(i + 1) * 6];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn cross_entropy_nonnegative_and_finite(t in arb_tensor(&[3, 5]), targets in proptest::collection::vec(0usize..5, 3)) {
        let (loss, grad) = softmax_cross_entropy(&t, &targets).unwrap();
        prop_assert!(loss >= 0.0 && loss.is_finite());
        // Gradient rows sum to ~0 (softmax minus one-hot, scaled).
        for i in 0..3 {
            let s: f32 = grad.data()[i * 5..(i + 1) * 5].iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {} sums to {}", i, s);
        }
    }

    #[test]
    fn relu_idempotent(t in arb_tensor(&[24])) {
        let (y1, _) = Relu.forward(&t);
        let (y2, _) = Relu.forward(&y1);
        prop_assert_eq!(y1, y2);
    }

    #[test]
    fn maxpool_output_bounded_by_input(t in arb_tensor(&[1, 2, 6, 6])) {
        let pool = MaxPool2D::new(2, 2);
        let (y, _) = pool.forward(&t).unwrap();
        let max_in = t.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let max_out = y.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(max_out <= max_in + 1e-6);
        // Every pooled value exists in the input.
        for &v in y.data() {
            prop_assert!(t.data().iter().any(|&u| u == v));
        }
    }

    #[test]
    fn conv_linearity_in_input(a in arb_tensor(&[1, 1, 6, 6]), b in arb_tensor(&[1, 1, 6, 6])) {
        // conv(a + b) == conv(a) + conv(b) - conv(0) accounting for bias.
        let conv = Conv2D::new(1, 2, 3, 1, 7);
        let mut sum = a.clone();
        sum.add_assign(&b).unwrap();
        let (ya, _) = conv.forward(&a).unwrap();
        let (yb, _) = conv.forward(&b).unwrap();
        let (ysum, _) = conv.forward(&sum).unwrap();
        let (y0, _) = conv.forward(&Tensor::zeros(&[1, 1, 6, 6])).unwrap();
        for i in 0..ysum.len() {
            let lhs = ysum.data()[i];
            let rhs = ya.data()[i] + yb.data()[i] - y0.data()[i];
            prop_assert!((lhs - rhs).abs() < 1e-3, "i={}: {} vs {}", i, lhs, rhs);
        }
    }

    #[test]
    fn dense_batch_consistency(x in arb_tensor(&[3, 4])) {
        // Processing rows individually equals processing them as a batch.
        let d = Dense::new(4, 2, 3);
        let (batch, _) = d.forward(&x).unwrap();
        for i in 0..3 {
            let row = Tensor::from_vec(&[1, 4], x.data()[i * 4..(i + 1) * 4].to_vec()).unwrap();
            let (single, _) = d.forward(&row).unwrap();
            for j in 0..2 {
                prop_assert!((single.at2(0, j) - batch.at2(i, j)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn flatten_preserves_values(t in arb_tensor(&[2, 3, 2, 2])) {
        let f = flatten(&t).unwrap();
        prop_assert_eq!(f.data(), t.data());
        prop_assert_eq!(f.shape(), &[2, 12]);
    }

    #[test]
    fn xcorr_bounded_and_symmetric_at_zero_offset(
        a in arb_tensor(&[1, 1, 5, 5]),
        b in arb_tensor(&[1, 1, 5, 5]),
    ) {
        let layer = NormXCorr::new(3, 0);
        let (yab, _) = layer.forward(&a, &b).unwrap();
        let (yba, _) = layer.forward(&b, &a).unwrap();
        for (u, v) in yab.data().iter().zip(yba.data()) {
            prop_assert!(u.abs() <= 1.0 + 1e-3);
            prop_assert!((u - v).abs() < 1e-4, "zero-offset NCC must be symmetric");
        }
    }

    #[test]
    fn adam_step_moves_against_gradient(g in proptest::collection::vec(-1.0f32..1.0, 8)) {
        let mut x = Tensor::zeros(&[8]);
        let grad = Tensor::from_vec(&[8], g.clone()).unwrap();
        let mut adam = Adam::new(0.01, 0.0);
        adam.step(&mut [&mut x], &[&grad]);
        for (xv, gv) in x.data().iter().zip(&g) {
            if gv.abs() > 1e-6 {
                prop_assert!(xv.signum() == -gv.signum(), "x {} vs g {}", xv, gv);
            }
        }
    }

    #[test]
    fn matmul_associates_with_scalars(t in arb_tensor(&[3, 3]), k in 0.1f32..3.0) {
        let mut kt = t.clone();
        kt.scale(k);
        let i3 = Tensor::from_vec(
            &[3, 3],
            vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0],
        ).unwrap();
        let prod = kt.matmul(&i3).unwrap();
        for (a, b) in prod.data().iter().zip(t.data()) {
            prop_assert!((a - b * k).abs() < 1e-4);
        }
    }
}
