//! Property-based tests for the neural-network substrate.

use proptest::prelude::*;
use taor_nn::gemm::{gemm_nn, gemm_nt, gemm_tn, matmul_naive};
use taor_nn::layers::{
    flatten, softmax_cross_entropy, softmax_probs, Conv2D, Dense, MaxPool2D, Relu,
};
use taor_nn::{Adam, NormXCorr, Tensor};

/// Random GEMM problem: shapes crossing the micro/macro tile boundaries
/// (MR=6, NR=16) plus matching operand data.
fn arb_gemm() -> impl Strategy<Value = (usize, usize, usize, Vec<f32>, Vec<f32>)> {
    (1usize..80, 1usize..60, 1usize..80).prop_flat_map(|(m, n, k)| {
        (
            proptest::strategy::Just(m),
            proptest::strategy::Just(n),
            proptest::strategy::Just(k),
            proptest::collection::vec(-1.0f32..1.0, m * k),
            proptest::collection::vec(-1.0f32..1.0, k * n),
        )
    })
}

fn transpose(rows: usize, cols: usize, x: &[f32]) -> Vec<f32> {
    let mut t = vec![0.0f32; x.len()];
    for i in 0..rows {
        for j in 0..cols {
            t[j * rows + i] = x[i * cols + j];
        }
    }
    t
}

fn arb_tensor(shape: &'static [usize]) -> impl Strategy<Value = Tensor> {
    let len: usize = shape.iter().product();
    proptest::collection::vec(-2.0f32..2.0, len)
        .prop_map(move |data| Tensor::from_vec(shape, data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn softmax_rows_are_distributions(t in arb_tensor(&[4, 6])) {
        let p = softmax_probs(&t).unwrap();
        for i in 0..4 {
            let row = &p.data()[i * 6..(i + 1) * 6];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn cross_entropy_nonnegative_and_finite(t in arb_tensor(&[3, 5]), targets in proptest::collection::vec(0usize..5, 3)) {
        let (loss, grad) = softmax_cross_entropy(&t, &targets).unwrap();
        prop_assert!(loss >= 0.0 && loss.is_finite());
        // Gradient rows sum to ~0 (softmax minus one-hot, scaled).
        for i in 0..3 {
            let s: f32 = grad.data()[i * 5..(i + 1) * 5].iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {} sums to {}", i, s);
        }
    }

    #[test]
    fn relu_idempotent(t in arb_tensor(&[24])) {
        let (y1, _) = Relu.forward(&t);
        let (y2, _) = Relu.forward(&y1);
        prop_assert_eq!(y1, y2);
    }

    #[test]
    fn maxpool_output_bounded_by_input(t in arb_tensor(&[1, 2, 6, 6])) {
        let pool = MaxPool2D::new(2, 2);
        let (y, _) = pool.forward(&t).unwrap();
        let max_in = t.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let max_out = y.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(max_out <= max_in + 1e-6);
        // Every pooled value exists in the input.
        for &v in y.data() {
            prop_assert!(t.data().contains(&v));
        }
    }

    #[test]
    fn conv_linearity_in_input(a in arb_tensor(&[1, 1, 6, 6]), b in arb_tensor(&[1, 1, 6, 6])) {
        // conv(a + b) == conv(a) + conv(b) - conv(0) accounting for bias.
        let conv = Conv2D::new(1, 2, 3, 1, 7);
        let mut sum = a.clone();
        sum.add_assign(&b).unwrap();
        let (ya, _) = conv.forward(&a).unwrap();
        let (yb, _) = conv.forward(&b).unwrap();
        let (ysum, _) = conv.forward(&sum).unwrap();
        let (y0, _) = conv.forward(&Tensor::zeros(&[1, 1, 6, 6])).unwrap();
        for i in 0..ysum.len() {
            let lhs = ysum.data()[i];
            let rhs = ya.data()[i] + yb.data()[i] - y0.data()[i];
            prop_assert!((lhs - rhs).abs() < 1e-3, "i={}: {} vs {}", i, lhs, rhs);
        }
    }

    #[test]
    fn dense_batch_consistency(x in arb_tensor(&[3, 4])) {
        // Processing rows individually equals processing them as a batch.
        let d = Dense::new(4, 2, 3);
        let (batch, _) = d.forward(&x).unwrap();
        for i in 0..3 {
            let row = Tensor::from_vec(&[1, 4], x.data()[i * 4..(i + 1) * 4].to_vec()).unwrap();
            let (single, _) = d.forward(&row).unwrap();
            for j in 0..2 {
                prop_assert!((single.at2(0, j) - batch.at2(i, j)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn flatten_preserves_values(t in arb_tensor(&[2, 3, 2, 2])) {
        let f = flatten(&t).unwrap();
        prop_assert_eq!(f.data(), t.data());
        prop_assert_eq!(f.shape(), &[2, 12]);
    }

    #[test]
    fn xcorr_bounded_and_symmetric_at_zero_offset(
        a in arb_tensor(&[1, 1, 5, 5]),
        b in arb_tensor(&[1, 1, 5, 5]),
    ) {
        let layer = NormXCorr::new(3, 0);
        let (yab, _) = layer.forward(&a, &b).unwrap();
        let (yba, _) = layer.forward(&b, &a).unwrap();
        for (u, v) in yab.data().iter().zip(yba.data()) {
            prop_assert!(u.abs() <= 1.0 + 1e-3);
            prop_assert!((u - v).abs() < 1e-4, "zero-offset NCC must be symmetric");
        }
    }

    #[test]
    fn adam_step_moves_against_gradient(g in proptest::collection::vec(-1.0f32..1.0, 8)) {
        let mut x = Tensor::zeros(&[8]);
        let grad = Tensor::from_vec(&[8], g.clone()).unwrap();
        let mut adam = Adam::new(0.01, 0.0);
        adam.step(&mut [&mut x], &[&grad]);
        for (xv, gv) in x.data().iter().zip(&g) {
            if gv.abs() > 1e-6 {
                prop_assert!(xv.signum() == -gv.signum(), "x {} vs g {}", xv, gv);
            }
        }
    }

    #[test]
    fn matmul_associates_with_scalars(t in arb_tensor(&[3, 3]), k in 0.1f32..3.0) {
        let mut kt = t.clone();
        kt.scale(k);
        let i3 = Tensor::from_vec(
            &[3, 3],
            vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0],
        ).unwrap();
        let prod = kt.matmul(&i3).unwrap();
        for (a, b) in prod.data().iter().zip(t.data()) {
            prop_assert!((a - b * k).abs() < 1e-4);
        }
    }

    #[test]
    fn blocked_gemm_matches_naive_on_random_shapes((m, n, k, a, b) in arb_gemm()) {
        // The blocked kernel (packed panels, AVX2 microkernel when
        // available) must agree with the seed's ikj reference loop; the
        // tolerance scales with k because summation order differs.
        let tol = 1e-4 * k as f32;
        let mut reference = vec![0.0f32; m * n];
        matmul_naive(m, n, k, &a, &b, &mut reference);

        let mut c = vec![0.0f32; m * n];
        gemm_nn(m, n, k, &a, &b, &mut c, false);
        for (i, (x, y)) in c.iter().zip(&reference).enumerate() {
            prop_assert!((x - y).abs() <= tol, "nn ({m},{n},{k}) at {}: {} vs {}", i, x, y);
        }

        // The transposed-operand entry points must match the same
        // reference when fed explicit transposes.
        let bt = transpose(k, n, &b);
        c.fill(0.0);
        gemm_nt(m, n, k, &a, &bt, &mut c, false);
        for (i, (x, y)) in c.iter().zip(&reference).enumerate() {
            prop_assert!((x - y).abs() <= tol, "nt ({m},{n},{k}) at {}: {} vs {}", i, x, y);
        }

        let at = transpose(m, k, &a);
        c.fill(0.0);
        gemm_tn(m, n, k, &at, &b, &mut c, false);
        for (i, (x, y)) in c.iter().zip(&reference).enumerate() {
            prop_assert!((x - y).abs() <= tol, "tn ({m},{n},{k}) at {}: {} vs {}", i, x, y);
        }
    }

    #[test]
    fn conv_backward_matches_finite_differences(x in arb_tensor(&[2, 2, 5, 5])) {
        // With L = ½‖conv(x)‖², dL/dy = y, so backward(y) must return
        // dL/dx and fill dL/dW — both checkable by central differences.
        // Pins that the scratch-arena + batched-GEMM backward still
        // computes the same gradients as the definition.
        let conv = Conv2D::new(2, 3, 3, 1, 11);
        let loss = |c: &Conv2D, x: &Tensor| -> f32 {
            let (y, _) = c.forward(x).unwrap();
            0.5 * y.data().iter().map(|v| v * v).sum::<f32>()
        };
        let (y, cache) = conv.forward(&x).unwrap();
        let mut grads = conv.zero_grads();
        let dx = conv.backward(&cache, &y, &mut grads).unwrap();

        let eps = 1e-2f32;
        let close = |fd: f32, an: f32| (fd - an).abs() < 1e-2 * (1.0 + fd.abs().max(an.abs()));
        for idx in [0, 7, x.len() / 2, x.len() - 1] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (loss(&conv, &xp) - loss(&conv, &xm)) / (2.0 * eps);
            prop_assert!(close(fd, dx.data()[idx]), "dx[{}]: fd {} vs {}", idx, fd, dx.data()[idx]);
        }
        let wlen = conv.weight.len();
        for idx in [0, wlen / 3, wlen - 1] {
            let mut cp = conv.clone();
            cp.weight.data_mut()[idx] += eps;
            let mut cm = conv.clone();
            cm.weight.data_mut()[idx] -= eps;
            let fd = (loss(&cp, &x) - loss(&cm, &x)) / (2.0 * eps);
            let an = grads.weight.data()[idx];
            prop_assert!(close(fd, an), "dW[{}]: fd {} vs {}", idx, fd, an);
        }
    }
}
