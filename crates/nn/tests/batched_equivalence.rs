//! Bit-exactness pins for the batched training/inference paths.
//!
//! The batched trainer must be a pure performance transformation: its
//! logits, per-row losses, and accumulated parameter gradients are
//! pinned bit-for-bit against the retained per-sample oracle
//! ([`taor_nn::sample_pass`] / `forward_ex`), including under dropout
//! and under NaN-quarantine inputs — and [`NetGrads::tree_sum`] is
//! pinned to its fixed reduction shape so the training trajectory
//! cannot depend on the worker-pool width.

use proptest::prelude::*;
use taor_nn::layers::{softmax_cross_entropy_rows, Dense};
use taor_nn::{sample_pass, NetConfig, NetGrads, NormXCorrNet, PairSample, Tensor};

fn tiny_cfg(dropout: f32) -> NetConfig {
    NetConfig {
        height: 24,
        width: 20,
        c1: 3,
        c2: 4,
        c3: 4,
        dense: 8,
        dropout,
        ..NetConfig::default()
    }
}

fn pair_from(data_a: Vec<f32>, data_b: Vec<f32>, label: usize) -> PairSample {
    PairSample {
        a: Tensor::from_vec(&[1, 3, 24, 20], data_a).unwrap(),
        b: Tensor::from_vec(&[1, 3, 24, 20], data_b).unwrap(),
        label,
    }
}

fn stack(samples: &[PairSample]) -> (Tensor, Tensor) {
    let len = 3 * 24 * 20;
    let mut a = Vec::with_capacity(samples.len() * len);
    let mut b = Vec::with_capacity(samples.len() * len);
    for s in samples {
        a.extend_from_slice(s.a.data());
        b.extend_from_slice(s.b.data());
    }
    (
        Tensor::from_vec(&[samples.len(), 3, 24, 20], a).unwrap(),
        Tensor::from_vec(&[samples.len(), 3, 24, 20], b).unwrap(),
    )
}

/// Bitwise equality that also accepts NaN == NaN (positions pinned,
/// payloads not: IEEE 754 leaves NaN sign/payload propagation
/// unspecified and LLVM may commute operands between separately
/// compiled instances of the same fold).
fn assert_bits_eq(left: &[f32], right: &[f32], what: &str) {
    assert_eq!(left.len(), right.len(), "{what}: length");
    for (i, (a, b)) in left.iter().zip(right).enumerate() {
        if a.is_nan() && b.is_nan() {
            continue;
        }
        assert_eq!(a.to_bits(), b.to_bits(), "{what}[{i}]: {a} vs {b}");
    }
}

fn assert_grads_eq(batched: &NetGrads, oracle: &NetGrads, what: &str) {
    let l = NormXCorrNet::grads_vec(batched);
    let r = NormXCorrNet::grads_vec(oracle);
    assert_eq!(l.len(), r.len());
    for (p, (a, b)) in l.iter().zip(&r).enumerate() {
        assert_bits_eq(a.data(), b.data(), &format!("{what} param {p}"));
    }
}

/// Run the batched pass over `samples` with the trainer's seed formula
/// and pin logits, losses, correctness, and gradients against the
/// per-sample oracle accumulated in row order.
fn check_batch_against_oracle(net: &NormXCorrNet, samples: &[PairSample], seed: u64) {
    let (a, b) = stack(samples);
    let seeds: Vec<u64> = (0..samples.len()).map(|i| seed ^ (i as u64)).collect();
    let labels: Vec<usize> = samples.iter().map(|s| s.label).collect();

    let (logits, cache) = net.forward_batch(&a, &b, Some(&seeds)).unwrap();
    let (losses, grad) = softmax_cross_entropy_rows(&logits, &labels).unwrap();
    let mut batched = net.zero_grads();
    net.backward_batch(&cache, &grad, &mut batched).unwrap();

    let mut oracle = net.zero_grads();
    for (i, s) in samples.iter().enumerate() {
        let (loss, _, g) = sample_pass(net, s, seeds[i]);
        let (l1, _) = net.forward_ex(&s.a, &s.b, Some(seeds[i])).unwrap();
        assert_bits_eq(&logits.data()[i * 2..(i + 1) * 2], l1.data(), &format!("row {i} logits"));
        if !(losses[i].is_nan() && loss.is_nan()) {
            assert_eq!(losses[i].to_bits(), loss.to_bits(), "row {i} loss");
        }
        oracle.accumulate(&g).unwrap();
    }
    assert_grads_eq(&batched, &oracle, "batch");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Batched forward/backward == per-sample oracle, no dropout, odd
    /// batch sizes included (the trainer's tail micro-batches).
    #[test]
    fn batched_pass_matches_oracle(
        seed in 0u64..1000,
        n in 1usize..6,
        raw in proptest::collection::vec(-0.5f32..0.5, 6 * 3 * 24 * 20),
    ) {
        let net = NormXCorrNet::new(tiny_cfg(0.0)).unwrap();
        let len = 3 * 24 * 20;
        let samples: Vec<PairSample> = (0..n)
            .map(|i| {
                let a = raw[i * len..(i + 1) * len].to_vec();
                let mut b = a.clone();
                b.rotate_left(7);
                pair_from(a, b, i % 2)
            })
            .collect();
        check_batch_against_oracle(&net, &samples, seed);
    }

    /// Same pin with dropout enabled: per-row seeded masks must make the
    /// batched pass independent of how samples are grouped.
    #[test]
    fn batched_pass_matches_oracle_with_dropout(
        seed in 0u64..1000,
        raw in proptest::collection::vec(-0.5f32..0.5, 4 * 3 * 24 * 20),
    ) {
        let net = NormXCorrNet::new(tiny_cfg(0.4)).unwrap();
        let len = 3 * 24 * 20;
        let samples: Vec<PairSample> = (0..4)
            .map(|i| {
                let a = raw[i * len..(i + 1) * len].to_vec();
                let mut b = a.clone();
                b.reverse();
                pair_from(a, b, 1 - i % 2)
            })
            .collect();
        check_batch_against_oracle(&net, &samples, seed);
    }
}

/// NaN-quarantine inputs: a poisoned pair must not perturb a single bit
/// of the other rows' logits or of the healthy per-sample gradient
/// contributions (NaN positions coincide; payloads are unpinned).
#[test]
fn batched_pass_matches_oracle_on_nan_quarantine_inputs() {
    let net = NormXCorrNet::new(tiny_cfg(0.0)).unwrap();
    let len = 3 * 24 * 20;
    let mut samples: Vec<PairSample> = (0..3)
        .map(|i| {
            let a: Vec<f32> = (0..len).map(|v| ((v + i * 31) as f32 * 0.11).sin()).collect();
            let mut b = a.clone();
            b.rotate_left(13);
            pair_from(a, b, i % 2)
        })
        .collect();
    // Poison the middle pair.
    samples[1].a.data_mut()[17] = f32::NAN;
    samples[1].b.data_mut()[200] = f32::INFINITY;
    check_batch_against_oracle(&net, &samples, 99);
}

/// `tree_sum` is a *fixed* pairwise reduction: its result must equal the
/// hand-unrolled `((p0+p1)+(p2+p3))+p4` shape regardless of anything
/// environmental — this is the invariant that keeps training
/// byte-identical at every `TAOR_THREADS` width.
#[test]
fn tree_sum_has_fixed_reduction_shape() {
    let d = Dense::new(3, 2, 7);
    let mk = |scale: f32| {
        let mut g = d.zero_grads();
        for (i, v) in g.weight.data_mut().iter_mut().enumerate() {
            *v = scale * (i as f32 * 0.37 + 0.123);
        }
        for (i, v) in g.bias.data_mut().iter_mut().enumerate() {
            *v = scale * (i as f32 * 1.93 - 0.5);
        }
        g
    };
    // NetGrads is built from layer grads; use a real net for a full store.
    let net = NormXCorrNet::new(tiny_cfg(0.0)).unwrap();
    let parts: Vec<NetGrads> = (0..5)
        .map(|i| {
            let mut g = net.zero_grads();
            let _ = &mk(1.0); // keep Dense-based scaffolding exercised
            for t in
                [&mut g.conv1.weight, &mut g.conv2.weight, &mut g.dense1.weight, &mut g.dense2.bias]
            {
                for (j, v) in t.data_mut().iter_mut().enumerate() {
                    *v = ((i * 131 + j) as f32 * 0.017).sin();
                }
            }
            g
        })
        .collect();

    let tree = NetGrads::tree_sum(parts.clone()).unwrap().unwrap();

    let mut p01 = parts[0].clone();
    p01.accumulate(&parts[1]).unwrap();
    let mut p23 = parts[2].clone();
    p23.accumulate(&parts[3]).unwrap();
    p01.accumulate(&p23).unwrap();
    p01.accumulate(&parts[4]).unwrap();

    assert_grads_eq(&tree, &p01, "tree");
    assert!(NetGrads::tree_sum(Vec::new()).unwrap().is_none());
}
