//! Seeded weight initialisers.
//!
//! Glorot-uniform (Keras' default, used by the paper's implementation) and
//! He-uniform for ReLU towers. All initialisation is seeded so every
//! training run in the reproduction is deterministic.

use crate::tensor::Tensor;
use rand::{Rng, SeedableRng};

/// Glorot/Xavier uniform: `U(-√(6/(fan_in+fan_out)), +…)`.
pub fn glorot_uniform(shape: &[usize], fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let data = (0..shape.iter().product::<usize>()).map(|_| rng.gen_range(-limit..limit)).collect();
    // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
    Tensor::from_vec(shape, data).expect("shape/product consistent by construction")
}

/// He uniform: `U(-√(6/fan_in), +…)` — preferred before ReLU.
pub fn he_uniform(shape: &[usize], fan_in: usize, seed: u64) -> Tensor {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let limit = (6.0 / fan_in as f32).sqrt();
    let data = (0..shape.iter().product::<usize>()).map(|_| rng.gen_range(-limit..limit)).collect();
    // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
    Tensor::from_vec(shape, data).expect("shape/product consistent by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glorot_within_limits_and_seeded() {
        let t = glorot_uniform(&[10, 10], 10, 10, 42);
        let limit = (6.0f32 / 20.0).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= limit));
        let t2 = glorot_uniform(&[10, 10], 10, 10, 42);
        assert_eq!(t, t2);
        let t3 = glorot_uniform(&[10, 10], 10, 10, 43);
        assert_ne!(t, t3);
    }

    #[test]
    fn he_has_wider_limit_than_glorot_for_same_fan_in() {
        let g = glorot_uniform(&[1000], 50, 50, 7);
        let h = he_uniform(&[1000], 50, 7);
        let max_g = g.data().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        let max_h = h.data().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        assert!(max_h > max_g);
    }

    #[test]
    fn init_is_not_degenerate() {
        let t = he_uniform(&[256], 64, 1);
        let mean: f32 = t.data().iter().sum::<f32>() / 256.0;
        assert!(mean.abs() < 0.1);
        assert!(t.data().iter().any(|&v| v != 0.0));
    }
}
