// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! A minimal dense `f32` tensor.
//!
//! Row-major, owned storage, arbitrary rank. This is the only numeric
//! container the network code uses; convolution layers flatten it through
//! im2col, so no stride tricks or views are needed.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Shapes were incompatible for the requested operation.
    ShapeMismatch { expected: Vec<usize>, got: Vec<usize> },
    /// The flat data length does not match the product of the shape.
    LengthMismatch { shape: Vec<usize>, len: usize },
    /// A convolution kernel does not fit inside the padded input.
    KernelTooLarge { kernel: usize, padded_h: usize, padded_w: usize },
    /// A network input resolution is too small for the architecture to
    /// produce a non-empty feature map (e.g. the Normalized-X-Corr tower
    /// shrinks twice by conv 5x5 + pool 2 before the final pool).
    InputTooSmall { width: usize, height: usize },
    /// A training entry point was handed zero samples.
    EmptyTrainingSet,
    /// A training configuration requested a batch size of zero.
    InvalidBatchSize { batch_size: usize },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected:?}, got {got:?}")
            }
            TensorError::LengthMismatch { shape, len } => {
                write!(f, "data length {len} does not match shape {shape:?}")
            }
            TensorError::KernelTooLarge { kernel, padded_h, padded_w } => {
                write!(f, "kernel {kernel}x{kernel} exceeds padded input {padded_h}x{padded_w}")
            }
            TensorError::InputTooSmall { width, height } => {
                write!(f, "input {width}x{height} too small for the architecture")
            }
            // The next two messages are load-bearing: the legacy panicking
            // wrappers print them verbatim and callers pin them.
            TensorError::EmptyTrainingSet => write!(f, "training set is empty"),
            TensorError::InvalidBatchSize { batch_size } => {
                write!(f, "batch size must be >= 1 (got {batch_size})")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// Dense row-major `f32` tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// All-zeros tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![0.0; shape.iter().product()] }
    }

    /// Tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![value; shape.iter().product()] }
    }

    /// Wrap a flat buffer.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::LengthMismatch { shape: shape.to_vec(), len: data.len() });
        }
        Ok(Tensor { shape: shape.to_vec(), data })
    }

    /// Tensor shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat immutable data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reinterpret with a new shape of equal length.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor, TensorError> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::LengthMismatch {
                shape: shape.to_vec(),
                len: self.data.len(),
            });
        }
        Ok(Tensor { shape: shape.to_vec(), data: self.data.clone() })
    }

    /// 4-D index (NCHW convention). Debug-checked.
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 4);
        let [_, cs, hs, ws] = [self.shape[0], self.shape[1], self.shape[2], self.shape[3]];
        self.data[((n * cs + c) * hs + h) * ws + w]
    }

    /// Mutable 4-D access.
    #[inline]
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 4);
        let [_, cs, hs, ws] = [self.shape[0], self.shape[1], self.shape[2], self.shape[3]];
        &mut self.data[((n * cs + c) * hs + h) * ws + w]
    }

    /// 2-D index (row, col).
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Mutable 2-D access.
    #[inline]
    pub fn at2_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        &mut self.data[r * self.shape[1] + c]
    }

    /// Elementwise in-place addition. Shapes must match.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape.clone(),
                got: other.shape.clone(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Multiply every element by `k` in place.
    pub fn scale(&mut self, k: f32) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Set every element to zero (gradient reset between batches).
    pub fn zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Matrix product of two rank-2 tensors: `[m,k] × [k,n] → [m,n]`.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.shape.len() != 2 || other.shape.len() != 2 || self.shape[1] != other.shape[0] {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape.clone(),
                got: other.shape.clone(),
            });
        }
        let (m, k) = (self.shape[0], self.shape[1]);
        let n = other.shape[1];
        let mut out = Tensor::zeros(&[m, n]);
        crate::gemm::gemm_nn(m, n, k, &self.data, &other.data, &mut out.data, false);
        Ok(out)
    }

    /// Stack same-shaped tensors along a fresh leading batch axis:
    /// `B × [1, …] → [B, …]` (any leading dimension is replaced by the
    /// item count; every other dimension must match the first item).
    ///
    /// This is the batched-inference entry point: callers assemble a
    /// micro-batch of independent items, run it through the batch
    /// kernels once, and split the result back with
    /// [`Tensor::split_batch`]. Per-item values are bit-identical to
    /// running each item alone — the layers fold per item, independent
    /// of the batch grouping.
    pub fn stack_batch(items: &[&Tensor]) -> Result<Tensor, TensorError> {
        let Some(first) = items.first() else {
            return Err(TensorError::EmptyTrainingSet);
        };
        let per_item: usize = first.shape().iter().skip(1).product();
        let mut data = Vec::with_capacity(items.len() * per_item);
        for t in items {
            if t.shape().len() != first.shape().len() || t.shape()[1..] != first.shape()[1..] {
                return Err(TensorError::ShapeMismatch {
                    expected: first.shape().to_vec(),
                    got: t.shape().to_vec(),
                });
            }
            // Items may themselves carry a leading batch axis; flatten it.
            data.extend_from_slice(t.data());
        }
        let mut shape = first.shape().to_vec();
        shape[0] = data.len() / per_item.max(1);
        Tensor::from_vec(&shape, data)
    }

    /// Undo [`Tensor::stack_batch`]: split `[B, …]` into `B` tensors of
    /// leading dimension 1.
    pub fn split_batch(&self) -> Result<Vec<Tensor>, TensorError> {
        if self.shape.is_empty() {
            return Err(TensorError::ShapeMismatch { expected: vec![0], got: vec![] });
        }
        let n = self.shape[0];
        let plane = self.len().checked_div(n).unwrap_or(0);
        let mut shape = self.shape.clone();
        shape[0] = 1;
        (0..n)
            .map(|i| Tensor::from_vec(&shape, self.data[i * plane..(i + 1) * plane].to_vec()))
            .collect()
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose2(&self) -> Result<Tensor, TensorError> {
        if self.shape.len() != 2 {
            return Err(TensorError::ShapeMismatch {
                expected: vec![0, 0],
                got: self.shape.clone(),
            });
        }
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data[j * m + i] = self.data[i * n + j];
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_validates() {
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 4]).is_ok());
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 5]).is_err());
    }

    #[test]
    fn reshape_roundtrip() {
        let t = Tensor::from_vec(&[2, 6], (0..12).map(|v| v as f32).collect()).unwrap();
        let r = t.reshape(&[3, 4]).unwrap();
        assert_eq!(r.shape(), &[3, 4]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[5, 5]).is_err());
    }

    #[test]
    fn indexing_4d_row_major() {
        let mut t = Tensor::zeros(&[2, 3, 4, 5]);
        *t.at4_mut(1, 2, 3, 4) = 9.0;
        assert_eq!(t.at4(1, 2, 3, 4), 9.0);
        assert_eq!(t.data()[t.len() - 1], 9.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_and_matmul_identity() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let at = a.transpose2().unwrap();
        assert_eq!(at.shape(), &[3, 2]);
        assert_eq!(at.at2(0, 1), 4.0);
        let aat = a.matmul(&at).unwrap();
        // (A Aᵀ) is symmetric.
        assert_eq!(aat.at2(0, 1), aat.at2(1, 0));
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Tensor::full(&[4], 1.0);
        let b = Tensor::full(&[4], 2.0);
        a.add_assign(&b).unwrap();
        assert!(a.data().iter().all(|&v| v == 3.0));
        a.scale(0.5);
        assert!(a.data().iter().all(|&v| v == 1.5));
        let c = Tensor::zeros(&[5]);
        assert!(a.add_assign(&c).is_err());
    }

    #[test]
    fn zero_resets() {
        let mut a = Tensor::full(&[3], 7.0);
        a.zero();
        assert!(a.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn stack_and_split_batch_roundtrip() {
        let a = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(&[1, 2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let batch = Tensor::stack_batch(&[&a, &b]).unwrap();
        assert_eq!(batch.shape(), &[2, 2, 2]);
        let parts = batch.split_batch().unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn stack_batch_flattens_nested_batches_and_validates() {
        let a = Tensor::zeros(&[2, 3]); // already a 2-item batch
        let b = Tensor::zeros(&[1, 3]);
        let batch = Tensor::stack_batch(&[&a, &b]).unwrap();
        assert_eq!(batch.shape(), &[3, 3]);
        // Trailing-dimension mismatch is a typed error.
        let c = Tensor::zeros(&[1, 4]);
        assert!(matches!(Tensor::stack_batch(&[&a, &c]), Err(TensorError::ShapeMismatch { .. })));
        // Empty input is a typed error, not a panic.
        assert!(Tensor::stack_batch(&[]).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
