// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Finite-difference gradient checking utilities.
//!
//! Every layer in this crate carries a hand-derived backward pass; these
//! helpers make the "compare against central differences" pattern used
//! throughout the tests reusable, and are exported so downstream users
//! extending the network with new layers can verify their own backward
//! implementations.

use crate::tensor::Tensor;

/// Result of one gradient check.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Maximum absolute deviation between numeric and analytic gradients.
    pub max_abs_err: f32,
    /// Maximum relative deviation (guarded against tiny denominators).
    pub max_rel_err: f32,
    /// Indices checked.
    pub checked: usize,
}

impl GradCheckReport {
    /// Whether the analytic gradient is acceptable at the given relative
    /// tolerance.
    pub fn passes(&self, rel_tol: f32) -> bool {
        self.max_rel_err <= rel_tol
    }
}

/// Check an analytic gradient of a scalar function `f` with central
/// differences at the listed indices of `x`.
///
/// `f` must be deterministic. `analytic[i]` is compared against
/// `(f(x + εeᵢ) − f(x − εeᵢ)) / 2ε`.
pub fn check_gradient(
    mut f: impl FnMut(&Tensor) -> f32,
    x: &Tensor,
    analytic: &Tensor,
    indices: &[usize],
    eps: f32,
) -> GradCheckReport {
    assert_eq!(x.shape(), analytic.shape(), "gradient shape must match input");
    assert!(eps > 0.0, "eps must be positive");
    let mut probe = x.clone();
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for &i in indices {
        let orig = probe.data()[i];
        probe.data_mut()[i] = orig + eps;
        let fp = f(&probe);
        probe.data_mut()[i] = orig - eps;
        let fm = f(&probe);
        probe.data_mut()[i] = orig;
        let numeric = (fp - fm) / (2.0 * eps);
        let ana = analytic.data()[i];
        let abs = (numeric - ana).abs();
        let rel = abs / numeric.abs().max(ana.abs()).max(1e-4);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheckReport { max_abs_err: max_abs, max_rel_err: max_rel, checked: indices.len() }
}

/// Evenly spaced probe indices for a tensor of length `len` (at most
/// `count` of them) — checking every element of a conv weight is O(n²)
/// in forward passes, so tests probe a spread instead.
pub fn probe_indices(len: usize, count: usize) -> Vec<usize> {
    if len == 0 || count == 0 {
        return Vec::new();
    }
    let step = (len / count.min(len)).max(1);
    (0..len).step_by(step).take(count).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_correct_gradient() {
        // f(x) = Σ x², df/dx = 2x.
        let x = Tensor::from_vec(&[4], vec![1.0, -2.0, 0.5, 3.0]).unwrap();
        let analytic = Tensor::from_vec(&[4], x.data().iter().map(|v| 2.0 * v).collect()).unwrap();
        let report = check_gradient(
            |t| t.data().iter().map(|v| v * v).sum(),
            &x,
            &analytic,
            &[0, 1, 2, 3],
            1e-3,
        );
        assert!(report.passes(1e-2), "rel err {}", report.max_rel_err);
        assert_eq!(report.checked, 4);
    }

    #[test]
    fn detects_wrong_gradient() {
        let x = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]).unwrap();
        let wrong = Tensor::from_vec(&[3], vec![1.0, 1.0, 1.0]).unwrap();
        let report =
            check_gradient(|t| t.data().iter().map(|v| v * v).sum(), &x, &wrong, &[0, 1, 2], 1e-3);
        assert!(!report.passes(0.1), "a wrong gradient must fail the check");
    }

    #[test]
    fn probe_indices_cover_range() {
        let idx = probe_indices(100, 10);
        assert_eq!(idx.len(), 10);
        assert_eq!(idx[0], 0);
        assert!(*idx.last().unwrap() >= 81);
        assert!(probe_indices(0, 5).is_empty());
        assert_eq!(probe_indices(3, 10), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "gradient shape must match")]
    fn shape_mismatch_panics() {
        let x = Tensor::zeros(&[3]);
        let g = Tensor::zeros(&[4]);
        check_gradient(|_| 0.0, &x, &g, &[0], 1e-3);
    }
}
