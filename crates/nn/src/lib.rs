//! # taor-nn
//!
//! A minimal CPU deep-learning framework, built to reproduce the
//! Normalized-X-Corr Siamese pipeline of Chiatti et al. (EDBT/ICDT 2019
//! workshops, §3.4), which itself adapts Subramaniam et al. (NIPS 2016).
//!
//! Everything the paper's Keras/TensorFlow stack provided is implemented
//! here from scratch:
//!
//! * [`tensor`] — dense `f32` tensors with the handful of ops the network
//!   needs,
//! * [`layers`] — Conv2D (im2col), MaxPool2D, ReLU, Dense, Flatten and the
//!   fused softmax + categorical cross-entropy, all with hand-derived
//!   backward passes (finite-difference checked in the tests),
//! * [`xcorr`] — the Normalized-X-Corr cross-input neighbourhood matching
//!   layer, forward and backward,
//! * [`model`] — the full shared-weight network,
//! * [`optim`] — Adam with Keras-style learning-rate decay,
//! * [`train`] — mini-batch loop with the paper's early-stopping rule
//!   (ϵ = 1e-6, patience 10, ≤ 100 epochs).
//!
//! Layers are functional (`forward` returns output + cache, `backward`
//! consumes the cache and accumulates into an explicit gradient store),
//! which makes the Siamese weight sharing exact: the same layer applied to
//! both inputs accumulates gradients from both applications.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod gemm;
pub mod gradcheck;
pub mod init;
pub mod layers;
pub mod model;
pub mod optim;
pub mod scratch;
pub mod tensor;
pub mod train;
pub mod xcorr;

pub use gradcheck::{check_gradient, probe_indices, GradCheckReport};
pub use layers::{softmax_cross_entropy, softmax_probs, Conv2D, Dense, MaxPool2D, Relu};
pub use model::{NetConfig, NetGrads, NormXCorrNet};
pub use optim::Adam;
pub use scratch::{Scratch, ScratchBuf};
pub use tensor::{Tensor, TensorError};
pub use train::{
    predict_labels, sample_pass, train, try_predict_labels, try_train, EpochStats, PairSample,
    TrainConfig, TrainReport, MICRO_BATCH,
};
pub use xcorr::NormXCorr;
