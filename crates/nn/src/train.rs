// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Mini-batch training loop with the paper's early-stopping rule.
//!
//! §3.4: "Training samples were fed in batches of size 16 to run over up
//! to 100 epochs. An early stopping condition was defined so that training
//! would stop if the ϵ of loss decrease was lower than 1e−6 for more than
//! 10 subsequent epochs."
//!
//! Each mini-batch is split into fixed-size micro-batches that run as
//! true `[B, 3, H, W]` batched forward/backward passes, in parallel
//! across the worker pool; the per-micro-batch gradients are reduced
//! with a fixed-order tree sum ([`NetGrads::tree_sum`]). Both the micro
//! partitioning and the tree shape depend only on the batch size — never
//! on `TAOR_THREADS` — so the training trajectory is byte-identical at
//! any pool width. The retained per-sample oracle ([`sample_pass`]) pins
//! the batched pass bit-for-bit in the equivalence tests.

use crate::layers::softmax::{softmax_cross_entropy, softmax_cross_entropy_rows};
use crate::model::{NetGrads, NormXCorrNet};
use crate::optim::Adam;
use crate::tensor::{Tensor, TensorError};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

/// One labelled image pair: tensors are `[1, 3, H, W]`, label 1 = similar.
#[derive(Debug, Clone)]
pub struct PairSample {
    pub a: Tensor,
    pub b: Tensor,
    pub label: usize,
}

/// Training hyperparameters (defaults = the paper's).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    pub learning_rate: f32,
    pub decay: f32,
    pub batch_size: usize,
    pub max_epochs: usize,
    /// Loss-decrease threshold ϵ for early stopping.
    pub early_stop_eps: f32,
    /// Number of consecutive low-decrease epochs that triggers the stop.
    pub early_stop_patience: usize,
    /// L2 weight decay (0 = off).
    pub weight_decay: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 1e-4,
            decay: 1e-7,
            batch_size: 16,
            max_epochs: 100,
            early_stop_eps: 1e-6,
            early_stop_patience: 10,
            weight_decay: 0.0,
            seed: 2019,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct EpochStats {
    pub epoch: usize,
    pub mean_loss: f32,
    pub accuracy: f32,
}

/// Outcome of a training run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TrainReport {
    pub epochs: Vec<EpochStats>,
    /// Whether the early-stopping rule fired (vs. exhausting max_epochs).
    pub early_stopped: bool,
}

/// Samples per batched forward/backward pass inside a mini-batch. Fixed
/// — never derived from the thread width — so the micro partitioning and
/// the gradient-reduction tree are identical at every `TAOR_THREADS`
/// setting; four micros per paper-sized batch of 16 keep a 4-wide pool
/// busy.
pub const MICRO_BATCH: usize = 4;

/// Per-micro-batch result: (per-row losses, per-row correctness, grads).
type MicroPassResult = Result<(Vec<f32>, Vec<bool>, NetGrads), TensorError>;

/// Per-sample loss/gradient oracle: one pair through a batch-1
/// forward/backward. The training loop no longer calls this — it runs
/// batched micro-passes — but it is retained as the bit-exactness
/// reference the batched path is pinned against (see the
/// `batched_equivalence` integration tests). Returns `(loss, correct,
/// grads)`.
pub fn sample_pass(
    net: &NormXCorrNet,
    sample: &PairSample,
    dropout_seed: u64,
) -> (f32, bool, NetGrads) {
    let (logits, cache) =
        net.forward_ex(&sample.a, &sample.b, Some(dropout_seed)).expect("shapes fixed by dataset"); // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
    let (loss, grad) =
        softmax_cross_entropy(&logits, &[sample.label]).expect("logits are [1,2] by construction"); // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
    let pred = if logits.at2(0, 1) > logits.at2(0, 0) { 1 } else { 0 };
    let mut grads = net.zero_grads();
    net.backward(&cache, &grad, &mut grads).expect("backward mirrors forward"); // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
    (loss, pred == sample.label, grads)
}

/// One micro-batch: stack the selected pairs, run the batched
/// forward/backward, and return per-row losses/correctness plus the
/// micro's gradient store (per-sample contributions accumulated in row
/// order, bit-identical to the [`sample_pass`] oracle).
fn micro_pass(
    net: &NormXCorrNet,
    samples: &[PairSample],
    idxs: &[usize],
    epoch: usize,
    seed: u64,
) -> Result<(Vec<f32>, Vec<bool>, NetGrads), TensorError> {
    let pairs: Vec<&PairSample> = idxs.iter().map(|&i| &samples[i]).collect();
    let (a, b) = stack_pair_refs(&pairs);
    let labels: Vec<usize> = pairs.iter().map(|p| p.label).collect();
    // Per-sample, per-epoch dropout stream — a function of the sample
    // index, not of the batch grouping.
    let seeds: Vec<u64> =
        idxs.iter().map(|&i| seed ^ ((epoch as u64) << 32) ^ (i as u64)).collect();
    let (logits, cache) = net.forward_batch(&a, &b, Some(&seeds))?;
    let (losses, grad) = softmax_cross_entropy_rows(&logits, &labels)?;
    let correct: Vec<bool> = labels
        .iter()
        .enumerate()
        .map(|(i, &l)| usize::from(logits.at2(i, 1) > logits.at2(i, 0)) == l)
        .collect();
    let mut grads = net.zero_grads();
    net.backward_batch(&cache, &grad, &mut grads)?;
    Ok((losses, correct, grads))
}

/// Train `net` on `samples`. `on_epoch` is called after every epoch with
/// the stats so far (the repro harness uses it for progress logging).
///
/// # Panics
/// Panics on an empty training set or a zero batch size — the historical
/// contract; fallible callers should use [`try_train`].
pub fn train(
    net: &mut NormXCorrNet,
    samples: &[PairSample],
    cfg: &TrainConfig,
    on_epoch: impl FnMut(&EpochStats),
) -> TrainReport {
    // taor-lint: allow(panic::panic) — documented legacy wrapper: panicking on Err is this shim's contract; callers wanting Results use the try_* API
    try_train(net, samples, cfg, on_epoch).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`train`]: typed errors instead of panics for the empty
/// training set and invalid batch size conditions.
pub fn try_train(
    net: &mut NormXCorrNet,
    samples: &[PairSample],
    cfg: &TrainConfig,
    mut on_epoch: impl FnMut(&EpochStats),
) -> Result<TrainReport, TensorError> {
    if samples.is_empty() {
        return Err(TensorError::EmptyTrainingSet);
    }
    if cfg.batch_size < 1 {
        return Err(TensorError::InvalidBatchSize { batch_size: cfg.batch_size });
    }
    let mut adam = Adam::new(cfg.learning_rate, cfg.decay).with_weight_decay(cfg.weight_decay);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(cfg.seed);

    let mut epochs = Vec::new();
    let mut prev_loss = f32::INFINITY;
    let mut stall = 0usize;
    let mut early_stopped = false;

    for epoch in 0..cfg.max_epochs {
        order.shuffle(&mut rng);
        let mut total_loss = 0.0f64;
        let mut correct = 0usize;

        for chunk in order.chunks(cfg.batch_size) {
            // Batched micro-passes in parallel (ordered collect), then a
            // fixed-order tree reduction of the micro gradients.
            let results: Vec<MicroPassResult> = chunk
                .par_chunks(MICRO_BATCH)
                .map(|idxs| micro_pass(net, samples, idxs, epoch, cfg.seed))
                .collect();
            let mut parts = Vec::with_capacity(results.len());
            for r in results {
                let (losses, oks, g) = r?;
                for l in &losses {
                    total_loss += *l as f64;
                }
                correct += oks.iter().filter(|&&ok| ok).count();
                parts.push(g);
            }
            let mut batch_grads = match NetGrads::tree_sum(parts)? {
                Some(g) => g,
                None => continue,
            };
            batch_grads.scale(1.0 / chunk.len() as f32);
            // The gradient store and the network are disjoint objects, so
            // Adam can read the gradients in place — no per-step clone.
            let grefs = NormXCorrNet::grads_vec(&batch_grads);
            adam.step(&mut net.params_mut(), &grefs);
        }

        let mean_loss = (total_loss / samples.len() as f64) as f32;
        let stats =
            EpochStats { epoch, mean_loss, accuracy: correct as f32 / samples.len() as f32 };
        on_epoch(&stats);
        epochs.push(stats);

        // Early stopping on loss-decrease plateau.
        let decrease = prev_loss - mean_loss;
        if decrease < cfg.early_stop_eps {
            stall += 1;
            if stall > cfg.early_stop_patience {
                early_stopped = true;
                break;
            }
        } else {
            stall = 0;
        }
        prev_loss = mean_loss;
    }
    Ok(TrainReport { epochs, early_stopped })
}

/// Pairs stacked per forward pass during evaluation. The whole chunk
/// moves through the network as one `[B, 3, H, W]` batch, so each layer
/// costs a single GEMM instead of `B` small ones.
const EVAL_BATCH: usize = 16;

/// Stack a chunk of `[1, 3, H, W]` pairs into one `[B, 3, H, W]` pair.
fn stack_pairs(chunk: &[PairSample]) -> (Tensor, Tensor) {
    let refs: Vec<&PairSample> = chunk.iter().collect();
    stack_pair_refs(&refs)
}

/// [`stack_pairs`] over borrowed pairs (the training loop indexes into a
/// shuffled order and never owns a contiguous chunk).
fn stack_pair_refs(chunk: &[&PairSample]) -> (Tensor, Tensor) {
    let s = chunk[0].a.shape();
    let (c, h, w) = (s[1], s[2], s[3]);
    let mut a = Vec::with_capacity(chunk.len() * c * h * w);
    let mut b = Vec::with_capacity(chunk.len() * c * h * w);
    for sample in chunk {
        a.extend_from_slice(sample.a.data());
        b.extend_from_slice(sample.b.data());
    }
    (
        Tensor::from_vec(&[chunk.len(), c, h, w], a).expect("uniform pair shapes"), // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
        Tensor::from_vec(&[chunk.len(), c, h, w], b).expect("uniform pair shapes"), // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
    )
}

/// Evaluate: predicted label (argmax) per sample.
///
/// # Panics
/// Panics on malformed pair shapes; fallible callers should use
/// [`try_predict_labels`].
pub fn predict_labels(net: &NormXCorrNet, samples: &[PairSample]) -> Vec<usize> {
    // taor-lint: allow(panic::panic) — documented legacy wrapper: panicking on Err is this shim's contract; callers wanting Results use the try_* API
    try_predict_labels(net, samples).unwrap_or_else(|e| panic!("predict_labels: {e}"))
}

/// Fallible [`predict_labels`]: pool-parallel batched scoring with typed
/// errors.
pub fn try_predict_labels(
    net: &NormXCorrNet,
    samples: &[PairSample],
) -> Result<Vec<usize>, TensorError> {
    let results: Vec<Result<Vec<usize>, TensorError>> = samples
        .par_chunks(EVAL_BATCH)
        .map(|chunk| {
            let (a, b) = stack_pairs(chunk);
            let probs = net.predict_similar(&a, &b)?;
            Ok(probs.into_iter().map(|p| usize::from(p > 0.5)).collect::<Vec<_>>())
        })
        .collect();
    let mut out = Vec::with_capacity(samples.len());
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NetConfig;
    use rand::Rng;

    fn tiny_net() -> NormXCorrNet {
        NormXCorrNet::new(NetConfig {
            height: 24,
            width: 20,
            c1: 3,
            c2: 4,
            c3: 4,
            dense: 8,
            ..Default::default()
        })
        .expect("test config is large enough")
    }

    /// Trivially separable data: "similar" pairs are both bright, others
    /// are bright-vs-dark.
    fn separable_samples(n: usize, h: usize, w: usize, seed: u64) -> Vec<PairSample> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let label = i % 2;
                let len = 3 * h * w;
                let bright: Vec<f32> = (0..len).map(|_| 0.8 + rng.gen_range(-0.1..0.1)).collect();
                let other: Vec<f32> = if label == 1 {
                    (0..len).map(|_| 0.8 + rng.gen_range(-0.1..0.1)).collect()
                } else {
                    (0..len).map(|_| -0.8 + rng.gen_range(-0.1..0.1)).collect()
                };
                PairSample {
                    a: Tensor::from_vec(&[1, 3, h, w], bright).unwrap(),
                    b: Tensor::from_vec(&[1, 3, h, w], other).unwrap(),
                    label,
                }
            })
            .collect()
    }

    #[test]
    fn loss_decreases_on_separable_data() {
        let mut net = tiny_net();
        let samples = separable_samples(24, 24, 20, 7);
        let cfg =
            TrainConfig { learning_rate: 1e-3, max_epochs: 6, batch_size: 8, ..Default::default() };
        let report = train(&mut net, &samples, &cfg, |_| {});
        let first = report.epochs.first().unwrap().mean_loss;
        let last = report.epochs.last().unwrap().mean_loss;
        assert!(last < first, "loss {first} -> {last} should decrease");
    }

    #[test]
    fn early_stopping_fires_on_plateau() {
        let mut net = tiny_net();
        let samples = separable_samples(8, 24, 20, 9);
        // Zero learning rate: loss cannot decrease, so the plateau rule
        // must fire after `patience + 1` epochs.
        let cfg = TrainConfig {
            learning_rate: 0.0,
            max_epochs: 50,
            batch_size: 8,
            early_stop_patience: 3,
            ..Default::default()
        };
        let report = train(&mut net, &samples, &cfg, |_| {});
        assert!(report.early_stopped);
        assert!(report.epochs.len() <= 6, "stopped after {} epochs", report.epochs.len());
    }

    #[test]
    fn epoch_callback_sees_every_epoch() {
        let mut net = tiny_net();
        let samples = separable_samples(8, 24, 20, 11);
        let cfg = TrainConfig { max_epochs: 3, batch_size: 4, ..Default::default() };
        let mut seen = Vec::new();
        let report = train(&mut net, &samples, &cfg, |s| seen.push(s.epoch));
        assert_eq!(seen.len(), report.epochs.len());
    }

    #[test]
    fn predict_labels_shape() {
        let net = tiny_net();
        let samples = separable_samples(6, 24, 20, 13);
        let labels = predict_labels(&net, &samples);
        assert_eq!(labels.len(), 6);
        assert!(labels.iter().all(|&l| l == 0 || l == 1));
    }

    #[test]
    #[should_panic(expected = "training set is empty")]
    fn empty_training_set_panics() {
        let mut net = tiny_net();
        let cfg = TrainConfig::default();
        train(&mut net, &[], &cfg, |_| {});
    }

    #[test]
    #[should_panic(expected = "batch size must be >= 1")]
    fn zero_batch_size_panics() {
        let mut net = tiny_net();
        let samples = separable_samples(4, 24, 20, 15);
        let cfg = TrainConfig { batch_size: 0, ..Default::default() };
        train(&mut net, &samples, &cfg, |_| {});
    }

    #[test]
    fn try_train_reports_typed_errors() {
        let mut net = tiny_net();
        let cfg = TrainConfig::default();
        assert!(matches!(
            try_train(&mut net, &[], &cfg, |_| {}),
            Err(TensorError::EmptyTrainingSet)
        ));
        let samples = separable_samples(4, 24, 20, 15);
        let bad = TrainConfig { batch_size: 0, ..Default::default() };
        assert!(matches!(
            try_train(&mut net, &samples, &bad, |_| {}),
            Err(TensorError::InvalidBatchSize { batch_size: 0 })
        ));
    }

    #[test]
    fn try_predict_labels_matches_panicking_wrapper() {
        let net = tiny_net();
        let samples = separable_samples(6, 24, 20, 13);
        assert_eq!(try_predict_labels(&net, &samples).unwrap(), predict_labels(&net, &samples));
    }
}
