// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! The Normalized-X-Corr cross-input matching layer.
//!
//! Subramaniam, Chatterjee & Mittal (NIPS 2016) replace the Siamese
//! "exact" similarity (cosine of two embeddings) with an *inexact*
//! matching layer: every local patch of feature stack A is correlated,
//! under normalised cross-correlation, against patches of feature stack B
//! over a neighbourhood of displacements. "regions of pixels across the
//! two image representations are compared so that a larger region is
//! carried over from one image to another during the matching, hence
//! explaining its inexact nature" (paper §3.4). The output is symmetric in
//! the two inputs up to the displacement sign, and is fed to further
//! conv + maxpool stages.
//!
//! For inputs `[N, C, H, W]` the layer emits `[N, C·K, H, W]` where
//! `K = (2·radius+1)²` displacement cells; channel `c·K + k` at `(x, y)`
//! holds `NCC(patch_A(c, x, y), patch_B(c, x+dx_k, y+dy_k))` with
//!
//! `NCC(a, b) = ⟨â, b̂⟩ / (‖â‖·‖b̂‖ + ε)`,  `â = a − mean(a)`.
//!
//! Patches are square (`patch` side) with zero padding outside the map.
//!
//! Two implementations live here. [`NormXCorr::forward`] /
//! [`NormXCorr::backward`] expand each `(n, c)` plane once into
//! mean-centred *patch panels* held in the [`Scratch`] arena and turn
//! every displacement cell into a banded row-product between the A panel
//! and a shifted view of the B panel — the layout the PR-3 norm-trick
//! matcher uses for its GEMM panels. Each output dot keeps the exact
//! sequential `j = 0..psz` fold of the scalar path, so the results are
//! bit-identical to [`NormXCorr::forward_naive`] /
//! [`NormXCorr::backward_naive`], which are retained as the
//! bit-exactness oracles. (Bit-identical up to NaN payloads: IEEE 754
//! leaves NaN sign/payload propagation unspecified and the compiler may
//! commute `fmul`/`fadd` operands, so on NaN-quarantine inputs only the
//! NaN *positions* are pinned, not their payload bits.) (a full `taor_nn::gemm` call is deliberately
//! not used: the needed output is a `K`-band of the `PAᵀ·PB` product and
//! the shared `k = psz` dimension is tiny, so packing overhead would
//! dominate the saved flops).

use crate::scratch::Scratch;
use crate::tensor::{Tensor, TensorError};

/// Stabiliser added to the product of patch norms.
const EPS: f32 = 1e-4;
/// Norm below which a patch is treated as flat (zero direction vector).
const FLAT: f32 = 1e-6;

/// Normalized cross-correlation layer configuration.
#[derive(Debug, Clone, Copy)]
pub struct NormXCorr {
    /// Patch side (odd).
    pub patch: usize,
    /// Displacement radius; K = (2r+1)² offsets.
    pub radius: usize,
}

/// Cache for the backward pass: the two inputs.
pub struct XCorrCache {
    a: Tensor,
    b: Tensor,
}

impl NormXCorr {
    /// New layer; `patch` must be odd and ≥ 1.
    pub fn new(patch: usize, radius: usize) -> Self {
        assert!(patch % 2 == 1 && patch >= 1, "patch side must be odd");
        NormXCorr { patch, radius }
    }

    /// Number of displacement cells.
    pub fn offsets(&self) -> usize {
        let k = 2 * self.radius + 1;
        k * k
    }

    /// Output channel count for `c` input channels.
    pub fn out_channels(&self, c: usize) -> usize {
        c * self.offsets()
    }

    fn check(&self, a: &Tensor, b: &Tensor) -> Result<[usize; 4], TensorError> {
        if a.shape() != b.shape() || a.shape().len() != 4 {
            return Err(TensorError::ShapeMismatch {
                expected: a.shape().to_vec(),
                got: b.shape().to_vec(),
            });
        }
        let s = a.shape();
        Ok([s[0], s[1], s[2], s[3]])
    }

    /// Collect the zero-padded patch of `t` centred at `(cx, cy)` in plane
    /// `(n, c)`, subtract its mean, and return `(centred, norm)`.
    fn centred_patch(
        &self,
        t: &Tensor,
        n: usize,
        c: usize,
        cx: i64,
        cy: i64,
        buf: &mut [f32],
    ) -> f32 {
        let s = t.shape();
        let (h, w) = (s[2] as i64, s[3] as i64);
        let r = (self.patch / 2) as i64;
        let mut sum = 0.0f32;
        let mut i = 0usize;
        for dy in -r..=r {
            for dx in -r..=r {
                let x = cx + dx;
                let y = cy + dy;
                let v = if x >= 0 && x < w && y >= 0 && y < h {
                    t.at4(n, c, y as usize, x as usize)
                } else {
                    0.0
                };
                buf[i] = v;
                sum += v;
                i += 1;
            }
        }
        let mean = sum / buf.len() as f32;
        let mut norm_sq = 0.0f32;
        for v in buf.iter_mut() {
            *v -= mean;
            norm_sq += *v * *v;
        }
        norm_sq.sqrt()
    }

    /// Expand one `h × w` plane into a mean-centred patch panel.
    ///
    /// Column `ey·(w+2·pad) + ex` holds the centred patch around centre
    /// `(ex − pad, ey − pad)`; row `j` is patch element `j` (row-major
    /// `(dy, dx)` order), i.e. the panel is stored transposed so the
    /// displacement kernels read contiguous rows. `norms[col]` is the
    /// centred patch's Euclidean norm. Per column this replays
    /// [`Self::centred_patch`]'s fill/sum/centre order exactly, so every
    /// stored value and norm is bit-identical to the scalar path.
    fn build_panel(
        &self,
        plane: &[f32],
        h: usize,
        w: usize,
        pad: usize,
        panel: &mut [f32],
        norms: &mut [f32],
    ) {
        let r = (self.patch / 2) as i64;
        let psz = self.patch * self.patch;
        let (gh, gw) = (h + 2 * pad, w + 2 * pad);
        let ncols = gh * gw;
        let mut col = 0usize;
        for ey in 0..gh {
            let cy = ey as i64 - pad as i64;
            for ex in 0..gw {
                let cx = ex as i64 - pad as i64;
                let mut sum = 0.0f32;
                let mut i = 0usize;
                for dy in -r..=r {
                    for dx in -r..=r {
                        let x = cx + dx;
                        let y = cy + dy;
                        let v = if x >= 0 && x < w as i64 && y >= 0 && y < h as i64 {
                            plane[y as usize * w + x as usize]
                        } else {
                            0.0
                        };
                        panel[i * ncols + col] = v;
                        sum += v;
                        i += 1;
                    }
                }
                let mean = sum / psz as f32;
                let mut norm_sq = 0.0f32;
                for j in 0..psz {
                    let p = &mut panel[j * ncols + col];
                    *p -= mean;
                    norm_sq += *p * *p;
                }
                norms[col] = norm_sq.sqrt();
                col += 1;
            }
        }
    }

    /// Forward: `(A, B)` of shape `[N, C, H, W]` → `[N, C·K, H, W]`.
    ///
    /// Panel formulation: both planes are centred once ([`Self::build_panel`]),
    /// then each displacement cell is a banded row-product between the A
    /// panel and a shifted window of the B panel. Bit-identical to
    /// [`Self::forward_naive`] (pinned by the `*_matches_naive` tests).
    pub fn forward(&self, a: &Tensor, b: &Tensor) -> Result<(Tensor, XCorrCache), TensorError> {
        let [n, c, h, w] = self.check(a, b)?;
        let k_side = 2 * self.radius + 1;
        let koff = self.offsets();
        let psz = self.patch * self.patch;
        let rad = self.radius;
        let npos = h * w;
        let (gh, gw) = (h + 2 * rad, w + 2 * rad);
        let next = gh * gw;
        let mut out = Tensor::zeros(&[n, c * koff, h, w]);
        let out_data = out.data_mut();
        let mut pa = Scratch::take(psz * npos);
        let mut pb = Scratch::take(psz * next);
        let mut norms_a = Scratch::take(npos);
        let mut norms_b = Scratch::take(next);
        let mut acc = Scratch::take(w);
        let a_data = a.data();
        let b_data = b.data();
        for ni in 0..n {
            for ci in 0..c {
                let plane = (ni * c + ci) * npos;
                self.build_panel(&a_data[plane..plane + npos], h, w, 0, &mut pa, &mut norms_a);
                self.build_panel(&b_data[plane..plane + npos], h, w, rad, &mut pb, &mut norms_b);
                for ky in 0..k_side {
                    for kx in 0..k_side {
                        let oc = ci * koff + ky * k_side + kx;
                        for y in 0..h {
                            // B centre for output (y, x) at this offset is
                            // extended-grid cell (y + ky, x + kx).
                            let bbase = (y + ky) * gw + kx;
                            let arow = y * w;
                            acc[..w].fill(0.0);
                            // j-outer so each acc[x] is the same sequential
                            // j-fold as the scalar dot product.
                            for j in 0..psz {
                                let pa_row = &pa[j * npos + arow..j * npos + arow + w];
                                let pb_row = &pb[j * next + bbase..j * next + bbase + w];
                                for x in 0..w {
                                    acc[x] += pa_row[x] * pb_row[x];
                                }
                            }
                            let orow = ((ni * c * koff + oc) * h + y) * w;
                            for x in 0..w {
                                out_data[orow + x] =
                                    acc[x] / (norms_a[arow + x] * norms_b[bbase + x] + EPS);
                            }
                        }
                    }
                }
            }
        }
        Ok((out, XCorrCache { a: a.clone(), b: b.clone() }))
    }

    /// Reference scalar forward, retained as the bit-exactness oracle for
    /// the panel path: [`Self::forward`] must match it bit-for-bit,
    /// including NaN payloads.
    pub fn forward_naive(
        &self,
        a: &Tensor,
        b: &Tensor,
    ) -> Result<(Tensor, XCorrCache), TensorError> {
        let [n, c, h, w] = self.check(a, b)?;
        let k_side = 2 * self.radius as i64 + 1;
        let koff = self.offsets();
        let psz = self.patch * self.patch;
        let mut out = Tensor::zeros(&[n, c * koff, h, w]);
        let mut pa = vec![0.0f32; psz];
        let mut pb = vec![0.0f32; psz];
        for ni in 0..n {
            for ci in 0..c {
                for y in 0..h as i64 {
                    for x in 0..w as i64 {
                        let na = self.centred_patch(a, ni, ci, x, y, &mut pa);
                        for ky in 0..k_side {
                            for kx in 0..k_side {
                                let dy = ky - self.radius as i64;
                                let dx = kx - self.radius as i64;
                                let nb = self.centred_patch(b, ni, ci, x + dx, y + dy, &mut pb);
                                let dot: f32 = pa.iter().zip(&pb).map(|(&u, &v)| u * v).sum();
                                let ncc = dot / (na * nb + EPS);
                                let oc = ci * koff + (ky * k_side + kx) as usize;
                                *out.at4_mut(ni, oc, y as usize, x as usize) = ncc;
                            }
                        }
                    }
                }
            }
        }
        Ok((out, XCorrCache { a: a.clone(), b: b.clone() }))
    }

    /// Scatter `grad * d(ncc)/d(patch)` back into `grad_t` for the patch of
    /// `t` centred at `(cx, cy)`.
    #[allow(clippy::too_many_arguments)]
    fn scatter_patch_grad(
        &self,
        grad_t: &mut Tensor,
        n: usize,
        c: usize,
        cx: i64,
        cy: i64,
        dvals: &[f32],
    ) {
        let s = grad_t.shape();
        let (h, w) = (s[2], s[3]);
        let base = (n * s[1] + c) * h * w;
        Self::scatter_into_plane(
            self.patch,
            &mut grad_t.data_mut()[base..base + h * w],
            h,
            w,
            cx,
            cy,
            dvals,
        );
    }

    /// Plane-slice core of [`Self::scatter_patch_grad`]: identical add
    /// order and boundary handling, with the plane base hoisted by the
    /// caller so the hot backward loop skips per-element 4-D indexing.
    fn scatter_into_plane(
        patch: usize,
        plane: &mut [f32],
        h: usize,
        w: usize,
        cx: i64,
        cy: i64,
        dvals: &[f32],
    ) {
        let r = (patch / 2) as i64;
        let (hi, wi) = (h as i64, w as i64);
        // Chain through the mean subtraction: the gradient w.r.t. the raw
        // patch is (I − 11ᵀ/n) · dvals, and positions outside the image are
        // dropped (they were constant zeros, not samples of t).
        let mean_d: f32 = dvals.iter().sum::<f32>() / dvals.len() as f32;
        let mut i = 0usize;
        for dy in -r..=r {
            let y = cy + dy;
            if y < 0 || y >= hi {
                i += patch;
                continue;
            }
            let row = y as usize * w;
            for dx in -r..=r {
                let x = cx + dx;
                if x >= 0 && x < wi {
                    plane[row + x as usize] += dvals[i] - mean_d;
                }
                i += 1;
            }
        }
    }

    /// Backward: returns `(grad_a, grad_b)`.
    ///
    /// Panel formulation: the centred panels and every `(position,
    /// displacement)` dot product are precomputed with the forward's
    /// banded kernel, then the scatter loop replays the oracle's exact
    /// `(y, x, ky, kx)` order — including the `g == 0` sparsity skip and
    /// the `FLAT`-gated norm coefficients — reading patches out of the
    /// panels instead of re-extracting them per displacement.
    /// Bit-identical to [`Self::backward_naive`].
    pub fn backward(
        &self,
        cache: &XCorrCache,
        grad_out: &Tensor,
    ) -> Result<(Tensor, Tensor), TensorError> {
        let [n, c, h, w] = self.check(&cache.a, &cache.b)?;
        let k_side = 2 * self.radius + 1;
        let koff = self.offsets();
        let psz = self.patch * self.patch;
        let rad = self.radius;
        let npos = h * w;
        let (gh, gw) = (h + 2 * rad, w + 2 * rad);
        let next = gh * gw;
        let mut grad_a = Tensor::zeros(cache.a.shape());
        let mut grad_b = Tensor::zeros(cache.b.shape());
        let mut pa = Scratch::take(psz * npos);
        let mut pb = Scratch::take(psz * next);
        let mut norms_a = Scratch::take(npos);
        let mut norms_b = Scratch::take(next);
        let mut dots = Scratch::take(koff * npos);
        let mut da = Scratch::take(psz);
        let mut db = Scratch::take(psz);
        let mut pa_patch = Scratch::take(psz);
        let a_data = cache.a.data();
        let b_data = cache.b.data();
        let go_data = grad_out.data();
        let ga_data = grad_a.data_mut();
        let gb_data = grad_b.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let plane = (ni * c + ci) * npos;
                self.build_panel(&a_data[plane..plane + npos], h, w, 0, &mut pa, &mut norms_a);
                self.build_panel(&b_data[plane..plane + npos], h, w, rad, &mut pb, &mut norms_b);
                // Same banded kernel as the forward, so each dot is the
                // identical sequential j-fold the oracle computes inline.
                for ky in 0..k_side {
                    for kx in 0..k_side {
                        let off = ky * k_side + kx;
                        for y in 0..h {
                            let bbase = (y + ky) * gw + kx;
                            let arow = y * w;
                            let drow = off * npos + arow;
                            dots[drow..drow + w].fill(0.0);
                            for j in 0..psz {
                                let pa_row = &pa[j * npos + arow..j * npos + arow + w];
                                let pb_row = &pb[j * next + bbase..j * next + bbase + w];
                                for x in 0..w {
                                    dots[drow + x] += pa_row[x] * pb_row[x];
                                }
                            }
                        }
                    }
                }
                // Scatter in the oracle's (y, x, ky, kx) order, on raw
                // plane slices with the A patch gathered once per position.
                let gbase = plane * koff;
                let ga_plane = &mut ga_data[plane..plane + npos];
                let gb_plane = &mut gb_data[plane..plane + npos];
                for y in 0..h {
                    for x in 0..w {
                        let pos = y * w + x;
                        let na = norms_a[pos];
                        for (i, p) in pa_patch.iter_mut().enumerate().take(psz) {
                            *p = pa[i * npos + pos];
                        }
                        for ky in 0..k_side {
                            for kx in 0..k_side {
                                let off = ky * k_side + kx;
                                let g = go_data[gbase + off * npos + pos];
                                // taor-lint: allow(float::eq) — sparsity skip: only a bit-exact zero may be elided
                                if g == 0.0 {
                                    continue;
                                }
                                let epos = (y + ky) * gw + (x + kx);
                                let nb = norms_b[epos];
                                let dot = dots[off * npos + pos];
                                let denom = na * nb + EPS;
                                let inv = 1.0 / denom;
                                let coef_a =
                                    if na > FLAT { dot * nb / (na * denom * denom) } else { 0.0 };
                                let coef_b =
                                    if nb > FLAT { dot * na / (nb * denom * denom) } else { 0.0 };
                                for i in 0..psz {
                                    let (u, v) = (pa_patch[i], pb[i * next + epos]);
                                    da[i] = g * (v * inv - coef_a * u);
                                    db[i] = g * (u * inv - coef_b * v);
                                }
                                let (cy, cx) = (y as i64, x as i64);
                                let (dy, dx) = (ky as i64 - rad as i64, kx as i64 - rad as i64);
                                Self::scatter_into_plane(self.patch, ga_plane, h, w, cx, cy, &da);
                                Self::scatter_into_plane(
                                    self.patch,
                                    gb_plane,
                                    h,
                                    w,
                                    cx + dx,
                                    cy + dy,
                                    &db,
                                );
                            }
                        }
                    }
                }
            }
        }
        Ok((grad_a, grad_b))
    }

    /// Reference scalar backward, retained as the bit-exactness oracle
    /// for the panel path: [`Self::backward`] must match it bit-for-bit.
    pub fn backward_naive(
        &self,
        cache: &XCorrCache,
        grad_out: &Tensor,
    ) -> Result<(Tensor, Tensor), TensorError> {
        let [n, c, h, w] = self.check(&cache.a, &cache.b)?;
        let k_side = 2 * self.radius as i64 + 1;
        let koff = self.offsets();
        let psz = self.patch * self.patch;
        let mut grad_a = Tensor::zeros(cache.a.shape());
        let mut grad_b = Tensor::zeros(cache.b.shape());
        let mut pa = vec![0.0f32; psz];
        let mut pb = vec![0.0f32; psz];
        let mut da = vec![0.0f32; psz];
        let mut db = vec![0.0f32; psz];

        for ni in 0..n {
            for ci in 0..c {
                for y in 0..h as i64 {
                    for x in 0..w as i64 {
                        let na = self.centred_patch(&cache.a, ni, ci, x, y, &mut pa);
                        for ky in 0..k_side {
                            for kx in 0..k_side {
                                let dy = ky - self.radius as i64;
                                let dx = kx - self.radius as i64;
                                let oc = ci * koff + (ky * k_side + kx) as usize;
                                let g = grad_out.at4(ni, oc, y as usize, x as usize);
                                // taor-lint: allow(float::eq) — sparsity skip: only a bit-exact zero may be elided
                                if g == 0.0 {
                                    continue;
                                }
                                let nb =
                                    self.centred_patch(&cache.b, ni, ci, x + dx, y + dy, &mut pb);
                                let dot: f32 = pa.iter().zip(&pb).map(|(&u, &v)| u * v).sum();
                                let denom = na * nb + EPS;
                                let inv = 1.0 / denom;
                                // d(ncc)/dâ = b̂/denom − dot·nb·(â/‖â‖)/denom²
                                // d(ncc)/db̂ symmetric.
                                let coef_a =
                                    if na > FLAT { dot * nb / (na * denom * denom) } else { 0.0 };
                                let coef_b =
                                    if nb > FLAT { dot * na / (nb * denom * denom) } else { 0.0 };
                                for i in 0..psz {
                                    da[i] = g * (pb[i] * inv - coef_a * pa[i]);
                                    db[i] = g * (pa[i] * inv - coef_b * pb[i]);
                                }
                                self.scatter_patch_grad(&mut grad_a, ni, ci, x, y, &da);
                                self.scatter_patch_grad(&mut grad_b, ni, ci, x + dx, y + dy, &db);
                            }
                        }
                    }
                }
            }
        }
        Ok((grad_a, grad_b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor_from(shape: &[usize], f: impl Fn(usize) -> f32) -> Tensor {
        let len: usize = shape.iter().product();
        Tensor::from_vec(shape, (0..len).map(f).collect()).unwrap()
    }

    #[test]
    fn output_shape() {
        let layer = NormXCorr::new(3, 1);
        let a = Tensor::zeros(&[2, 4, 5, 6]);
        let b = Tensor::zeros(&[2, 4, 5, 6]);
        let (y, _) = layer.forward(&a, &b).unwrap();
        assert_eq!(y.shape(), &[2, 36, 5, 6]);
        assert_eq!(layer.offsets(), 9);
        assert_eq!(layer.out_channels(4), 36);
    }

    #[test]
    fn identical_inputs_give_unit_centre_correlation() {
        let layer = NormXCorr::new(3, 1);
        let a = tensor_from(&[1, 1, 7, 7], |i| ((i * 37) % 11) as f32 - 5.0);
        let (y, _) = layer.forward(&a, &a).unwrap();
        // Zero-displacement cell is channel index radius*k_side + radius = 4.
        for yy in 1..6usize {
            for xx in 1..6usize {
                let v = y.at4(0, 4, yy, xx);
                assert!(v > 0.9, "self-NCC at ({xx},{yy}) = {v}");
            }
        }
    }

    #[test]
    fn values_bounded_by_one() {
        let layer = NormXCorr::new(3, 1);
        let a = tensor_from(&[1, 2, 6, 6], |i| (i as f32 * 0.7).sin());
        let b = tensor_from(&[1, 2, 6, 6], |i| (i as f32 * 1.3).cos());
        let (y, _) = layer.forward(&a, &b).unwrap();
        for &v in y.data() {
            assert!(v.abs() <= 1.0 + 1e-4, "|ncc| = {v}");
        }
    }

    #[test]
    fn anticorrelated_patches_score_negative() {
        let layer = NormXCorr::new(3, 0);
        let a = tensor_from(&[1, 1, 5, 5], |i| if i % 2 == 0 { 1.0 } else { -1.0 });
        let mut bneg = a.clone();
        bneg.scale(-1.0);
        let (y, _) = layer.forward(&a, &bneg).unwrap();
        let centre = y.at4(0, 0, 2, 2);
        assert!(centre < -0.9, "anti-correlation = {centre}");
    }

    #[test]
    fn flat_patches_do_not_blow_up() {
        let layer = NormXCorr::new(3, 1);
        let a = Tensor::full(&[1, 1, 5, 5], 3.0);
        let b = tensor_from(&[1, 1, 5, 5], |i| i as f32);
        let (y, cache) = layer.forward(&a, &b).unwrap();
        assert!(y.data().iter().all(|v| v.is_finite()));
        let g = Tensor::full(y.shape(), 1.0);
        let (ga, gb) = layer.backward(&cache, &g).unwrap();
        assert!(ga.data().iter().all(|v| v.is_finite()));
        assert!(gb.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let layer = NormXCorr::new(3, 1);
        let a = Tensor::zeros(&[1, 1, 5, 5]);
        let b = Tensor::zeros(&[1, 1, 5, 6]);
        assert!(layer.forward(&a, &b).is_err());
    }

    #[test]
    fn symmetry_of_zero_displacement_cell() {
        // NCC(a, b) at displacement 0 equals NCC(b, a) at displacement 0.
        let layer = NormXCorr::new(3, 1);
        let a = tensor_from(&[1, 1, 6, 6], |i| (i as f32 * 0.31).sin());
        let b = tensor_from(&[1, 1, 6, 6], |i| (i as f32 * 0.57).cos());
        let (yab, _) = layer.forward(&a, &b).unwrap();
        let (yba, _) = layer.forward(&b, &a).unwrap();
        for yy in 0..6 {
            for xx in 0..6 {
                let u = yab.at4(0, 4, yy, xx);
                let v = yba.at4(0, 4, yy, xx);
                assert!((u - v).abs() < 1e-5, "({xx},{yy}): {u} vs {v}");
            }
        }
    }

    /// Bit-for-bit equality, except that two NaNs always match: IEEE 754
    /// leaves NaN sign/payload propagation unspecified and LLVM may
    /// commute `fmul`/`fadd` operands, so separately compiled instances
    /// of the same fold can legally pick different NaN payloads. NaN
    /// *positions* must still coincide exactly.
    fn assert_bits_eq(x: &Tensor, y: &Tensor) {
        assert_eq!(x.shape(), y.shape());
        for (i, (u, v)) in x.data().iter().zip(y.data()).enumerate() {
            if u.is_nan() && v.is_nan() {
                continue;
            }
            assert_eq!(u.to_bits(), v.to_bits(), "elem {i}: {u} vs {v}");
        }
    }

    #[test]
    fn panel_forward_matches_naive_bitwise() {
        for (patch, radius, shape) in
            [(3usize, 1usize, [2usize, 3, 6, 5]), (5, 2, [1, 2, 5, 7]), (3, 0, [2, 1, 4, 3])]
        {
            let layer = NormXCorr::new(patch, radius);
            let a = tensor_from(&shape, |i| (i as f32 * 0.37).sin() * 2.0 - 0.4);
            let b = tensor_from(&shape, |i| (i as f32 * 0.73).cos() * 1.5 + 0.1);
            let (fast, _) = layer.forward(&a, &b).unwrap();
            let (slow, _) = layer.forward_naive(&a, &b).unwrap();
            assert_bits_eq(&fast, &slow);
        }
    }

    #[test]
    fn panel_backward_matches_naive_bitwise() {
        for (patch, radius, shape) in [(3usize, 1usize, [2usize, 3, 6, 5]), (5, 2, [1, 2, 5, 7])] {
            let layer = NormXCorr::new(patch, radius);
            let a = tensor_from(&shape, |i| (i as f32 * 0.41).sin() + 0.2);
            let b = tensor_from(&shape, |i| (i as f32 * 0.77).cos() - 0.1);
            let (y, cache) = layer.forward(&a, &b).unwrap();
            // Exercise the g == 0 sparsity skip alongside dense entries.
            let g =
                tensor_from(y.shape(), |i| if i % 7 == 0 { 0.0 } else { (i as f32 * 0.13).sin() });
            let (fa, fb) = layer.backward(&cache, &g).unwrap();
            let (sa, sb) = layer.backward_naive(&cache, &g).unwrap();
            assert_bits_eq(&fa, &sa);
            assert_bits_eq(&fb, &sb);
        }
    }

    #[test]
    fn panel_matches_naive_on_nan_quarantine_inputs() {
        let layer = NormXCorr::new(3, 1);
        let mut a = tensor_from(&[1, 2, 5, 4], |i| (i as f32 * 0.29).sin());
        let mut b = tensor_from(&[1, 2, 5, 4], |i| (i as f32 * 0.61).cos());
        a.data_mut()[3] = f32::NAN;
        a.data_mut()[17] = f32::INFINITY;
        b.data_mut()[9] = f32::NAN;
        let (fast, cache) = layer.forward(&a, &b).unwrap();
        let (slow, _) = layer.forward_naive(&a, &b).unwrap();
        assert_bits_eq(&fast, &slow);
        let g = tensor_from(fast.shape(), |i| if i % 5 == 0 { 0.0 } else { 1.0 });
        let (fa, fb) = layer.backward(&cache, &g).unwrap();
        let (sa, sb) = layer.backward_naive(&cache, &g).unwrap();
        assert_bits_eq(&fa, &sa);
        assert_bits_eq(&fb, &sb);
    }

    #[test]
    fn gradient_check_both_inputs() {
        let layer = NormXCorr::new(3, 1);
        let a = tensor_from(&[1, 1, 4, 4], |i| (i as f32 * 0.41).sin() + 0.2);
        let b = tensor_from(&[1, 1, 4, 4], |i| (i as f32 * 0.77).cos() - 0.1);
        let (y, cache) = layer.forward(&a, &b).unwrap();
        let grad_out = Tensor::full(y.shape(), 1.0);
        let (ga, gb) = layer.backward(&cache, &grad_out).unwrap();

        let eps = 1e-2f32;
        let total = |a: &Tensor, b: &Tensor| -> f32 {
            let (y, _) = layer.forward(a, b).unwrap();
            y.data().iter().sum()
        };
        for idx in [0usize, 5, 10, 15] {
            let mut a2 = a.clone();
            a2.data_mut()[idx] += eps;
            let lp = total(&a2, &b);
            a2.data_mut()[idx] -= 2.0 * eps;
            let lm = total(&a2, &b);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - ga.data()[idx]).abs() < 2e-2 * (1.0 + num.abs()),
                "dA[{idx}]: {num} vs {}",
                ga.data()[idx]
            );

            let mut b2 = b.clone();
            b2.data_mut()[idx] += eps;
            let lp = total(&a, &b2);
            b2.data_mut()[idx] -= 2.0 * eps;
            let lm = total(&a, &b2);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gb.data()[idx]).abs() < 2e-2 * (1.0 + num.abs()),
                "dB[{idx}]: {num} vs {}",
                gb.data()[idx]
            );
        }
    }
}
