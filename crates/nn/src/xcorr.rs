// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! The Normalized-X-Corr cross-input matching layer.
//!
//! Subramaniam, Chatterjee & Mittal (NIPS 2016) replace the Siamese
//! "exact" similarity (cosine of two embeddings) with an *inexact*
//! matching layer: every local patch of feature stack A is correlated,
//! under normalised cross-correlation, against patches of feature stack B
//! over a neighbourhood of displacements. "regions of pixels across the
//! two image representations are compared so that a larger region is
//! carried over from one image to another during the matching, hence
//! explaining its inexact nature" (paper §3.4). The output is symmetric in
//! the two inputs up to the displacement sign, and is fed to further
//! conv + maxpool stages.
//!
//! For inputs `[N, C, H, W]` the layer emits `[N, C·K, H, W]` where
//! `K = (2·radius+1)²` displacement cells; channel `c·K + k` at `(x, y)`
//! holds `NCC(patch_A(c, x, y), patch_B(c, x+dx_k, y+dy_k))` with
//!
//! `NCC(a, b) = ⟨â, b̂⟩ / (‖â‖·‖b̂‖ + ε)`,  `â = a − mean(a)`.
//!
//! Patches are square (`patch` side) with zero padding outside the map.

use crate::tensor::{Tensor, TensorError};

/// Stabiliser added to the product of patch norms.
const EPS: f32 = 1e-4;
/// Norm below which a patch is treated as flat (zero direction vector).
const FLAT: f32 = 1e-6;

/// Normalized cross-correlation layer configuration.
#[derive(Debug, Clone, Copy)]
pub struct NormXCorr {
    /// Patch side (odd).
    pub patch: usize,
    /// Displacement radius; K = (2r+1)² offsets.
    pub radius: usize,
}

/// Cache for the backward pass: the two inputs.
pub struct XCorrCache {
    a: Tensor,
    b: Tensor,
}

impl NormXCorr {
    /// New layer; `patch` must be odd and ≥ 1.
    pub fn new(patch: usize, radius: usize) -> Self {
        assert!(patch % 2 == 1 && patch >= 1, "patch side must be odd");
        NormXCorr { patch, radius }
    }

    /// Number of displacement cells.
    pub fn offsets(&self) -> usize {
        let k = 2 * self.radius + 1;
        k * k
    }

    /// Output channel count for `c` input channels.
    pub fn out_channels(&self, c: usize) -> usize {
        c * self.offsets()
    }

    fn check(&self, a: &Tensor, b: &Tensor) -> Result<[usize; 4], TensorError> {
        if a.shape() != b.shape() || a.shape().len() != 4 {
            return Err(TensorError::ShapeMismatch {
                expected: a.shape().to_vec(),
                got: b.shape().to_vec(),
            });
        }
        let s = a.shape();
        Ok([s[0], s[1], s[2], s[3]])
    }

    /// Collect the zero-padded patch of `t` centred at `(cx, cy)` in plane
    /// `(n, c)`, subtract its mean, and return `(centred, norm)`.
    fn centred_patch(
        &self,
        t: &Tensor,
        n: usize,
        c: usize,
        cx: i64,
        cy: i64,
        buf: &mut [f32],
    ) -> f32 {
        let s = t.shape();
        let (h, w) = (s[2] as i64, s[3] as i64);
        let r = (self.patch / 2) as i64;
        let mut sum = 0.0f32;
        let mut i = 0usize;
        for dy in -r..=r {
            for dx in -r..=r {
                let x = cx + dx;
                let y = cy + dy;
                let v = if x >= 0 && x < w && y >= 0 && y < h {
                    t.at4(n, c, y as usize, x as usize)
                } else {
                    0.0
                };
                buf[i] = v;
                sum += v;
                i += 1;
            }
        }
        let mean = sum / buf.len() as f32;
        let mut norm_sq = 0.0f32;
        for v in buf.iter_mut() {
            *v -= mean;
            norm_sq += *v * *v;
        }
        norm_sq.sqrt()
    }

    /// Forward: `(A, B)` of shape `[N, C, H, W]` → `[N, C·K, H, W]`.
    pub fn forward(&self, a: &Tensor, b: &Tensor) -> Result<(Tensor, XCorrCache), TensorError> {
        let [n, c, h, w] = self.check(a, b)?;
        let k_side = 2 * self.radius as i64 + 1;
        let koff = self.offsets();
        let psz = self.patch * self.patch;
        let mut out = Tensor::zeros(&[n, c * koff, h, w]);
        let mut pa = vec![0.0f32; psz];
        let mut pb = vec![0.0f32; psz];
        for ni in 0..n {
            for ci in 0..c {
                for y in 0..h as i64 {
                    for x in 0..w as i64 {
                        let na = self.centred_patch(a, ni, ci, x, y, &mut pa);
                        for ky in 0..k_side {
                            for kx in 0..k_side {
                                let dy = ky - self.radius as i64;
                                let dx = kx - self.radius as i64;
                                let nb = self.centred_patch(b, ni, ci, x + dx, y + dy, &mut pb);
                                let dot: f32 = pa.iter().zip(&pb).map(|(&u, &v)| u * v).sum();
                                let ncc = dot / (na * nb + EPS);
                                let oc = ci * koff + (ky * k_side + kx) as usize;
                                *out.at4_mut(ni, oc, y as usize, x as usize) = ncc;
                            }
                        }
                    }
                }
            }
        }
        Ok((out, XCorrCache { a: a.clone(), b: b.clone() }))
    }

    /// Scatter `grad * d(ncc)/d(patch)` back into `grad_t` for the patch of
    /// `t` centred at `(cx, cy)`.
    #[allow(clippy::too_many_arguments)]
    fn scatter_patch_grad(
        &self,
        grad_t: &mut Tensor,
        n: usize,
        c: usize,
        cx: i64,
        cy: i64,
        dvals: &[f32],
    ) {
        let s = grad_t.shape();
        let (h, w) = (s[2] as i64, s[3] as i64);
        let r = (self.patch / 2) as i64;
        // Chain through the mean subtraction: the gradient w.r.t. the raw
        // patch is (I − 11ᵀ/n) · dvals, and positions outside the image are
        // dropped (they were constant zeros, not samples of t).
        let mean_d: f32 = dvals.iter().sum::<f32>() / dvals.len() as f32;
        let mut i = 0usize;
        for dy in -r..=r {
            for dx in -r..=r {
                let x = cx + dx;
                let y = cy + dy;
                if x >= 0 && x < w && y >= 0 && y < h {
                    *grad_t.at4_mut(n, c, y as usize, x as usize) += dvals[i] - mean_d;
                }
                i += 1;
            }
        }
    }

    /// Backward: returns `(grad_a, grad_b)`.
    pub fn backward(
        &self,
        cache: &XCorrCache,
        grad_out: &Tensor,
    ) -> Result<(Tensor, Tensor), TensorError> {
        let [n, c, h, w] = self.check(&cache.a, &cache.b)?;
        let k_side = 2 * self.radius as i64 + 1;
        let koff = self.offsets();
        let psz = self.patch * self.patch;
        let mut grad_a = Tensor::zeros(cache.a.shape());
        let mut grad_b = Tensor::zeros(cache.b.shape());
        let mut pa = vec![0.0f32; psz];
        let mut pb = vec![0.0f32; psz];
        let mut da = vec![0.0f32; psz];
        let mut db = vec![0.0f32; psz];

        for ni in 0..n {
            for ci in 0..c {
                for y in 0..h as i64 {
                    for x in 0..w as i64 {
                        let na = self.centred_patch(&cache.a, ni, ci, x, y, &mut pa);
                        for ky in 0..k_side {
                            for kx in 0..k_side {
                                let dy = ky - self.radius as i64;
                                let dx = kx - self.radius as i64;
                                let oc = ci * koff + (ky * k_side + kx) as usize;
                                let g = grad_out.at4(ni, oc, y as usize, x as usize);
                                // taor-lint: allow(float::eq) — sparsity skip: only a bit-exact zero may be elided
                                if g == 0.0 {
                                    continue;
                                }
                                let nb =
                                    self.centred_patch(&cache.b, ni, ci, x + dx, y + dy, &mut pb);
                                let dot: f32 = pa.iter().zip(&pb).map(|(&u, &v)| u * v).sum();
                                let denom = na * nb + EPS;
                                let inv = 1.0 / denom;
                                // d(ncc)/dâ = b̂/denom − dot·nb·(â/‖â‖)/denom²
                                // d(ncc)/db̂ symmetric.
                                let coef_a =
                                    if na > FLAT { dot * nb / (na * denom * denom) } else { 0.0 };
                                let coef_b =
                                    if nb > FLAT { dot * na / (nb * denom * denom) } else { 0.0 };
                                for i in 0..psz {
                                    da[i] = g * (pb[i] * inv - coef_a * pa[i]);
                                    db[i] = g * (pa[i] * inv - coef_b * pb[i]);
                                }
                                self.scatter_patch_grad(&mut grad_a, ni, ci, x, y, &da);
                                self.scatter_patch_grad(&mut grad_b, ni, ci, x + dx, y + dy, &db);
                            }
                        }
                    }
                }
            }
        }
        Ok((grad_a, grad_b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor_from(shape: &[usize], f: impl Fn(usize) -> f32) -> Tensor {
        let len: usize = shape.iter().product();
        Tensor::from_vec(shape, (0..len).map(f).collect()).unwrap()
    }

    #[test]
    fn output_shape() {
        let layer = NormXCorr::new(3, 1);
        let a = Tensor::zeros(&[2, 4, 5, 6]);
        let b = Tensor::zeros(&[2, 4, 5, 6]);
        let (y, _) = layer.forward(&a, &b).unwrap();
        assert_eq!(y.shape(), &[2, 36, 5, 6]);
        assert_eq!(layer.offsets(), 9);
        assert_eq!(layer.out_channels(4), 36);
    }

    #[test]
    fn identical_inputs_give_unit_centre_correlation() {
        let layer = NormXCorr::new(3, 1);
        let a = tensor_from(&[1, 1, 7, 7], |i| ((i * 37) % 11) as f32 - 5.0);
        let (y, _) = layer.forward(&a, &a).unwrap();
        // Zero-displacement cell is channel index radius*k_side + radius = 4.
        for yy in 1..6usize {
            for xx in 1..6usize {
                let v = y.at4(0, 4, yy, xx);
                assert!(v > 0.9, "self-NCC at ({xx},{yy}) = {v}");
            }
        }
    }

    #[test]
    fn values_bounded_by_one() {
        let layer = NormXCorr::new(3, 1);
        let a = tensor_from(&[1, 2, 6, 6], |i| (i as f32 * 0.7).sin());
        let b = tensor_from(&[1, 2, 6, 6], |i| (i as f32 * 1.3).cos());
        let (y, _) = layer.forward(&a, &b).unwrap();
        for &v in y.data() {
            assert!(v.abs() <= 1.0 + 1e-4, "|ncc| = {v}");
        }
    }

    #[test]
    fn anticorrelated_patches_score_negative() {
        let layer = NormXCorr::new(3, 0);
        let a = tensor_from(&[1, 1, 5, 5], |i| if i % 2 == 0 { 1.0 } else { -1.0 });
        let mut bneg = a.clone();
        bneg.scale(-1.0);
        let (y, _) = layer.forward(&a, &bneg).unwrap();
        let centre = y.at4(0, 0, 2, 2);
        assert!(centre < -0.9, "anti-correlation = {centre}");
    }

    #[test]
    fn flat_patches_do_not_blow_up() {
        let layer = NormXCorr::new(3, 1);
        let a = Tensor::full(&[1, 1, 5, 5], 3.0);
        let b = tensor_from(&[1, 1, 5, 5], |i| i as f32);
        let (y, cache) = layer.forward(&a, &b).unwrap();
        assert!(y.data().iter().all(|v| v.is_finite()));
        let g = Tensor::full(y.shape(), 1.0);
        let (ga, gb) = layer.backward(&cache, &g).unwrap();
        assert!(ga.data().iter().all(|v| v.is_finite()));
        assert!(gb.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let layer = NormXCorr::new(3, 1);
        let a = Tensor::zeros(&[1, 1, 5, 5]);
        let b = Tensor::zeros(&[1, 1, 5, 6]);
        assert!(layer.forward(&a, &b).is_err());
    }

    #[test]
    fn symmetry_of_zero_displacement_cell() {
        // NCC(a, b) at displacement 0 equals NCC(b, a) at displacement 0.
        let layer = NormXCorr::new(3, 1);
        let a = tensor_from(&[1, 1, 6, 6], |i| (i as f32 * 0.31).sin());
        let b = tensor_from(&[1, 1, 6, 6], |i| (i as f32 * 0.57).cos());
        let (yab, _) = layer.forward(&a, &b).unwrap();
        let (yba, _) = layer.forward(&b, &a).unwrap();
        for yy in 0..6 {
            for xx in 0..6 {
                let u = yab.at4(0, 4, yy, xx);
                let v = yba.at4(0, 4, yy, xx);
                assert!((u - v).abs() < 1e-5, "({xx},{yy}): {u} vs {v}");
            }
        }
    }

    #[test]
    fn gradient_check_both_inputs() {
        let layer = NormXCorr::new(3, 1);
        let a = tensor_from(&[1, 1, 4, 4], |i| (i as f32 * 0.41).sin() + 0.2);
        let b = tensor_from(&[1, 1, 4, 4], |i| (i as f32 * 0.77).cos() - 0.1);
        let (y, cache) = layer.forward(&a, &b).unwrap();
        let grad_out = Tensor::full(y.shape(), 1.0);
        let (ga, gb) = layer.backward(&cache, &grad_out).unwrap();

        let eps = 1e-2f32;
        let total = |a: &Tensor, b: &Tensor| -> f32 {
            let (y, _) = layer.forward(a, b).unwrap();
            y.data().iter().sum()
        };
        for idx in [0usize, 5, 10, 15] {
            let mut a2 = a.clone();
            a2.data_mut()[idx] += eps;
            let lp = total(&a2, &b);
            a2.data_mut()[idx] -= 2.0 * eps;
            let lm = total(&a2, &b);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - ga.data()[idx]).abs() < 2e-2 * (1.0 + num.abs()),
                "dA[{idx}]: {num} vs {}",
                ga.data()[idx]
            );

            let mut b2 = b.clone();
            b2.data_mut()[idx] += eps;
            let lp = total(&a, &b2);
            b2.data_mut()[idx] -= 2.0 * eps;
            let lm = total(&a, &b2);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gb.data()[idx]).abs() < 2e-2 * (1.0 + num.abs()),
                "dB[{idx}]: {num} vs {}",
                gb.data()[idx]
            );
        }
    }
}
