//! Thread-local scratch-buffer arena.
//!
//! The conv layers need large temporaries every pass — im2col matrices,
//! gathered gradient panels, col2im staging — and allocating them per
//! sample dominated small-batch training. [`Scratch::take`] hands out a
//! recycled `Vec<f32>` from a per-thread free list; the returned
//! [`ScratchBuf`] guard gives it back on drop, so steady-state passes
//! allocate nothing.
//!
//! Ownership rules:
//! * a `ScratchBuf` is owned like a `Vec` — it may be stored in caches
//!   (e.g. `ConvCache`) and crosses function boundaries freely;
//! * buffers return to the pool of the thread that drops them, not the
//!   one that took them — both are correct, the pool is only a reuse
//!   heuristic;
//! * the pool is bounded ([`MAX_POOLED`] buffers) so pathological bursts
//!   cannot pin unbounded memory.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Most buffers kept per thread; excess ones are simply freed.
const MAX_POOLED: usize = 32;

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Handle to the per-thread arena. All methods are associated functions —
/// the arena itself lives in thread-local storage.
pub struct Scratch;

impl Scratch {
    /// A buffer of exactly `len` elements with **unspecified contents**
    /// (callers must fully overwrite it).
    pub fn take(len: usize) -> ScratchBuf {
        let mut buf = Self::pop(len);
        buf.resize(len, 0.0);
        ScratchBuf { buf }
    }

    /// A buffer of exactly `len` zeros.
    pub fn take_zeroed(len: usize) -> ScratchBuf {
        let mut buf = Self::pop(len);
        buf.clear();
        buf.resize(len, 0.0);
        ScratchBuf { buf }
    }

    /// Number of buffers currently pooled on this thread (for tests).
    pub fn pooled() -> usize {
        POOL.with(|p| p.borrow().len())
    }

    fn pop(len: usize) -> Vec<f32> {
        POOL.with(|p| {
            let mut pool = p.borrow_mut();
            // Prefer a buffer that already fits to avoid regrowing.
            if let Some(i) = pool.iter().rposition(|b| b.capacity() >= len) {
                return pool.swap_remove(i);
            }
            pool.pop().unwrap_or_default()
        })
    }
}

/// An arena-owned `Vec<f32>`; derefs to a slice and returns its storage
/// to the dropping thread's pool.
#[derive(Debug)]
pub struct ScratchBuf {
    buf: Vec<f32>,
}

impl Deref for ScratchBuf {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl DerefMut for ScratchBuf {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for ScratchBuf {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        // try_with: TLS may already be torn down during thread exit.
        // taor-lint: allow(err::swallowed-result) — AccessError here
        // means exactly that; the buffer is simply freed instead of
        // pooled.
        let _ = POOL.try_with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < MAX_POOLED {
                pool.push(buf);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_recycled() {
        let ptr = {
            let mut b = Scratch::take_zeroed(1024);
            b[0] = 1.0;
            b.as_ptr() as usize
        };
        // Same storage comes back for a fitting request.
        let b2 = Scratch::take(512);
        assert_eq!(b2.as_ptr() as usize, ptr);
        assert_eq!(b2.len(), 512);
    }

    #[test]
    fn take_zeroed_clears_previous_contents() {
        {
            let mut b = Scratch::take(64);
            b.iter_mut().for_each(|v| *v = 7.0);
        }
        let b = Scratch::take_zeroed(64);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pool_is_bounded() {
        let many: Vec<_> = (0..2 * MAX_POOLED).map(|_| Scratch::take(8)).collect();
        drop(many);
        assert!(Scratch::pooled() <= MAX_POOLED);
    }
}
