// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Fully-connected layer.

use crate::tensor::{Tensor, TensorError};

/// A dense layer: `y = x · W + b`, with `x` of shape `[N, in]`, `W` of
/// shape `[in, out]`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Dense {
    pub weight: Tensor,
    pub bias: Tensor,
    pub in_features: usize,
    pub out_features: usize,
}

/// Cache: the input activations.
pub struct DenseCache {
    x: Tensor,
}

/// Gradient accumulator matching a [`Dense`]'s parameters.
#[derive(Debug, Clone)]
pub struct DenseGrads {
    pub weight: Tensor,
    pub bias: Tensor,
}

impl Dense {
    /// New dense layer with Glorot-uniform weights (Keras default).
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        Dense {
            weight: crate::init::glorot_uniform(
                &[in_features, out_features],
                in_features,
                out_features,
                seed,
            ),
            bias: Tensor::zeros(&[out_features]),
            in_features,
            out_features,
        }
    }

    /// Fresh zeroed gradient accumulator.
    pub fn zero_grads(&self) -> DenseGrads {
        DenseGrads {
            weight: Tensor::zeros(self.weight.shape()),
            bias: Tensor::zeros(self.bias.shape()),
        }
    }

    /// Forward: `[N, in] → [N, out]`.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, DenseCache), TensorError> {
        if x.shape().len() != 2 || x.shape()[1] != self.in_features {
            return Err(TensorError::ShapeMismatch {
                expected: vec![0, self.in_features],
                got: x.shape().to_vec(),
            });
        }
        let mut y = x.matmul(&self.weight)?;
        let n = y.shape()[0];
        let out = self.out_features;
        for i in 0..n {
            for j in 0..out {
                y.data_mut()[i * out + j] += self.bias.data()[j];
            }
        }
        Ok((y, DenseCache { x: x.clone() }))
    }

    /// Backward: accumulates `dW = xᵀ·g`, `db = Σg`, returns `dx = g·Wᵀ`.
    pub fn backward(
        &self,
        cache: &DenseCache,
        grad_out: &Tensor,
        grads: &mut DenseGrads,
    ) -> Result<Tensor, TensorError> {
        let n = grad_out.shape()[0];
        // dW += xᵀ·g via the transposed-operand kernel: x is read in place
        // and the product accumulates straight into the gradient store.
        crate::gemm::gemm_tn(
            self.in_features,
            self.out_features,
            n,
            cache.x.data(),
            grad_out.data(),
            grads.weight.data_mut(),
            true,
        );
        for i in 0..n {
            for j in 0..self.out_features {
                grads.bias.data_mut()[j] += grad_out.data()[i * self.out_features + j];
            }
        }
        // dx = g·Wᵀ, again without materialising the transpose.
        let mut dx = Tensor::zeros(&[n, self.in_features]);
        crate::gemm::gemm_nt(
            n,
            self.in_features,
            self.out_features,
            grad_out.data(),
            self.weight.data(),
            dx.data_mut(),
            false,
        );
        Ok(dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_affine() {
        let mut d = Dense::new(2, 2, 1);
        d.weight = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        d.bias = Tensor::from_vec(&[2], vec![0.5, -0.5]).unwrap();
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]).unwrap();
        let (y, _) = d.forward(&x).unwrap();
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn shape_validation() {
        let d = Dense::new(3, 2, 1);
        assert!(d.forward(&Tensor::zeros(&[1, 4])).is_err());
        assert!(d.forward(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn gradient_check() {
        let d = Dense::new(3, 2, 5);
        let x = Tensor::from_vec(&[2, 3], vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6]).unwrap();
        let (y, cache) = d.forward(&x).unwrap();
        let grad_out = Tensor::full(y.shape(), 1.0);
        let mut grads = d.zero_grads();
        let gin = d.backward(&cache, &grad_out, &mut grads).unwrap();

        let eps = 1e-3f32;
        // Check dX.
        let mut x2 = x.clone();
        for idx in 0..x.len() {
            let orig = x2.data()[idx];
            x2.data_mut()[idx] = orig + eps;
            let (y1, _) = d.forward(&x2).unwrap();
            x2.data_mut()[idx] = orig - eps;
            let (y2, _) = d.forward(&x2).unwrap();
            x2.data_mut()[idx] = orig;
            let num: f32 =
                y1.data().iter().zip(y2.data()).map(|(a, b)| (a - b) / (2.0 * eps)).sum();
            assert!((num - gin.data()[idx]).abs() < 1e-2, "dX[{idx}]");
        }
        // db sums over batch.
        assert_eq!(grads.bias.data(), &[2.0, 2.0]);
    }

    #[test]
    fn weight_gradient_accumulates_across_calls() {
        let d = Dense::new(2, 1, 9);
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 2.0]).unwrap();
        let (y, cache) = d.forward(&x).unwrap();
        let g = Tensor::full(y.shape(), 1.0);
        let mut grads = d.zero_grads();
        d.backward(&cache, &g, &mut grads).unwrap();
        d.backward(&cache, &g, &mut grads).unwrap();
        // Two identical backward passes double the gradient (shared-weight
        // accumulation property the Siamese towers rely on).
        assert_eq!(grads.weight.data(), &[2.0, 4.0]);
    }
}
