// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Fully-connected layer.

use crate::tensor::{Tensor, TensorError};

/// A dense layer: `y = x · W + b`, with `x` of shape `[N, in]`, `W` of
/// shape `[in, out]`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Dense {
    pub weight: Tensor,
    pub bias: Tensor,
    pub in_features: usize,
    pub out_features: usize,
}

/// Cache: the input activations.
pub struct DenseCache {
    x: Tensor,
}

/// Gradient accumulator matching a [`Dense`]'s parameters.
#[derive(Debug, Clone)]
pub struct DenseGrads {
    pub weight: Tensor,
    pub bias: Tensor,
}

impl Dense {
    /// New dense layer with Glorot-uniform weights (Keras default).
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        Dense {
            weight: crate::init::glorot_uniform(
                &[in_features, out_features],
                in_features,
                out_features,
                seed,
            ),
            bias: Tensor::zeros(&[out_features]),
            in_features,
            out_features,
        }
    }

    /// Fresh zeroed gradient accumulator.
    pub fn zero_grads(&self) -> DenseGrads {
        DenseGrads {
            weight: Tensor::zeros(self.weight.shape()),
            bias: Tensor::zeros(self.bias.shape()),
        }
    }

    /// Forward: `[N, in] → [N, out]`.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, DenseCache), TensorError> {
        if x.shape().len() != 2 || x.shape()[1] != self.in_features {
            return Err(TensorError::ShapeMismatch {
                expected: vec![0, self.in_features],
                got: x.shape().to_vec(),
            });
        }
        let mut y = x.matmul(&self.weight)?;
        let n = y.shape()[0];
        let out = self.out_features;
        for i in 0..n {
            for j in 0..out {
                y.data_mut()[i * out + j] += self.bias.data()[j];
            }
        }
        Ok((y, DenseCache { x: x.clone() }))
    }

    /// Backward: accumulates `dW = xᵀ·g`, `db = Σg`, returns `dx = g·Wᵀ`.
    pub fn backward(
        &self,
        cache: &DenseCache,
        grad_out: &Tensor,
        grads: &mut DenseGrads,
    ) -> Result<Tensor, TensorError> {
        let n = grad_out.shape()[0];
        // dW += xᵀ·g via the transposed-operand kernel: x is read in place
        // and the product accumulates straight into the gradient store.
        crate::gemm::gemm_tn(
            self.in_features,
            self.out_features,
            n,
            cache.x.data(),
            grad_out.data(),
            grads.weight.data_mut(),
            true,
        );
        for i in 0..n {
            for j in 0..self.out_features {
                grads.bias.data_mut()[j] += grad_out.data()[i * self.out_features + j];
            }
        }
        // dx = g·Wᵀ, again without materialising the transpose.
        let mut dx = Tensor::zeros(&[n, self.in_features]);
        crate::gemm::gemm_nt(
            n,
            self.in_features,
            self.out_features,
            grad_out.data(),
            self.weight.data(),
            dx.data_mut(),
            false,
        );
        Ok(dx)
    }

    /// Batched backward whose **parameter accumulation is bit-identical
    /// to the per-sample oracle**: each row gets its own `k = 1` GEMM
    /// into a zeroed temp — the exact call [`Self::backward`] makes at
    /// batch size 1 — plus a per-row bias temp, both added into `grads`
    /// in row order. One batched `k = N` GEMM would regroup the f32 fold
    /// across rows and shift the low bits. The input gradient contracts
    /// over `out`, per row, so it stays one batched GEMM.
    pub fn backward_rows(
        &self,
        cache: &DenseCache,
        grad_out: &Tensor,
        grads: &mut DenseGrads,
    ) -> Result<Tensor, TensorError> {
        let n = grad_out.shape()[0];
        let (fi, fo) = (self.in_features, self.out_features);
        let mut wtmp = crate::scratch::Scratch::take_zeroed(fi * fo);
        for i in 0..n {
            wtmp.fill(0.0);
            crate::gemm::gemm_tn(
                fi,
                fo,
                1,
                &cache.x.data()[i * fi..(i + 1) * fi],
                &grad_out.data()[i * fo..(i + 1) * fo],
                &mut wtmp,
                true,
            );
            for (d, &s) in grads.weight.data_mut().iter_mut().zip(wtmp.iter()) {
                *d += s;
            }
            for j in 0..fo {
                // The oracle's per-sample bias store starts at zero, so
                // the total sees `total + (0.0 + g)` — replicate both
                // adds (they differ from `total + g` when g is -0.0).
                let per = 0.0f32 + grad_out.data()[i * fo + j];
                grads.bias.data_mut()[j] += per;
            }
        }

        let mut dx = Tensor::zeros(&[n, fi]);
        crate::gemm::gemm_nt(n, fi, fo, grad_out.data(), self.weight.data(), dx.data_mut(), false);
        Ok(dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_affine() {
        let mut d = Dense::new(2, 2, 1);
        d.weight = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        d.bias = Tensor::from_vec(&[2], vec![0.5, -0.5]).unwrap();
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]).unwrap();
        let (y, _) = d.forward(&x).unwrap();
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn shape_validation() {
        let d = Dense::new(3, 2, 1);
        assert!(d.forward(&Tensor::zeros(&[1, 4])).is_err());
        assert!(d.forward(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn gradient_check() {
        let d = Dense::new(3, 2, 5);
        let x = Tensor::from_vec(&[2, 3], vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6]).unwrap();
        let (y, cache) = d.forward(&x).unwrap();
        let grad_out = Tensor::full(y.shape(), 1.0);
        let mut grads = d.zero_grads();
        let gin = d.backward(&cache, &grad_out, &mut grads).unwrap();

        let eps = 1e-3f32;
        // Check dX.
        let mut x2 = x.clone();
        for idx in 0..x.len() {
            let orig = x2.data()[idx];
            x2.data_mut()[idx] = orig + eps;
            let (y1, _) = d.forward(&x2).unwrap();
            x2.data_mut()[idx] = orig - eps;
            let (y2, _) = d.forward(&x2).unwrap();
            x2.data_mut()[idx] = orig;
            let num: f32 =
                y1.data().iter().zip(y2.data()).map(|(a, b)| (a - b) / (2.0 * eps)).sum();
            assert!((num - gin.data()[idx]).abs() < 1e-2, "dX[{idx}]");
        }
        // db sums over batch.
        assert_eq!(grads.bias.data(), &[2.0, 2.0]);
    }

    #[test]
    fn backward_rows_matches_per_sample_oracle_bitwise() {
        let d = Dense::new(5, 3, 17);
        let x =
            Tensor::from_vec(&[4, 5], (0..20).map(|v| (v as f32 * 0.19).sin()).collect()).unwrap();
        let (y, cache) = d.forward(&x).unwrap();
        let g = Tensor::from_vec(y.shape(), (0..12).map(|v| (v as f32 * 0.37).cos()).collect())
            .unwrap();

        let mut batched = d.zero_grads();
        let dx = d.backward_rows(&cache, &g, &mut batched).unwrap();

        // Oracle: each row alone (B = 1), per-sample stores summed in order.
        let mut total = d.zero_grads();
        let mut dx_rows = Vec::new();
        for i in 0..4 {
            let xi = Tensor::from_vec(&[1, 5], x.data()[i * 5..(i + 1) * 5].to_vec()).unwrap();
            let (_, ci) = d.forward(&xi).unwrap();
            let gi = Tensor::from_vec(&[1, 3], g.data()[i * 3..(i + 1) * 3].to_vec()).unwrap();
            let mut per = d.zero_grads();
            let dxi = d.backward(&ci, &gi, &mut per).unwrap();
            dx_rows.extend_from_slice(dxi.data());
            for (t, &v) in total.weight.data_mut().iter_mut().zip(per.weight.data()) {
                *t += v;
            }
            for (t, &v) in total.bias.data_mut().iter_mut().zip(per.bias.data()) {
                *t += v;
            }
        }
        for (i, (a, b)) in batched.weight.data().iter().zip(total.weight.data()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "dW[{i}]");
        }
        for (i, (a, b)) in batched.bias.data().iter().zip(total.bias.data()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "db[{i}]");
        }
        for (i, (a, b)) in dx.data().iter().zip(&dx_rows).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "dx[{i}]");
        }
    }

    #[test]
    fn weight_gradient_accumulates_across_calls() {
        let d = Dense::new(2, 1, 9);
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 2.0]).unwrap();
        let (y, cache) = d.forward(&x).unwrap();
        let g = Tensor::full(y.shape(), 1.0);
        let mut grads = d.zero_grads();
        d.backward(&cache, &g, &mut grads).unwrap();
        d.backward(&cache, &g, &mut grads).unwrap();
        // Two identical backward passes double the gradient (shared-weight
        // accumulation property the Siamese towers rely on).
        assert_eq!(grads.weight.data(), &[2.0, 4.0]);
    }
}
