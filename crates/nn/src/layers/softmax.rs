// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Softmax and the fused softmax + categorical cross-entropy loss.
//!
//! The paper "compiled [the model] using categorical crossentropy as loss
//! function" over two classes (similar / dissimilar).

use crate::tensor::{Tensor, TensorError};

/// Row-wise softmax probabilities of a `[N, K]` logit matrix.
pub fn softmax_probs(logits: &Tensor) -> Result<Tensor, TensorError> {
    let s = logits.shape();
    if s.len() != 2 {
        return Err(TensorError::ShapeMismatch { expected: vec![0, 0], got: s.to_vec() });
    }
    let (n, k) = (s[0], s[1]);
    let mut out = logits.clone();
    for i in 0..n {
        let row = &mut out.data_mut()[i * k..(i + 1) * k];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    Ok(out)
}

/// Fused softmax + categorical cross-entropy.
///
/// Returns `(mean loss, dL/dlogits)`; the gradient is the classic
/// `(p − onehot) / N`.
pub fn softmax_cross_entropy(
    logits: &Tensor,
    targets: &[usize],
) -> Result<(f32, Tensor), TensorError> {
    let s = logits.shape();
    if s.len() != 2 || s[0] != targets.len() {
        return Err(TensorError::ShapeMismatch {
            expected: vec![targets.len(), 0],
            got: s.to_vec(),
        });
    }
    let (n, k) = (s[0], s[1]);
    let probs = softmax_probs(logits)?;
    let mut loss = 0.0f64;
    let mut grad = probs.clone();
    for (i, &t) in targets.iter().enumerate() {
        assert!(t < k, "target {t} out of range for {k} classes");
        let p = probs.data()[i * k + t].max(1e-12);
        loss -= (p as f64).ln();
        grad.data_mut()[i * k + t] -= 1.0;
    }
    grad.scale(1.0 / n as f32);
    Ok(((loss / n as f64) as f32, grad))
}

/// Fused softmax + categorical cross-entropy, reported per row.
///
/// Returns `(per-row losses, dL/dlogits)` where the gradient is the
/// **unscaled** `p − onehot` and `losses[i]` is exactly the value
/// [`softmax_cross_entropy`] returns for row `i` alone at batch size 1
/// (softmax rows are independent, and the loss is written as the same
/// `0.0 − ln p` fold so even the sign of a zero loss matches). This is
/// the building block for batched training passes that must stay
/// bit-identical to the per-sample oracle: the caller owns the `1/B`
/// scaling and the reduction order.
pub fn softmax_cross_entropy_rows(
    logits: &Tensor,
    targets: &[usize],
) -> Result<(Vec<f32>, Tensor), TensorError> {
    let s = logits.shape();
    if s.len() != 2 || s[0] != targets.len() {
        return Err(TensorError::ShapeMismatch {
            expected: vec![targets.len(), 0],
            got: s.to_vec(),
        });
    }
    let (n, k) = (s[0], s[1]);
    let probs = softmax_probs(logits)?;
    let mut losses = Vec::with_capacity(n);
    let mut grad = probs;
    for (i, &t) in targets.iter().enumerate() {
        assert!(t < k, "target {t} out of range for {k} classes");
        let p = grad.data()[i * k + t].max(1e-12);
        losses.push((0.0 - (p as f64).ln()) as f32);
        grad.data_mut()[i * k + t] -= 1.0;
    }
    Ok((losses, grad))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probs_sum_to_one() {
        let logits = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let p = softmax_probs(&logits).unwrap();
        for i in 0..2 {
            let s: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(&[1, 2], vec![1000.0, 1001.0]).unwrap();
        let p = softmax_probs(&a).unwrap();
        assert!(p.data().iter().all(|v| v.is_finite()));
        let b = Tensor::from_vec(&[1, 2], vec![0.0, 1.0]).unwrap();
        let q = softmax_probs(&b).unwrap();
        assert!((p.data()[0] - q.data()[0]).abs() < 1e-6);
    }

    #[test]
    fn perfect_prediction_low_loss() {
        let logits = Tensor::from_vec(&[1, 2], vec![20.0, -20.0]).unwrap();
        let (loss, _) = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(loss < 1e-6);
        let (bad_loss, _) = softmax_cross_entropy(&logits, &[1]).unwrap();
        assert!(bad_loss > 10.0);
    }

    #[test]
    fn uniform_logits_loss_is_log_k() {
        let logits = Tensor::zeros(&[4, 5]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]).unwrap();
        assert!((loss - (5.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_check() {
        let logits = Tensor::from_vec(&[2, 3], vec![0.5, -0.2, 0.1, 1.5, 0.3, -1.0]).unwrap();
        let targets = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &targets).unwrap();
        let eps = 1e-3f32;
        let mut l2 = logits.clone();
        for idx in 0..logits.len() {
            let orig = l2.data()[idx];
            l2.data_mut()[idx] = orig + eps;
            let (lp, _) = softmax_cross_entropy(&l2, &targets).unwrap();
            l2.data_mut()[idx] = orig - eps;
            let (lm, _) = softmax_cross_entropy(&l2, &targets).unwrap();
            l2.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad.data()[idx]).abs() < 1e-3,
                "dlogit[{idx}]: {num} vs {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn batch_size_mismatch_rejected() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
    }

    #[test]
    fn rows_variant_matches_per_sample_bitwise() {
        let logits = Tensor::from_vec(&[3, 2], vec![0.5, -0.2, 20.0, -20.0, -1.3, 0.9]).unwrap();
        let targets = [1usize, 0, 0];
        let (losses, grad) = softmax_cross_entropy_rows(&logits, &targets).unwrap();
        assert_eq!(losses.len(), 3);
        for i in 0..3 {
            let row =
                Tensor::from_vec(&[1, 2], logits.data()[i * 2..(i + 1) * 2].to_vec()).unwrap();
            let (l1, g1) = softmax_cross_entropy(&row, &[targets[i]]).unwrap();
            assert_eq!(losses[i].to_bits(), l1.to_bits(), "row {i} loss");
            for j in 0..2 {
                // B=1 means the per-sample gradient is also unscaled.
                assert_eq!(
                    grad.data()[i * 2 + j].to_bits(),
                    g1.data()[j].to_bits(),
                    "row {i} grad {j}"
                );
            }
        }
    }
}
