// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Flattening between convolutional and dense stages.

use crate::tensor::{Tensor, TensorError};

/// Flatten `[N, C, H, W] → [N, C·H·W]`. The inverse for the backward pass
/// is just a reshape, so no cache is needed.
pub fn flatten(x: &Tensor) -> Result<Tensor, TensorError> {
    let s = x.shape();
    if s.len() < 2 {
        return Err(TensorError::ShapeMismatch { expected: vec![0, 0], got: s.to_vec() });
    }
    let n = s[0];
    let rest: usize = s[1..].iter().product();
    x.reshape(&[n, rest])
}

/// Reshape a flat gradient back to the convolutional shape.
pub fn unflatten(grad: &Tensor, shape: &[usize]) -> Result<Tensor, TensorError> {
    grad.reshape(shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_roundtrip() {
        let x = Tensor::from_vec(&[2, 3, 2, 2], (0..24).map(|v| v as f32).collect()).unwrap();
        let f = flatten(&x).unwrap();
        assert_eq!(f.shape(), &[2, 12]);
        let back = unflatten(&f, &[2, 3, 2, 2]).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn flatten_rejects_rank1() {
        let x = Tensor::zeros(&[5]);
        assert!(flatten(&x).is_err());
    }
}
