// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Max pooling.

use crate::tensor::{Tensor, TensorError};

/// 2-D max pooling with square window and equal stride (the architecture
/// uses 2×2/2 throughout).
#[derive(Debug, Clone, Copy)]
pub struct MaxPool2D {
    pub size: usize,
    pub stride: usize,
}

/// Cache: flat argmax index (into the input tensor) per output element.
pub struct PoolCache {
    argmax: Vec<usize>,
    in_shape: [usize; 4],
}

impl MaxPool2D {
    /// New pool layer. `size` and `stride` must be ≥ 1.
    pub fn new(size: usize, stride: usize) -> Self {
        assert!(size >= 1 && stride >= 1, "pool size/stride must be >= 1");
        MaxPool2D { size, stride }
    }

    /// Output spatial size.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h.saturating_sub(self.size)) / self.stride + 1,
            (w.saturating_sub(self.size)) / self.stride + 1,
        )
    }

    /// Forward: `[N, C, H, W] → [N, C, OH, OW]`.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, PoolCache), TensorError> {
        let s = x.shape();
        if s.len() != 4 || s[2] < self.size || s[3] < self.size {
            return Err(TensorError::ShapeMismatch {
                expected: vec![0, 0, self.size, self.size],
                got: s.to_vec(),
            });
        }
        let [n, c, h, w] = [s[0], s[1], s[2], s[3]];
        let (oh, ow) = self.out_size(h, w);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let mut argmax = vec![0usize; n * c * oh * ow];
        let data = x.data();
        for ni in 0..n {
            for ci in 0..c {
                let plane = (ni * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for ky in 0..self.size {
                            for kx in 0..self.size {
                                let idx =
                                    plane + (oy * self.stride + ky) * w + ox * self.stride + kx;
                                if data[idx] > best {
                                    best = data[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let o = ((ni * c + ci) * oh + oy) * ow + ox;
                        out.data_mut()[o] = best;
                        argmax[o] = best_idx;
                    }
                }
            }
        }
        Ok((out, PoolCache { argmax, in_shape: [n, c, h, w] }))
    }

    /// Backward: routes each output gradient to its argmax input position.
    pub fn backward(&self, cache: &PoolCache, grad_out: &Tensor) -> Tensor {
        let [n, c, h, w] = cache.in_shape;
        let mut grad_in = Tensor::zeros(&[n, c, h, w]);
        for (o, &src) in cache.argmax.iter().enumerate() {
            grad_in.data_mut()[src] += grad_out.data()[o];
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_maxima() {
        let pool = MaxPool2D::new(2, 2);
        let x = Tensor::from_vec(
            &[1, 1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        )
        .unwrap();
        let (y, _) = pool.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn odd_sizes_truncate() {
        let pool = MaxPool2D::new(2, 2);
        let x = Tensor::zeros(&[1, 2, 5, 7]);
        let (y, _) = pool.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 2, 2, 3]);
    }

    #[test]
    fn too_small_input_rejected() {
        let pool = MaxPool2D::new(3, 3);
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(pool.forward(&x).is_err());
    }

    #[test]
    fn backward_routes_to_argmax() {
        let pool = MaxPool2D::new(2, 2);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 9.0, 3.0, 4.0]).unwrap();
        let (y, cache) = pool.forward(&x).unwrap();
        assert_eq!(y.data(), &[9.0]);
        let g = pool.backward(&cache, &Tensor::full(&[1, 1, 1, 1], 2.5));
        assert_eq!(g.data(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn gradient_check() {
        let pool = MaxPool2D::new(2, 2);
        let x = Tensor::from_vec(
            &[1, 2, 4, 4],
            (0..32).map(|v| ((v * 7919) % 97) as f32 * 0.1).collect(),
        )
        .unwrap();
        let (y, cache) = pool.forward(&x).unwrap();
        let grad_out = Tensor::full(y.shape(), 1.0);
        let gin = pool.backward(&cache, &grad_out);
        let eps = 1e-3f32;
        let mut x2 = x.clone();
        for idx in [0usize, 5, 16, 31] {
            let orig = x2.data()[idx];
            x2.data_mut()[idx] = orig + eps;
            let (y1, _) = pool.forward(&x2).unwrap();
            x2.data_mut()[idx] = orig - eps;
            let (y2, _) = pool.forward(&x2).unwrap();
            x2.data_mut()[idx] = orig;
            let num: f32 =
                y1.data().iter().zip(y2.data()).map(|(a, b)| (a - b) / (2.0 * eps)).sum();
            assert!((num - gin.data()[idx]).abs() < 1e-3, "idx {idx}");
        }
    }
}
