//! Network layers.
//!
//! Layers are *functional*: `forward` borrows the layer immutably and
//! returns the output together with an opaque cache; `backward` consumes
//! the cache, the upstream gradient, and a gradient accumulator, returning
//! the gradient w.r.t. the layer input. Keeping activations out of the
//! layer struct is what makes the Siamese weight sharing trivial — the
//! same `Conv2D` can be applied to both input images, each application
//! owning its own cache, with parameter gradients *accumulated* across the
//! two passes.

pub mod activation;
pub mod batchnorm;
pub mod conv;
pub mod dense;
pub mod dropout;
pub mod flatten;
pub mod pool;
pub mod softmax;

pub use activation::Relu;
pub use batchnorm::BatchNorm2D;
pub use conv::Conv2D;
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::flatten;
pub use pool::MaxPool2D;
pub use softmax::{softmax_cross_entropy, softmax_cross_entropy_rows, softmax_probs};
