// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! 2-D convolution via im2col.
//!
//! Forward and backward are fully batched: one im2col matrix covers the
//! whole `[N, C, H, W]` input, so each pass costs exactly one GEMM
//! (`taor_nn::gemm`) regardless of batch size. All large temporaries —
//! the im2col matrix, the gathered gradient panel, the col2im staging
//! buffer — come from the [`Scratch`] arena, so steady-state passes
//! allocate nothing per sample.

use crate::gemm::{gemm_nn, gemm_nt, gemm_tn};
use crate::scratch::{Scratch, ScratchBuf};
use crate::tensor::{Tensor, TensorError};

/// A 2-D convolution with stride 1 and symmetric zero padding.
///
/// Weights are stored as a `[out_channels, in_channels * kh * kw]` matrix
/// so forward/backward reduce to matrix products against the im2col
/// buffer.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Conv2D {
    pub weight: Tensor,
    pub bias: Tensor,
    pub in_channels: usize,
    pub out_channels: usize,
    pub kernel: usize,
    pub padding: usize,
}

/// Activation cache of one conv forward pass.
#[derive(Debug)]
pub struct ConvCache {
    /// Batched im2col matrix `[C·K·K, N·OH·OW]` (arena-owned).
    col: ScratchBuf,
    in_shape: [usize; 4],
    out_hw: (usize, usize),
}

/// Gradient accumulator matching a [`Conv2D`]'s parameters.
#[derive(Debug, Clone)]
pub struct ConvGrads {
    pub weight: Tensor,
    pub bias: Tensor,
}

impl Conv2D {
    /// New conv layer with He-uniform weights (it is always followed by a
    /// ReLU in the Normalized-X-Corr architecture).
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        padding: usize,
        seed: u64,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        Conv2D {
            weight: crate::init::he_uniform(&[out_channels, fan_in], fan_in, seed),
            bias: Tensor::zeros(&[out_channels]),
            in_channels,
            out_channels,
            kernel,
            padding,
        }
    }

    /// Fresh zeroed gradient accumulator.
    pub fn zero_grads(&self) -> ConvGrads {
        ConvGrads {
            weight: Tensor::zeros(self.weight.shape()),
            bias: Tensor::zeros(self.bias.shape()),
        }
    }

    /// Output spatial size for an `h × w` input, or an error when the
    /// kernel does not fit inside the padded input (the subtraction
    /// underflowed silently in release builds before this guard).
    pub fn try_out_size(&self, h: usize, w: usize) -> Result<(usize, usize), TensorError> {
        let (ph, pw) = (h + 2 * self.padding, w + 2 * self.padding);
        if self.kernel == 0 || self.kernel > ph || self.kernel > pw {
            return Err(TensorError::KernelTooLarge {
                kernel: self.kernel,
                padded_h: ph,
                padded_w: pw,
            });
        }
        Ok((ph + 1 - self.kernel, pw + 1 - self.kernel))
    }

    /// Output spatial size for an input of `h × w`.
    ///
    /// # Panics
    /// Panics when the kernel exceeds the padded input; fallible callers
    /// should use [`Conv2D::try_out_size`].
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        // taor-lint: allow(panic::panic) — documented legacy wrapper: panicking on Err is this shim's contract; callers wanting Results use the try_* API
        self.try_out_size(h, w).unwrap_or_else(|e| panic!("Conv2D::out_size: {e}"))
    }

    /// Batched im2col: fills `col` as `[C·K·K, N·OH·OW]`, columns grouped
    /// per batch item (`col[row, n·OH·OW + oy·OW + ox]`). `col` must be
    /// zeroed — padding taps are skipped, not written.
    fn im2col_batched(&self, x: &Tensor, col: &mut [f32], oh: usize, ow: usize) {
        let [n, c, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]];
        let k = self.kernel;
        let p = self.padding;
        let x_data = x.data();
        let row_len = n * oh * ow;
        for ci in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    let row = ((ci * k) + ky) * k + kx;
                    let dst_row = &mut col[row * row_len..(row + 1) * row_len];
                    for ni in 0..n {
                        let src_plane = &x_data[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
                        let dst_item = &mut dst_row[ni * oh * ow..(ni + 1) * oh * ow];
                        for oy in 0..oh {
                            let sy = oy + ky;
                            if sy < p || sy >= h + p {
                                continue;
                            }
                            let sy = sy - p;
                            // Valid ox range: p <= ox + kx < w + p.
                            let ox_lo = p.saturating_sub(kx);
                            let ox_hi = (w + p - kx).min(ow);
                            if ox_lo >= ox_hi {
                                continue;
                            }
                            let src = &src_plane[sy * w + ox_lo + kx - p..sy * w + ox_hi + kx - p];
                            dst_item[oy * ow + ox_lo..oy * ow + ox_hi].copy_from_slice(src);
                        }
                    }
                }
            }
        }
    }

    /// Forward pass: `x` is `[N, C, H, W]` → `[N, OC, OH, OW]`.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, ConvCache), TensorError> {
        let shape = x.shape();
        if shape.len() != 4 || shape[1] != self.in_channels {
            return Err(TensorError::ShapeMismatch {
                expected: vec![0, self.in_channels, 0, 0],
                got: shape.to_vec(),
            });
        }
        let [n, c, h, w] = [shape[0], shape[1], shape[2], shape[3]];
        let (oh, ow) = self.try_out_size(h, w)?;
        let ckk = c * self.kernel * self.kernel;
        let cols_n = n * oh * ow;

        // Padding taps are skipped by im2col, so the buffer must start
        // zeroed — but a valid (p = 0) conv overwrites every element and
        // can take the arena buffer as-is.
        let mut col = if self.padding == 0 {
            Scratch::take(ckk * cols_n)
        } else {
            Scratch::take_zeroed(ckk * cols_n)
        };
        self.im2col_batched(x, &mut col, oh, ow);

        // One GEMM for the whole batch: [OC, CKK] × [CKK, N·OH·OW].
        let mut y = Scratch::take(self.out_channels * cols_n);
        gemm_nn(self.out_channels, cols_n, ckk, self.weight.data(), &col, &mut y, false);

        // Permute [OC, N·OH·OW] → [N, OC, OH·OW] and add bias.
        let mut out = Tensor::zeros(&[n, self.out_channels, oh, ow]);
        let out_data = out.data_mut();
        let plane = oh * ow;
        for oc in 0..self.out_channels {
            let b = self.bias.data()[oc];
            for ni in 0..n {
                let src = &y[oc * cols_n + ni * plane..oc * cols_n + (ni + 1) * plane];
                let dst = &mut out_data[(ni * self.out_channels + oc) * plane
                    ..(ni * self.out_channels + oc + 1) * plane];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = s + b;
                }
            }
        }
        Ok((out, ConvCache { col, in_shape: [n, c, h, w], out_hw: (oh, ow) }))
    }

    /// Gather `grad_out` `[N, OC, OH·OW]` → `[OC, N·OH·OW]`, matching the
    /// batched column layout of the im2col cache.
    fn gather_gy(&self, grad_out: &Tensor, n: usize, plane: usize) -> ScratchBuf {
        let cols_n = n * plane;
        let mut gy = Scratch::take(self.out_channels * cols_n);
        for oc in 0..self.out_channels {
            for ni in 0..n {
                let src = &grad_out.data()[(ni * self.out_channels + oc) * plane
                    ..(ni * self.out_channels + oc + 1) * plane];
                gy[oc * cols_n + ni * plane..oc * cols_n + (ni + 1) * plane].copy_from_slice(src);
            }
        }
        gy
    }

    /// Backward pass: accumulates parameter gradients into `grads` and
    /// returns the gradient w.r.t. the input.
    pub fn backward(
        &self,
        cache: &ConvCache,
        grad_out: &Tensor,
        grads: &mut ConvGrads,
    ) -> Result<Tensor, TensorError> {
        let [n, _c, _h, _w] = cache.in_shape;
        let (oh, ow) = cache.out_hw;
        let ckk = self.in_channels * self.kernel * self.kernel;
        let plane = oh * ow;
        let cols_n = n * plane;

        let gy = self.gather_gy(grad_out, n, plane);

        // dW += gy · colᵀ, accumulated straight into the gradient store
        // (no temporary product or add_assign pass).
        gemm_nt(self.out_channels, ckk, cols_n, &gy, &cache.col, grads.weight.data_mut(), true);
        // db += row sums of gy.
        for oc in 0..self.out_channels {
            let s: f32 = gy[oc * cols_n..(oc + 1) * cols_n].iter().sum();
            grads.bias.data_mut()[oc] += s;
        }

        self.input_grad(cache, &gy)
    }

    /// Batched backward whose **parameter-gradient accumulation order is
    /// bit-identical to the per-sample oracle**: consecutive runs of
    /// `group` batch items form one oracle sample (the Siamese tower
    /// interleaves `[a₀, b₀, a₁, b₁, …]`, so its convs pass `group = 2`
    /// — the oracle runs the a-branch then the b-branch into one
    /// per-sample store; head convs pass `group = 1`). Each item gets its
    /// own `k = OH·OW` GEMM — the exact call the per-sample path makes —
    /// accumulated into a zeroed temp, and the temp is added into
    /// `grads` elementwise per group. One batched GEMM over
    /// `k = N·OH·OW` would regroup the f32 fold and shift the low bits.
    /// The input gradient has no such hazard (its contraction runs over
    /// `OC`, per column) and stays one batched GEMM.
    pub fn backward_grouped(
        &self,
        cache: &ConvCache,
        grad_out: &Tensor,
        grads: &mut ConvGrads,
        group: usize,
    ) -> Result<Tensor, TensorError> {
        let [n, _c, _h, _w] = cache.in_shape;
        let (oh, ow) = cache.out_hw;
        let ckk = self.in_channels * self.kernel * self.kernel;
        let plane = oh * ow;
        let cols_n = n * plane;
        debug_assert!(group >= 1, "group must be >= 1");

        let gy = self.gather_gy(grad_out, n, plane);

        let wlen = self.out_channels * ckk;
        let mut wtmp = Scratch::take_zeroed(wlen);
        let mut btmp = Scratch::take_zeroed(self.out_channels);
        for g0 in (0..n).step_by(group.max(1)) {
            wtmp.fill(0.0);
            btmp.fill(0.0);
            for j in g0..(g0 + group).min(n) {
                // Item `j`'s panels are strided views of the batched
                // buffers (row stride `cols_n`, row length `plane`) —
                // the strided kernel reads them in place with the exact
                // per-sample fold (same m, n, k → same chain per
                // element), so no per-item copies are needed.
                crate::gemm::gemm_nt_kseq(
                    self.out_channels,
                    ckk,
                    plane,
                    &gy[j * plane..],
                    cols_n,
                    &cache.col[j * plane..],
                    cols_n,
                    &mut wtmp,
                    true,
                );
                for oc in 0..self.out_channels {
                    let s: f32 =
                        gy[oc * cols_n + j * plane..oc * cols_n + (j + 1) * plane].iter().sum();
                    btmp[oc] += s;
                }
            }
            for (d, &s) in grads.weight.data_mut().iter_mut().zip(wtmp.iter()) {
                *d += s;
            }
            for (d, &s) in grads.bias.data_mut().iter_mut().zip(btmp.iter()) {
                *d += s;
            }
        }

        self.input_grad(cache, &gy)
    }

    /// Input gradient: `dcol = Wᵀ · gy` then col2im scatter-add. Each
    /// dcol column is a `k = OC` fold, so batching cannot regroup it.
    fn input_grad(&self, cache: &ConvCache, gy: &[f32]) -> Result<Tensor, TensorError> {
        let [n, c, h, w] = cache.in_shape;
        let (oh, ow) = cache.out_hw;
        let k = self.kernel;
        let p = self.padding;
        let ckk = c * k * k;
        let plane = oh * ow;
        let cols_n = n * plane;

        // dcol = Wᵀ · gy — the transposed-operand kernel reads W in place.
        let mut dcol = Scratch::take(ckk * cols_n);
        gemm_tn(ckk, cols_n, self.out_channels, self.weight.data(), gy, &mut dcol, false);

        // col2im scatter-add back to input geometry.
        let mut grad_in = Tensor::zeros(&[n, c, h, w]);
        let gin = grad_in.data_mut();
        for ci in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    let row = ((ci * k) + ky) * k + kx;
                    let src_row = &dcol[row * cols_n..(row + 1) * cols_n];
                    for ni in 0..n {
                        let dst_plane = &mut gin[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
                        let src_item = &src_row[ni * plane..(ni + 1) * plane];
                        for oy in 0..oh {
                            let sy = oy + ky;
                            if sy < p || sy >= h + p {
                                continue;
                            }
                            let sy = sy - p;
                            let ox_lo = p.saturating_sub(kx);
                            let ox_hi = (w + p - kx).min(ow);
                            if ox_lo >= ox_hi {
                                continue;
                            }
                            let dst =
                                &mut dst_plane[sy * w + ox_lo + kx - p..sy * w + ox_hi + kx - p];
                            let src = &src_item[oy * ow + ox_lo..oy * ow + ox_hi];
                            for (d, &s) in dst.iter_mut().zip(src) {
                                *d += s;
                            }
                        }
                    }
                }
            }
        }
        Ok(grad_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_conv() -> Conv2D {
        let mut c = Conv2D::new(1, 1, 3, 0, 1);
        // Identity-ish kernel: centre 1.
        c.weight =
            Tensor::from_vec(&[1, 9], vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        c.bias = Tensor::from_vec(&[1], vec![0.5]).unwrap();
        c
    }

    #[test]
    fn centre_kernel_shifts_input() {
        let conv = tiny_conv();
        let x = Tensor::from_vec(&[1, 1, 4, 4], (0..16).map(|v| v as f32).collect()).unwrap();
        let (y, _) = conv.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        // Valid conv picks the 2x2 interior + bias 0.5.
        assert_eq!(y.data(), &[5.5, 6.5, 9.5, 10.5]);
    }

    #[test]
    fn padding_preserves_spatial_size() {
        let conv = Conv2D::new(2, 3, 3, 1, 7);
        let x = Tensor::zeros(&[2, 2, 8, 8]);
        let (y, _) = conv.forward(&x).unwrap();
        assert_eq!(y.shape(), &[2, 3, 8, 8]);
    }

    #[test]
    fn wrong_channel_count_rejected() {
        let conv = Conv2D::new(3, 4, 3, 0, 7);
        let x = Tensor::zeros(&[1, 2, 8, 8]);
        assert!(conv.forward(&x).is_err());
    }

    #[test]
    fn oversized_kernel_is_a_typed_error_not_an_underflow() {
        // Regression: `out_size` computed `h + 2p + 1 - k` with usize
        // arithmetic, which underflowed (debug panic / release wrap) for
        // kernels larger than the padded input.
        let conv = Conv2D::new(1, 1, 5, 0, 3);
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        match conv.forward(&x) {
            Err(TensorError::KernelTooLarge { kernel: 5, padded_h: 2, padded_w: 2 }) => {}
            other => panic!("expected KernelTooLarge, got {other:?}"),
        }
        assert!(conv.try_out_size(2, 2).is_err());
        assert_eq!(conv.try_out_size(5, 7), Ok((1, 3)));
    }

    #[test]
    fn batched_forward_matches_per_sample() {
        // Two items through one batched pass == each item alone.
        let conv = Conv2D::new(2, 3, 3, 1, 21);
        let data: Vec<f32> = (0..2 * 2 * 6 * 5).map(|v| (v as f32 * 0.31).sin()).collect();
        let x = Tensor::from_vec(&[2, 2, 6, 5], data.clone()).unwrap();
        let (y, _) = conv.forward(&x).unwrap();
        for ni in 0..2 {
            let xi =
                Tensor::from_vec(&[1, 2, 6, 5], data[ni * 60..(ni + 1) * 60].to_vec()).unwrap();
            let (yi, _) = conv.forward(&xi).unwrap();
            let plane = 3 * 6 * 5;
            assert_eq!(&y.data()[ni * plane..(ni + 1) * plane], yi.data());
        }
    }

    #[test]
    fn gradient_check_weights() {
        // Finite-difference check of dL/dW for L = sum(conv(x)).
        let mut conv = Conv2D::new(2, 2, 3, 1, 11);
        let x = Tensor::from_vec(&[1, 2, 5, 5], (0..50).map(|v| (v as f32 * 0.17).sin()).collect())
            .unwrap();
        let (y, cache) = conv.forward(&x).unwrap();
        let grad_out = Tensor::full(y.shape(), 1.0);
        let mut grads = conv.zero_grads();
        conv.backward(&cache, &grad_out, &mut grads).unwrap();

        let eps = 1e-2f32;
        for &idx in &[0usize, 7, 17, 35] {
            let orig = conv.weight.data()[idx];
            conv.weight.data_mut()[idx] = orig + eps;
            let (y1, _) = conv.forward(&x).unwrap();
            conv.weight.data_mut()[idx] = orig - eps;
            let (y2, _) = conv.forward(&x).unwrap();
            conv.weight.data_mut()[idx] = orig;
            let num: f32 =
                y1.data().iter().zip(y2.data()).map(|(a, b)| (a - b) / (2.0 * eps)).sum();
            let ana = grads.weight.data()[idx];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + ana.abs()),
                "dW[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn gradient_check_input() {
        let conv = Conv2D::new(1, 2, 3, 0, 13);
        let x = Tensor::from_vec(&[1, 1, 5, 5], (0..25).map(|v| (v as f32 * 0.23).cos()).collect())
            .unwrap();
        let (y, cache) = conv.forward(&x).unwrap();
        let grad_out = Tensor::full(y.shape(), 1.0);
        let mut grads = conv.zero_grads();
        let gin = conv.backward(&cache, &grad_out, &mut grads).unwrap();

        let eps = 1e-2f32;
        let mut x2 = x.clone();
        for &idx in &[0usize, 6, 12, 24] {
            let orig = x2.data()[idx];
            x2.data_mut()[idx] = orig + eps;
            let (y1, _) = conv.forward(&x2).unwrap();
            x2.data_mut()[idx] = orig - eps;
            let (y2, _) = conv.forward(&x2).unwrap();
            x2.data_mut()[idx] = orig;
            let num: f32 =
                y1.data().iter().zip(y2.data()).map(|(a, b)| (a - b) / (2.0 * eps)).sum();
            let ana = gin.data()[idx];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + ana.abs()),
                "dX[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn grouped_backward_matches_per_sample_oracle_bitwise() {
        // 4 batch items = 2 oracle samples of 2 interleaved items each
        // (the Siamese tower layout). backward_grouped must replay the
        // oracle's exact accumulation order: per sample, item a then
        // item b into one zeroed store, stores summed in sample order.
        let conv = Conv2D::new(2, 3, 3, 1, 33);
        let (n, item, gitem) = (4usize, 2 * 6 * 5, 3 * 6 * 5);
        let data: Vec<f32> = (0..n * item).map(|v| (v as f32 * 0.23).sin()).collect();
        let x = Tensor::from_vec(&[n, 2, 6, 5], data.clone()).unwrap();
        let (y, cache) = conv.forward(&x).unwrap();
        let gdata: Vec<f32> = (0..y.len()).map(|v| (v as f32 * 0.11).cos()).collect();
        let g = Tensor::from_vec(y.shape(), gdata.clone()).unwrap();

        let mut grads = conv.zero_grads();
        let gin = conv.backward_grouped(&cache, &g, &mut grads, 2).unwrap();

        let mut total = conv.zero_grads();
        for s in 0..2 {
            let mut per = conv.zero_grads();
            for j in [2 * s, 2 * s + 1] {
                let xi = Tensor::from_vec(&[1, 2, 6, 5], data[j * item..(j + 1) * item].to_vec())
                    .unwrap();
                let (_, ci) = conv.forward(&xi).unwrap();
                let gi =
                    Tensor::from_vec(&[1, 3, 6, 5], gdata[j * gitem..(j + 1) * gitem].to_vec())
                        .unwrap();
                conv.backward(&ci, &gi, &mut per).unwrap();
            }
            for (d, &v) in total.weight.data_mut().iter_mut().zip(per.weight.data()) {
                *d += v;
            }
            for (d, &v) in total.bias.data_mut().iter_mut().zip(per.bias.data()) {
                *d += v;
            }
        }
        for (i, (a, b)) in grads.weight.data().iter().zip(total.weight.data()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "dW[{i}]: {a} vs {b}");
        }
        for (i, (a, b)) in grads.bias.data().iter().zip(total.bias.data()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "db[{i}]: {a} vs {b}");
        }

        // The input gradient takes the batched path in both variants.
        let mut g2 = conv.zero_grads();
        let gin2 = conv.backward(&cache, &g, &mut g2).unwrap();
        for (a, b) in gin.data().iter().zip(gin2.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn bias_gradient_counts_positions() {
        let conv = Conv2D::new(1, 1, 3, 0, 3);
        let x = Tensor::zeros(&[2, 1, 5, 5]);
        let (y, cache) = conv.forward(&x).unwrap();
        let grad_out = Tensor::full(y.shape(), 1.0);
        let mut grads = conv.zero_grads();
        conv.backward(&cache, &grad_out, &mut grads).unwrap();
        // 2 batch items x 3x3 output positions each.
        assert_eq!(grads.bias.data()[0], 18.0);
    }
}
