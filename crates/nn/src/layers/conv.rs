//! 2-D convolution via im2col.

use crate::tensor::{Tensor, TensorError};

/// A 2-D convolution with stride 1 and symmetric zero padding.
///
/// Weights are stored as a `[out_channels, in_channels * kh * kw]` matrix
/// so forward/backward reduce to matrix products against the im2col
/// buffer.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Conv2D {
    pub weight: Tensor,
    pub bias: Tensor,
    pub in_channels: usize,
    pub out_channels: usize,
    pub kernel: usize,
    pub padding: usize,
}

/// Activation cache of one conv forward pass.
pub struct ConvCache {
    /// im2col matrix `[C·K·K, OH·OW]` per batch item, concatenated.
    cols: Vec<Tensor>,
    in_shape: [usize; 4],
    out_hw: (usize, usize),
}

/// Gradient accumulator matching a [`Conv2D`]'s parameters.
#[derive(Debug, Clone)]
pub struct ConvGrads {
    pub weight: Tensor,
    pub bias: Tensor,
}

impl Conv2D {
    /// New conv layer with He-uniform weights (it is always followed by a
    /// ReLU in the Normalized-X-Corr architecture).
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, padding: usize, seed: u64) -> Self {
        let fan_in = in_channels * kernel * kernel;
        Conv2D {
            weight: crate::init::he_uniform(&[out_channels, fan_in], fan_in, seed),
            bias: Tensor::zeros(&[out_channels]),
            in_channels,
            out_channels,
            kernel,
            padding,
        }
    }

    /// Fresh zeroed gradient accumulator.
    pub fn zero_grads(&self) -> ConvGrads {
        ConvGrads { weight: Tensor::zeros(self.weight.shape()), bias: Tensor::zeros(self.bias.shape()) }
    }

    /// Output spatial size for an input of `h × w`.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        (h + 2 * self.padding + 1 - self.kernel, w + 2 * self.padding + 1 - self.kernel)
    }

    fn im2col(&self, x: &Tensor, n: usize) -> Tensor {
        let [_, c, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]];
        let (oh, ow) = self.out_size(h, w);
        let k = self.kernel;
        let p = self.padding as i64;
        let mut col = Tensor::zeros(&[c * k * k, oh * ow]);
        let col_data = col.data_mut();
        for ci in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    let row = ((ci * k) + ky) * k + kx;
                    for oy in 0..oh {
                        let sy = oy as i64 + ky as i64 - p;
                        if sy < 0 || sy >= h as i64 {
                            continue;
                        }
                        for ox in 0..ow {
                            let sx = ox as i64 + kx as i64 - p;
                            if sx < 0 || sx >= w as i64 {
                                continue;
                            }
                            col_data[row * (oh * ow) + oy * ow + ox] =
                                x.at4(n, ci, sy as usize, sx as usize);
                        }
                    }
                }
            }
        }
        col
    }

    /// Forward pass: `x` is `[N, C, H, W]` → `[N, OC, OH, OW]`.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, ConvCache), TensorError> {
        let shape = x.shape();
        if shape.len() != 4 || shape[1] != self.in_channels {
            return Err(TensorError::ShapeMismatch {
                expected: vec![0, self.in_channels, 0, 0],
                got: shape.to_vec(),
            });
        }
        let [n, _, h, w] = [shape[0], shape[1], shape[2], shape[3]];
        let (oh, ow) = self.out_size(h, w);
        let mut out = Tensor::zeros(&[n, self.out_channels, oh, ow]);
        let mut cols = Vec::with_capacity(n);
        for ni in 0..n {
            let col = self.im2col(x, ni);
            let y = self.weight.matmul(&col)?; // [OC, OH*OW]
            let base = ni * self.out_channels * oh * ow;
            let out_data = out.data_mut();
            for oc in 0..self.out_channels {
                let b = self.bias.data()[oc];
                let src = &y.data()[oc * oh * ow..(oc + 1) * oh * ow];
                let dst = &mut out_data[base + oc * oh * ow..base + (oc + 1) * oh * ow];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = s + b;
                }
            }
            cols.push(col);
        }
        Ok((out, ConvCache { cols, in_shape: [n, shape[1], h, w], out_hw: (oh, ow) }))
    }

    /// Backward pass: accumulates parameter gradients into `grads` and
    /// returns the gradient w.r.t. the input.
    pub fn backward(
        &self,
        cache: &ConvCache,
        grad_out: &Tensor,
        grads: &mut ConvGrads,
    ) -> Result<Tensor, TensorError> {
        let [n, c, h, w] = cache.in_shape;
        let (oh, ow) = cache.out_hw;
        let k = self.kernel;
        let p = self.padding as i64;
        let mut grad_in = Tensor::zeros(&[n, c, h, w]);

        for ni in 0..n {
            // Slice grad_out for this batch item as [OC, OH*OW].
            let mut gy = Tensor::zeros(&[self.out_channels, oh * ow]);
            {
                let gy_data = gy.data_mut();
                for oc in 0..self.out_channels {
                    for i in 0..oh * ow {
                        gy_data[oc * oh * ow + i] =
                            grad_out.data()[((ni * self.out_channels + oc) * oh * ow) + i];
                    }
                }
            }
            // dW += gy · colᵀ ; db += row-sums of gy.
            let colt = cache.cols[ni].transpose2()?;
            let dw = gy.matmul(&colt)?;
            grads.weight.add_assign(&dw)?;
            for oc in 0..self.out_channels {
                let s: f32 = gy.data()[oc * oh * ow..(oc + 1) * oh * ow].iter().sum();
                grads.bias.data_mut()[oc] += s;
            }
            // dcol = Wᵀ · gy, then col2im scatter-add.
            let wt = self.weight.transpose2()?;
            let dcol = wt.matmul(&gy)?; // [C*K*K, OH*OW]
            for ci in 0..c {
                for ky in 0..k {
                    for kx in 0..k {
                        let row = ((ci * k) + ky) * k + kx;
                        for oy in 0..oh {
                            let sy = oy as i64 + ky as i64 - p;
                            if sy < 0 || sy >= h as i64 {
                                continue;
                            }
                            for ox in 0..ow {
                                let sx = ox as i64 + kx as i64 - p;
                                if sx < 0 || sx >= w as i64 {
                                    continue;
                                }
                                *grad_in.at4_mut(ni, ci, sy as usize, sx as usize) +=
                                    dcol.data()[row * (oh * ow) + oy * ow + ox];
                            }
                        }
                    }
                }
            }
        }
        Ok(grad_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_conv() -> Conv2D {
        let mut c = Conv2D::new(1, 1, 3, 0, 1);
        // Identity-ish kernel: centre 1.
        c.weight = Tensor::from_vec(&[1, 9], vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0])
            .unwrap();
        c.bias = Tensor::from_vec(&[1], vec![0.5]).unwrap();
        c
    }

    #[test]
    fn centre_kernel_shifts_input() {
        let conv = tiny_conv();
        let x = Tensor::from_vec(&[1, 1, 4, 4], (0..16).map(|v| v as f32).collect()).unwrap();
        let (y, _) = conv.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        // Valid conv picks the 2x2 interior + bias 0.5.
        assert_eq!(y.data(), &[5.5, 6.5, 9.5, 10.5]);
    }

    #[test]
    fn padding_preserves_spatial_size() {
        let conv = Conv2D::new(2, 3, 3, 1, 7);
        let x = Tensor::zeros(&[2, 2, 8, 8]);
        let (y, _) = conv.forward(&x).unwrap();
        assert_eq!(y.shape(), &[2, 3, 8, 8]);
    }

    #[test]
    fn wrong_channel_count_rejected() {
        let conv = Conv2D::new(3, 4, 3, 0, 7);
        let x = Tensor::zeros(&[1, 2, 8, 8]);
        assert!(conv.forward(&x).is_err());
    }

    #[test]
    fn gradient_check_weights() {
        // Finite-difference check of dL/dW for L = sum(conv(x)).
        let mut conv = Conv2D::new(2, 2, 3, 1, 11);
        let x = Tensor::from_vec(
            &[1, 2, 5, 5],
            (0..50).map(|v| (v as f32 * 0.17).sin()).collect(),
        )
        .unwrap();
        let (y, cache) = conv.forward(&x).unwrap();
        let grad_out = Tensor::full(y.shape(), 1.0);
        let mut grads = conv.zero_grads();
        conv.backward(&cache, &grad_out, &mut grads).unwrap();

        let eps = 1e-2f32;
        for &idx in &[0usize, 7, 17, 35] {
            let orig = conv.weight.data()[idx];
            conv.weight.data_mut()[idx] = orig + eps;
            let (y1, _) = conv.forward(&x).unwrap();
            conv.weight.data_mut()[idx] = orig - eps;
            let (y2, _) = conv.forward(&x).unwrap();
            conv.weight.data_mut()[idx] = orig;
            let num: f32 = y1
                .data()
                .iter()
                .zip(y2.data())
                .map(|(a, b)| (a - b) / (2.0 * eps))
                .sum();
            let ana = grads.weight.data()[idx];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + ana.abs()),
                "dW[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn gradient_check_input() {
        let conv = Conv2D::new(1, 2, 3, 0, 13);
        let x = Tensor::from_vec(
            &[1, 1, 5, 5],
            (0..25).map(|v| (v as f32 * 0.23).cos()).collect(),
        )
        .unwrap();
        let (y, cache) = conv.forward(&x).unwrap();
        let grad_out = Tensor::full(y.shape(), 1.0);
        let mut grads = conv.zero_grads();
        let gin = conv.backward(&cache, &grad_out, &mut grads).unwrap();

        let eps = 1e-2f32;
        let mut x2 = x.clone();
        for &idx in &[0usize, 6, 12, 24] {
            let orig = x2.data()[idx];
            x2.data_mut()[idx] = orig + eps;
            let (y1, _) = conv.forward(&x2).unwrap();
            x2.data_mut()[idx] = orig - eps;
            let (y2, _) = conv.forward(&x2).unwrap();
            x2.data_mut()[idx] = orig;
            let num: f32 =
                y1.data().iter().zip(y2.data()).map(|(a, b)| (a - b) / (2.0 * eps)).sum();
            let ana = gin.data()[idx];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + ana.abs()),
                "dX[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn bias_gradient_counts_positions() {
        let conv = Conv2D::new(1, 1, 3, 0, 3);
        let x = Tensor::zeros(&[2, 1, 5, 5]);
        let (y, cache) = conv.forward(&x).unwrap();
        let grad_out = Tensor::full(y.shape(), 1.0);
        let mut grads = conv.zero_grads();
        conv.backward(&cache, &grad_out, &mut grads).unwrap();
        // 2 batch items x 3x3 output positions each.
        assert_eq!(grads.bias.data()[0], 18.0);
    }
}
