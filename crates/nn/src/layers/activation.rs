//! Activation functions.

use crate::tensor::Tensor;

/// Rectified linear unit.
#[derive(Debug, Clone, Copy, Default)]
pub struct Relu;

/// Cache: the sign mask of the input.
pub struct ReluCache {
    mask: Vec<bool>,
}

impl Relu {
    /// Forward: `max(0, x)` elementwise.
    pub fn forward(&self, x: &Tensor) -> (Tensor, ReluCache) {
        let mut out = x.clone();
        let mut mask = vec![false; x.len()];
        for (v, m) in out.data_mut().iter_mut().zip(&mut mask) {
            if *v > 0.0 {
                *m = true;
            } else {
                *v = 0.0;
            }
        }
        (out, ReluCache { mask })
    }

    /// Backward: pass gradient where the input was positive.
    pub fn backward(&self, cache: &ReluCache, grad_out: &Tensor) -> Tensor {
        let mut grad_in = grad_out.clone();
        for (g, &m) in grad_in.data_mut().iter_mut().zip(&cache.mask) {
            if !m {
                *g = 0.0;
            }
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clips_negatives() {
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -3.0]).unwrap();
        let (y, _) = Relu.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn gradient_masked() {
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.5, 2.0, -3.0]).unwrap();
        let (_, cache) = Relu.forward(&x);
        let g = Relu.backward(&cache, &Tensor::full(&[4], 1.0));
        assert_eq!(g.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn zero_input_blocks_gradient() {
        let x = Tensor::from_vec(&[1], vec![0.0]).unwrap();
        let (_, cache) = Relu.forward(&x);
        let g = Relu.backward(&cache, &Tensor::full(&[1], 5.0));
        assert_eq!(g.data(), &[0.0]);
    }
}
