// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Per-channel batch normalisation (Ioffe & Szegedy 2015).
//!
//! Not part of the Normalized-X-Corr architecture the paper reproduces,
//! but the standard "modify the tested architecture … to improve its
//! flexibility" tool its conclusion gestures at. Normalises each channel
//! of an NCHW tensor over the batch and spatial dimensions, with learned
//! scale γ and shift β, and tracks running statistics for inference.

use crate::tensor::{Tensor, TensorError};

/// Batch-normalisation layer for `[N, C, H, W]` tensors.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct BatchNorm2D {
    pub gamma: Tensor,
    pub beta: Tensor,
    pub running_mean: Tensor,
    pub running_var: Tensor,
    pub channels: usize,
    pub momentum: f32,
    pub eps: f32,
}

/// Forward cache for the backward pass.
pub struct BatchNormCache {
    /// Normalised activations x̂.
    x_hat: Tensor,
    /// Per-channel 1/σ of this batch.
    inv_std: Vec<f32>,
    in_shape: [usize; 4],
}

/// Gradient accumulator for γ and β.
#[derive(Debug, Clone)]
pub struct BatchNormGrads {
    pub gamma: Tensor,
    pub beta: Tensor,
}

impl BatchNorm2D {
    /// New layer: γ = 1, β = 0, running stats at the standard-normal
    /// defaults.
    pub fn new(channels: usize) -> Self {
        BatchNorm2D {
            gamma: Tensor::full(&[channels], 1.0),
            beta: Tensor::zeros(&[channels]),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::full(&[channels], 1.0),
            channels,
            momentum: 0.1,
            eps: 1e-5,
        }
    }

    /// Fresh zeroed gradient accumulator.
    pub fn zero_grads(&self) -> BatchNormGrads {
        BatchNormGrads {
            gamma: Tensor::zeros(&[self.channels]),
            beta: Tensor::zeros(&[self.channels]),
        }
    }

    fn check(&self, x: &Tensor) -> Result<[usize; 4], TensorError> {
        let s = x.shape();
        if s.len() != 4 || s[1] != self.channels {
            return Err(TensorError::ShapeMismatch {
                expected: vec![0, self.channels, 0, 0],
                got: s.to_vec(),
            });
        }
        Ok([s[0], s[1], s[2], s[3]])
    }

    /// Training-mode forward: normalise with batch statistics and update
    /// the running estimates.
    pub fn forward_train(&mut self, x: &Tensor) -> Result<(Tensor, BatchNormCache), TensorError> {
        let [n, c, h, w] = self.check(x)?;
        let per_ch = (n * h * w) as f32;
        let mut out = x.clone();
        let mut x_hat = Tensor::zeros(x.shape());
        let mut inv_std = vec![0.0f32; c];
        for (ci, istd_slot) in inv_std.iter_mut().enumerate() {
            let mut mean = 0.0f32;
            for ni in 0..n {
                for hi in 0..h {
                    for wi in 0..w {
                        mean += x.at4(ni, ci, hi, wi);
                    }
                }
            }
            mean /= per_ch;
            let mut var = 0.0f32;
            for ni in 0..n {
                for hi in 0..h {
                    for wi in 0..w {
                        var += (x.at4(ni, ci, hi, wi) - mean).powi(2);
                    }
                }
            }
            var /= per_ch;
            let istd = 1.0 / (var + self.eps).sqrt();
            *istd_slot = istd;
            let (g, b) = (self.gamma.data()[ci], self.beta.data()[ci]);
            for ni in 0..n {
                for hi in 0..h {
                    for wi in 0..w {
                        let xh = (x.at4(ni, ci, hi, wi) - mean) * istd;
                        *x_hat.at4_mut(ni, ci, hi, wi) = xh;
                        *out.at4_mut(ni, ci, hi, wi) = g * xh + b;
                    }
                }
            }
            // Exponential running stats.
            let rm = &mut self.running_mean.data_mut()[ci];
            *rm = (1.0 - self.momentum) * *rm + self.momentum * mean;
            let rv = &mut self.running_var.data_mut()[ci];
            *rv = (1.0 - self.momentum) * *rv + self.momentum * var;
        }
        Ok((out, BatchNormCache { x_hat, inv_std, in_shape: [n, c, h, w] }))
    }

    /// Inference-mode forward: normalise with the running statistics.
    pub fn forward_eval(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        let [n, c, h, w] = self.check(x)?;
        let mut out = x.clone();
        for ci in 0..c {
            let mean = self.running_mean.data()[ci];
            let istd = 1.0 / (self.running_var.data()[ci] + self.eps).sqrt();
            let (g, b) = (self.gamma.data()[ci], self.beta.data()[ci]);
            for ni in 0..n {
                for hi in 0..h {
                    for wi in 0..w {
                        let v = out.at4_mut(ni, ci, hi, wi);
                        *v = g * (*v - mean) * istd + b;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Backward pass (standard BN gradient), accumulating dγ/dβ.
    pub fn backward(
        &self,
        cache: &BatchNormCache,
        grad_out: &Tensor,
        grads: &mut BatchNormGrads,
    ) -> Result<Tensor, TensorError> {
        let [n, c, h, w] = cache.in_shape;
        let m = (n * h * w) as f32;
        let mut grad_in = Tensor::zeros(grad_out.shape());
        for ci in 0..c {
            let g = self.gamma.data()[ci];
            let istd = cache.inv_std[ci];
            // Accumulate the three reductions.
            let (mut sum_dy, mut sum_dy_xhat) = (0.0f32, 0.0f32);
            for ni in 0..n {
                for hi in 0..h {
                    for wi in 0..w {
                        let dy = grad_out.at4(ni, ci, hi, wi);
                        sum_dy += dy;
                        sum_dy_xhat += dy * cache.x_hat.at4(ni, ci, hi, wi);
                    }
                }
            }
            grads.beta.data_mut()[ci] += sum_dy;
            grads.gamma.data_mut()[ci] += sum_dy_xhat;
            for ni in 0..n {
                for hi in 0..h {
                    for wi in 0..w {
                        let dy = grad_out.at4(ni, ci, hi, wi);
                        let xh = cache.x_hat.at4(ni, ci, hi, wi);
                        *grad_in.at4_mut(ni, ci, hi, wi) =
                            g * istd / m * (m * dy - sum_dy - xh * sum_dy_xhat);
                    }
                }
            }
        }
        Ok(grad_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> Tensor {
        Tensor::from_vec(
            &[2, 3, 2, 2],
            (0..24).map(|i| (i as f32 * 0.7).sin() * 3.0 + 1.0).collect(),
        )
        .unwrap()
    }

    #[test]
    fn training_output_is_normalised() {
        let mut bn = BatchNorm2D::new(3);
        let x = input();
        let (y, _) = bn.forward_train(&x).unwrap();
        // Per channel: mean ≈ 0, var ≈ 1 (γ=1, β=0).
        for ci in 0..3 {
            let mut vals = Vec::new();
            for ni in 0..2 {
                for hi in 0..2 {
                    for wi in 0..2 {
                        vals.push(y.at4(ni, ci, hi, wi));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ci} var {var}");
        }
    }

    #[test]
    fn running_stats_track_batches() {
        let mut bn = BatchNorm2D::new(3);
        let x = input();
        for _ in 0..60 {
            bn.forward_train(&x).unwrap();
        }
        // Long exposure to a constant batch: running stats converge to it,
        // so eval output matches train output.
        let (train_y, _) = bn.forward_train(&x).unwrap();
        let eval_y = bn.forward_eval(&x).unwrap();
        for (a, b) in train_y.data().iter().zip(eval_y.data()) {
            assert!((a - b).abs() < 0.05, "train {a} vs eval {b}");
        }
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut bn = BatchNorm2D::new(3);
        bn.gamma = Tensor::full(&[3], 2.0);
        bn.beta = Tensor::full(&[3], 5.0);
        let (y, _) = bn.forward_train(&input()).unwrap();
        // Mean per channel is now β = 5.
        let mean: f32 = y.data().iter().sum::<f32>() / y.len() as f32;
        assert!((mean - 5.0).abs() < 1e-3, "mean {mean}");
    }

    #[test]
    fn gradient_check() {
        use crate::gradcheck::{check_gradient, probe_indices};
        let x = input();
        // L = Σ wᵢ·yᵢ with fixed pseudo-random weights, so dL/dy = w and
        // the gradient through the batch statistics is exercised
        // non-trivially (a pure Σy² loss is almost invariant under BN).
        let weights: Vec<f32> = (0..24).map(|i| ((i * 37 % 11) as f32 - 5.0) * 0.3).collect();
        let w = Tensor::from_vec(&[2, 3, 2, 2], weights).unwrap();
        let run = |t: &Tensor| -> (Tensor, BatchNormCache) {
            let mut bn = BatchNorm2D::new(3);
            bn.gamma = Tensor::from_vec(&[3], vec![1.3, 0.8, 1.1]).unwrap();
            bn.beta = Tensor::from_vec(&[3], vec![0.4, -0.2, 0.1]).unwrap();
            bn.forward_train(t).unwrap()
        };
        let f = |t: &Tensor| -> f32 {
            let (y, _) = run(t);
            y.data().iter().zip(w.data()).map(|(a, b)| a * b).sum()
        };
        let (_, cache) = run(&x);
        let mut bn = BatchNorm2D::new(3);
        bn.gamma = Tensor::from_vec(&[3], vec![1.3, 0.8, 1.1]).unwrap();
        bn.beta = Tensor::from_vec(&[3], vec![0.4, -0.2, 0.1]).unwrap();
        let mut grads = bn.zero_grads();
        let gin = bn.backward(&cache, &w, &mut grads).unwrap();
        let report = check_gradient(f, &x, &gin, &probe_indices(x.len(), 8), 1e-2);
        assert!(report.passes(0.05), "rel err {}", report.max_rel_err);
        // dβ is the plain sum of upstream gradients per channel.
        for ci in 0..3 {
            let mut expect = 0.0f32;
            for ni in 0..2 {
                for hi in 0..2 {
                    for wi in 0..2 {
                        expect += w.at4(ni, ci, hi, wi);
                    }
                }
            }
            assert!((grads.beta.data()[ci] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut bn = BatchNorm2D::new(4);
        assert!(bn.forward_train(&input()).is_err());
        assert!(bn.forward_eval(&input()).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let mut bn = BatchNorm2D::new(2);
        let x = Tensor::full(&[1, 2, 3, 3], 2.0);
        bn.forward_train(&x).unwrap();
        let json = serde_json::to_string(&bn).unwrap();
        let back: BatchNorm2D = serde_json::from_str(&json).unwrap();
        assert_eq!(back.running_mean, bn.running_mean);
    }
}
