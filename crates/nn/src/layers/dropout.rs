// taor-lint: allow(panic::index) — dense numeric kernel: mask fill over row*f..(row+1)*f with f*rows == len asserted at entry.
//! Inverted dropout.
//!
//! The paper attributes its Table-4 failure to overfitting and proposes
//! "further tweaking of the framework" — dropout is the canonical first
//! tweak. Inverted scaling (`kept / (1 − rate)`) keeps inference
//! untouched: at prediction time the layer is the identity.

use crate::tensor::Tensor;
use rand::{Rng, SeedableRng};

/// Dropout layer configuration.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    /// Fraction of activations zeroed during training, in `[0, 1)`.
    pub rate: f32,
}

/// Cache: the applied keep-mask with its inverted scale folded in.
pub struct DropoutCache {
    scale_mask: Vec<f32>,
}

impl Dropout {
    /// New dropout layer.
    ///
    /// # Panics
    /// Panics if `rate` is outside `[0, 1)`.
    pub fn new(rate: f32) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate {rate} not in [0, 1)");
        Dropout { rate }
    }

    /// Training-mode forward with a caller-provided seed (keeps the whole
    /// training run deterministic).
    pub fn forward_train(&self, x: &Tensor, seed: u64) -> (Tensor, DropoutCache) {
        // taor-lint: allow(float::eq) — config fast path for the exact disabled value
        if self.rate == 0.0 {
            return (x.clone(), DropoutCache { scale_mask: vec![1.0; x.len()] });
        }
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let keep = 1.0 - self.rate;
        let inv = 1.0 / keep;
        let mut out = x.clone();
        let mut scale_mask = vec![0.0f32; x.len()];
        for (v, m) in out.data_mut().iter_mut().zip(&mut scale_mask) {
            if rng.gen::<f32>() < keep {
                *m = inv;
                *v *= inv;
            } else {
                *v = 0.0;
            }
        }
        (out, DropoutCache { scale_mask })
    }

    /// Batched training-mode forward for a `[N, F]` activation where row
    /// `i` draws its mask from a fresh `SmallRng` stream seeded with
    /// `seeds[i]`.
    ///
    /// Bit-identical to calling [`Self::forward_train`] on each row as a
    /// `[1, F]` tensor with its seed — which is exactly what keeps the
    /// batched trainer's masks independent of how samples are grouped
    /// into micro-batches.
    pub fn forward_train_rows(&self, x: &Tensor, seeds: &[u64]) -> (Tensor, DropoutCache) {
        // taor-lint: allow(float::eq) — config fast path for the exact disabled value
        if self.rate == 0.0 {
            return (x.clone(), DropoutCache { scale_mask: vec![1.0; x.len()] });
        }
        let n = seeds.len();
        let f = x.len().checked_div(n).unwrap_or(0);
        debug_assert_eq!(f * n, x.len(), "rows must evenly split the activation");
        let keep = 1.0 - self.rate;
        let inv = 1.0 / keep;
        let mut out = x.clone();
        let mut scale_mask = vec![0.0f32; x.len()];
        let data = out.data_mut();
        for (row, &seed) in seeds.iter().enumerate() {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            for idx in row * f..(row + 1) * f {
                if rng.gen::<f32>() < keep {
                    scale_mask[idx] = inv;
                    data[idx] *= inv;
                } else {
                    data[idx] = 0.0;
                }
            }
        }
        (out, DropoutCache { scale_mask })
    }

    /// Inference-mode forward: identity.
    pub fn forward_eval(&self, x: &Tensor) -> Tensor {
        x.clone()
    }

    /// Backward: gradient flows only through kept units, with the same
    /// inverted scale.
    pub fn backward(&self, cache: &DropoutCache, grad_out: &Tensor) -> Tensor {
        let mut grad = grad_out.clone();
        for (g, &m) in grad.data_mut().iter_mut().zip(&cache.scale_mask) {
            *g *= m;
        }
        grad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let d = Dropout::new(0.5);
        let x = Tensor::from_vec(&[4], vec![1.0, -2.0, 3.0, 4.0]).unwrap();
        assert_eq!(d.forward_eval(&x), x);
    }

    #[test]
    fn train_zeroes_roughly_rate_fraction() {
        let d = Dropout::new(0.4);
        let x = Tensor::full(&[10_000], 1.0);
        let (y, _) = d.forward_train(&x, 7);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / 10_000.0;
        assert!((frac - 0.4).abs() < 0.03, "dropped {frac}");
    }

    #[test]
    fn inverted_scaling_preserves_expectation() {
        let d = Dropout::new(0.3);
        let x = Tensor::full(&[50_000], 2.0);
        let (y, _) = d.forward_train(&x, 13);
        let mean: f32 = y.data().iter().sum::<f32>() / y.len() as f32;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let d = Dropout::new(0.5);
        let x = Tensor::full(&[64], 1.0);
        let (a, _) = d.forward_train(&x, 42);
        let (b, _) = d.forward_train(&x, 42);
        assert_eq!(a, b);
        let (c, _) = d.forward_train(&x, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn backward_masks_gradient_consistently() {
        let d = Dropout::new(0.5);
        let x = Tensor::full(&[32], 1.0);
        let (y, cache) = d.forward_train(&x, 3);
        let g = d.backward(&cache, &Tensor::full(&[32], 1.0));
        for (yv, gv) in y.data().iter().zip(g.data()) {
            assert_eq!(*yv == 0.0, *gv == 0.0, "mask mismatch");
        }
    }

    #[test]
    fn zero_rate_is_transparent() {
        let d = Dropout::new(0.0);
        let x = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]).unwrap();
        let (y, cache) = d.forward_train(&x, 1);
        assert_eq!(y, x);
        let g = d.backward(&cache, &Tensor::full(&[3], 1.0));
        assert!(g.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    #[should_panic(expected = "not in [0, 1)")]
    fn rate_one_panics() {
        Dropout::new(1.0);
    }

    #[test]
    fn rows_variant_matches_per_row_forward_bitwise() {
        let d = Dropout::new(0.35);
        let x = Tensor::from_vec(&[3, 8], (0..24).map(|i| i as f32 * 0.5 - 3.0).collect()).unwrap();
        let seeds = [11u64, 97, 11];
        let (y, cache) = d.forward_train_rows(&x, &seeds);
        for (i, &seed) in seeds.iter().enumerate() {
            let row = Tensor::from_vec(&[1, 8], x.data()[i * 8..(i + 1) * 8].to_vec()).unwrap();
            let (yr, cr) = d.forward_train(&row, seed);
            for j in 0..8 {
                assert_eq!(y.data()[i * 8 + j].to_bits(), yr.data()[j].to_bits());
                assert_eq!(cache.scale_mask[i * 8 + j].to_bits(), cr.scale_mask[j].to_bits());
            }
        }
        // Equal seeds must yield equal masks regardless of row position.
        assert_eq!(&cache.scale_mask[0..8], &cache.scale_mask[16..24], "rows 0 and 2 share a seed");
    }
}
