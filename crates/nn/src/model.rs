// taor-lint: allow(panic::index) — dense numeric kernel: interleave/split kernels: ranges are i*item-stepped with buffers sized 2*n*item at allocation.
//! The Normalized-X-Corr network (Subramaniam et al. 2016), as re-built in
//! the paper's Keras pipeline (§3.4).
//!
//! Architecture, following the NIPS paper and the description in §3.4:
//!
//! ```text
//!   image A ─┐                                  (shared weights)
//!            ├─ Conv(5×5) → ReLU → MaxPool(2) → Conv(5×5) → ReLU → MaxPool(2) ─┐
//!   image B ─┘                                                                 │
//!                             Normalized-X-Corr (patch, radius) ◄──────────────┤
//!                                        │
//!        Conv(3×3) → ReLU → Conv(3×3) → ReLU → MaxPool(2)     ("two successive
//!                                        │       convolutional layers followed
//!                                   Flatten                    by Maxpooling")
//!                                        │
//!                          Dense → ReLU → Dense(2) → softmax
//! ```
//!
//! The paper resizes inputs to 60×160×3; that resolution is configurable
//! here (the repro harness defaults to a reduced one so CPU training stays
//! within budget — the failure mode under study does not depend on it).

use crate::layers::conv::{Conv2D, ConvGrads};
use crate::layers::dense::{Dense, DenseGrads};
use crate::layers::dropout::{Dropout, DropoutCache};
use crate::layers::flatten::{flatten, unflatten};
use crate::layers::pool::MaxPool2D;
use crate::layers::softmax::softmax_probs;
use crate::layers::Relu;
use crate::tensor::{Tensor, TensorError};
use crate::xcorr::NormXCorr;

/// Network hyperparameters.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct NetConfig {
    /// Input height (paper: 160).
    pub height: usize,
    /// Input width (paper: 60).
    pub width: usize,
    /// Channels of the first shared conv (NIPS paper: 20).
    pub c1: usize,
    /// Channels of the second shared conv (NIPS paper: 25).
    pub c2: usize,
    /// Channels of the two post-correlation convs.
    pub c3: usize,
    /// NCC patch side.
    pub patch: usize,
    /// NCC displacement radius.
    pub radius: usize,
    /// Width of the penultimate dense layer.
    pub dense: usize,
    /// Dropout rate applied after the penultimate dense layer during
    /// training (0 disables it) — the paper's mooted overfitting fix.
    #[serde(default)]
    pub dropout: f32,
    /// Weight-init seed.
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        // CPU-budget default: 64×24 inputs, 20/25-channel towers like the
        // NIPS paper, small correlation neighbourhood.
        NetConfig {
            height: 64,
            width: 24,
            c1: 20,
            c2: 25,
            c3: 25,
            patch: 3,
            radius: 1,
            dense: 64,
            dropout: 0.0,
            seed: 2019,
        }
    }
}

/// The full network. All parameters are owned; the shared tower is stored
/// once and applied to both inputs.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct NormXCorrNet {
    pub config: NetConfig,
    pub conv1: Conv2D,
    pub conv2: Conv2D,
    pub conv3: Conv2D,
    pub conv4: Conv2D,
    pub dense1: Dense,
    pub dense2: Dense,
    #[serde(skip, default = "default_pool")]
    pool: MaxPool2D,
}

fn default_pool() -> MaxPool2D {
    MaxPool2D::new(2, 2)
}

/// Parameter gradients for one training step.
#[derive(Clone)]
pub struct NetGrads {
    pub conv1: ConvGrads,
    pub conv2: ConvGrads,
    pub conv3: ConvGrads,
    pub conv4: ConvGrads,
    pub dense1: DenseGrads,
    pub dense2: DenseGrads,
}

impl NetGrads {
    /// Elementwise accumulate another gradient set (used to reduce
    /// per-sample gradients computed in parallel).
    pub fn accumulate(&mut self, other: &NetGrads) -> Result<(), TensorError> {
        self.conv1.weight.add_assign(&other.conv1.weight)?;
        self.conv1.bias.add_assign(&other.conv1.bias)?;
        self.conv2.weight.add_assign(&other.conv2.weight)?;
        self.conv2.bias.add_assign(&other.conv2.bias)?;
        self.conv3.weight.add_assign(&other.conv3.weight)?;
        self.conv3.bias.add_assign(&other.conv3.bias)?;
        self.conv4.weight.add_assign(&other.conv4.weight)?;
        self.conv4.bias.add_assign(&other.conv4.bias)?;
        self.dense1.weight.add_assign(&other.dense1.weight)?;
        self.dense1.bias.add_assign(&other.dense1.bias)?;
        self.dense2.weight.add_assign(&other.dense2.weight)?;
        self.dense2.bias.add_assign(&other.dense2.bias)?;
        Ok(())
    }

    /// Fixed-order pairwise tree reduction of per-micro-batch gradient
    /// sets: adjacent pairs are combined until one set remains
    /// (`((g₀+g₁)+(g₂+g₃))` for four inputs). The tree's shape depends
    /// only on `parts.len()`, never on how many threads produced the
    /// parts, so the reduced gradient — and therefore the whole training
    /// trajectory — is byte-identical at any `TAOR_THREADS` width.
    pub fn tree_sum(mut parts: Vec<NetGrads>) -> Result<Option<NetGrads>, TensorError> {
        while parts.len() > 1 {
            let mut next = Vec::with_capacity(parts.len().div_ceil(2));
            let mut it = parts.into_iter();
            while let Some(mut a) = it.next() {
                if let Some(b) = it.next() {
                    a.accumulate(&b)?;
                }
                next.push(a);
            }
            parts = next;
        }
        Ok(parts.pop())
    }

    /// Scale every gradient (e.g. by 1/batch).
    pub fn scale(&mut self, k: f32) {
        for t in [
            &mut self.conv1.weight,
            &mut self.conv1.bias,
            &mut self.conv2.weight,
            &mut self.conv2.bias,
            &mut self.conv3.weight,
            &mut self.conv3.bias,
            &mut self.conv4.weight,
            &mut self.conv4.bias,
            &mut self.dense1.weight,
            &mut self.dense1.bias,
            &mut self.dense2.weight,
            &mut self.dense2.bias,
        ] {
            t.scale(k);
        }
    }
}

/// Opaque forward caches for one (A, B) batch.
pub struct NetCache {
    // Tower caches for each of the two inputs.
    tower_a: TowerCache,
    tower_b: TowerCache,
    xc: crate::xcorr::XCorrCache,
    c3: crate::layers::conv::ConvCache,
    r3: crate::layers::activation::ReluCache,
    c4: crate::layers::conv::ConvCache,
    r4: crate::layers::activation::ReluCache,
    p3: crate::layers::pool::PoolCache,
    pre_flat_shape: Vec<usize>,
    d1: crate::layers::dense::DenseCache,
    r5: crate::layers::activation::ReluCache,
    drop: Option<DropoutCache>,
    d2: crate::layers::dense::DenseCache,
}

struct TowerCache {
    c1: crate::layers::conv::ConvCache,
    r1: crate::layers::activation::ReluCache,
    p1: crate::layers::pool::PoolCache,
    c2: crate::layers::conv::ConvCache,
    r2: crate::layers::activation::ReluCache,
    p2: crate::layers::pool::PoolCache,
}

/// Forward caches of one batched training pass ([`NormXCorrNet::forward_batch`]).
/// Unlike [`NetCache`] there is a single tower cache: both branches of
/// every pair travel through the shared tower as one interleaved batch.
pub struct BatchCache {
    tower: TowerCache,
    xc: crate::xcorr::XCorrCache,
    c3: crate::layers::conv::ConvCache,
    r3: crate::layers::activation::ReluCache,
    c4: crate::layers::conv::ConvCache,
    r4: crate::layers::activation::ReluCache,
    p3: crate::layers::pool::PoolCache,
    pre_flat_shape: Vec<usize>,
    d1: crate::layers::dense::DenseCache,
    r5: crate::layers::activation::ReluCache,
    drop: Option<DropoutCache>,
    d2: crate::layers::dense::DenseCache,
}

/// Interleave two `[N, C, H, W]` stacks into `[2N, C, H, W]` as
/// `[a₀, b₀, a₁, b₁, …]`, so the two branches of pair `s` are batch
/// items `2s` and `2s + 1` — the layout `Conv2D::backward_grouped`
/// (group = 2) needs to replay the per-sample a-then-b weight-gradient
/// accumulation of the shared tower.
fn interleave(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let s = a.shape();
    if s != b.shape() || s.len() != 4 {
        return Err(TensorError::ShapeMismatch {
            expected: a.shape().to_vec(),
            got: b.shape().to_vec(),
        });
    }
    let n = s[0];
    let item = s[1] * s[2] * s[3];
    let mut out = vec![0.0f32; 2 * n * item];
    for i in 0..n {
        out[2 * i * item..(2 * i + 1) * item].copy_from_slice(&a.data()[i * item..(i + 1) * item]);
        out[(2 * i + 1) * item..(2 * i + 2) * item]
            .copy_from_slice(&b.data()[i * item..(i + 1) * item]);
    }
    Tensor::from_vec(&[2 * n, s[1], s[2], s[3]], out)
}

/// Undo [`interleave`]: split `[2N, C, H, W]` into the even-index and
/// odd-index `[N, C, H, W]` stacks.
fn split_even_odd(t: &Tensor) -> Result<(Tensor, Tensor), TensorError> {
    let s = t.shape();
    if s.len() != 4 || !s[0].is_multiple_of(2) {
        return Err(TensorError::ShapeMismatch { expected: vec![0, 0, 0, 0], got: s.to_vec() });
    }
    let n = s[0] / 2;
    let item = s[1] * s[2] * s[3];
    let mut a = Vec::with_capacity(n * item);
    let mut b = Vec::with_capacity(n * item);
    for i in 0..n {
        a.extend_from_slice(&t.data()[2 * i * item..(2 * i + 1) * item]);
        b.extend_from_slice(&t.data()[(2 * i + 1) * item..(2 * i + 2) * item]);
    }
    Ok((Tensor::from_vec(&[n, s[1], s[2], s[3]], a)?, Tensor::from_vec(&[n, s[1], s[2], s[3]], b)?))
}

impl NormXCorrNet {
    /// Build the network for a configuration.
    ///
    /// Returns [`TensorError::InputTooSmall`] when the configured input
    /// resolution cannot survive the two conv-5×5 + pool-2 stages of the
    /// shared tower plus the final pool — undersized crops are a data
    /// condition on a robot, not a programming error, so they must not
    /// abort the process.
    ///
    /// ```
    /// use taor_nn::{NetConfig, NormXCorrNet, Tensor};
    ///
    /// let cfg = NetConfig { height: 24, width: 20, c1: 3, c2: 4, c3: 4, dense: 8,
    ///                       ..NetConfig::default() };
    /// let net = NormXCorrNet::new(cfg.clone()).unwrap();
    /// let x = Tensor::full(&[1, 3, cfg.height, cfg.width], 0.1);
    /// let (logits, _) = net.forward(&x, &x).unwrap();
    /// assert_eq!(logits.shape(), &[1, 2]);
    /// ```
    pub fn new(config: NetConfig) -> Result<Self, TensorError> {
        let xcorr = NormXCorr::new(config.patch, config.radius);
        let xc_channels = xcorr.out_channels(config.c2);
        // Spatial bookkeeping to size the dense layer. Explicit checked
        // arithmetic so undersized inputs fail loudly in release builds too.
        let shrink = |v: usize| v.checked_sub(4).filter(|&r| r >= 2); // conv 5x5 valid
        let stage = |v: usize| shrink(v).map(|r| r / 2); // + pool 2
        let (h3, w3) = match (
            stage(config.height).and_then(stage).map(|v| v / 2),
            stage(config.width).and_then(stage).map(|v| v / 2),
        ) {
            (Some(h), Some(w)) if h >= 1 && w >= 1 => (h, w),
            _ => {
                return Err(TensorError::InputTooSmall {
                    width: config.width,
                    height: config.height,
                })
            }
        };
        // xcorr keeps spatial dims; conv3/conv4 are 3x3 pad 1; final pool /2.
        let flat = config.c3 * h3 * w3;

        Ok(NormXCorrNet {
            conv1: Conv2D::new(3, config.c1, 5, 0, config.seed ^ 0xC0_01),
            conv2: Conv2D::new(config.c1, config.c2, 5, 0, config.seed ^ 0xC0_02),
            conv3: Conv2D::new(xc_channels, config.c3, 3, 1, config.seed ^ 0xC0_03),
            conv4: Conv2D::new(config.c3, config.c3, 3, 1, config.seed ^ 0xC0_04),
            dense1: Dense::new(flat, config.dense, config.seed ^ 0xD0_01),
            dense2: Dense::new(config.dense, 2, config.seed ^ 0xD0_02),
            config,
            pool: default_pool(),
        })
    }

    fn xcorr(&self) -> NormXCorr {
        NormXCorr::new(self.config.patch, self.config.radius)
    }

    /// Fresh zeroed gradient store.
    pub fn zero_grads(&self) -> NetGrads {
        NetGrads {
            conv1: self.conv1.zero_grads(),
            conv2: self.conv2.zero_grads(),
            conv3: self.conv3.zero_grads(),
            conv4: self.conv4.zero_grads(),
            dense1: self.dense1.zero_grads(),
            dense2: self.dense2.zero_grads(),
        }
    }

    fn tower_forward(&self, x: &Tensor) -> Result<(Tensor, TowerCache), TensorError> {
        let (y, c1) = self.conv1.forward(x)?;
        let (y, r1) = Relu.forward(&y);
        let (y, p1) = self.pool.forward(&y)?;
        let (y, c2) = self.conv2.forward(&y)?;
        let (y, r2) = Relu.forward(&y);
        let (y, p2) = self.pool.forward(&y)?;
        Ok((y, TowerCache { c1, r1, p1, c2, r2, p2 }))
    }

    fn tower_backward(
        &self,
        cache: &TowerCache,
        grad: &Tensor,
        grads: &mut NetGrads,
    ) -> Result<(), TensorError> {
        let g = self.pool.backward(&cache.p2, grad);
        let g = Relu.backward(&cache.r2, &g);
        let g = self.conv2.backward(&cache.c2, &g, &mut grads.conv2)?;
        let g = self.pool.backward(&cache.p1, &g);
        let g = Relu.backward(&cache.r1, &g);
        let _ = self.conv1.backward(&cache.c1, &g, &mut grads.conv1)?;
        Ok(())
    }

    /// Forward pass over a batch of image pairs, both `[N, 3, H, W]`.
    /// Returns the `[N, 2]` logits and the caches needed for backward.
    /// Inference mode: dropout (if configured) is bypassed.
    pub fn forward(&self, a: &Tensor, b: &Tensor) -> Result<(Tensor, NetCache), TensorError> {
        self.forward_ex(a, b, None)
    }

    /// Forward pass with optional training-mode dropout, seeded by
    /// `dropout_seed` so full runs stay reproducible.
    pub fn forward_ex(
        &self,
        a: &Tensor,
        b: &Tensor,
        dropout_seed: Option<u64>,
    ) -> Result<(Tensor, NetCache), TensorError> {
        let (fa, tower_a) = self.tower_forward(a)?;
        let (fb, tower_b) = self.tower_forward(b)?;
        let (xc_out, xc) = self.xcorr().forward(&fa, &fb)?;
        let (y, c3) = self.conv3.forward(&xc_out)?;
        let (y, r3) = Relu.forward(&y);
        let (y, c4) = self.conv4.forward(&y)?;
        let (y, r4) = Relu.forward(&y);
        let (y, p3) = self.pool.forward(&y)?;
        let pre_flat_shape = y.shape().to_vec();
        let y = flatten(&y)?;
        let (y, d1) = self.dense1.forward(&y)?;
        let (y, r5) = Relu.forward(&y);
        let (y, drop) = match dropout_seed {
            Some(seed) if self.config.dropout > 0.0 => {
                let layer = Dropout::new(self.config.dropout);
                let (y, cache) = layer.forward_train(&y, seed);
                (y, Some(cache))
            }
            _ => (y, None),
        };
        let (logits, d2) = self.dense2.forward(&y)?;
        Ok((
            logits,
            NetCache { tower_a, tower_b, xc, c3, r3, c4, r4, p3, pre_flat_shape, d1, r5, drop, d2 },
        ))
    }

    /// Backward pass from `dL/dlogits`; accumulates into `grads`.
    pub fn backward(
        &self,
        cache: &NetCache,
        grad_logits: &Tensor,
        grads: &mut NetGrads,
    ) -> Result<(), TensorError> {
        let g = self.dense2.backward(&cache.d2, grad_logits, &mut grads.dense2)?;
        let g = match &cache.drop {
            Some(dc) => Dropout::new(self.config.dropout).backward(dc, &g),
            None => g,
        };
        let g = Relu.backward(&cache.r5, &g);
        let g = self.dense1.backward(&cache.d1, &g, &mut grads.dense1)?;
        let g = unflatten(&g, &cache.pre_flat_shape)?;
        let g = self.pool.backward(&cache.p3, &g);
        let g = Relu.backward(&cache.r4, &g);
        let g = self.conv4.backward(&cache.c4, &g, &mut grads.conv4)?;
        let g = Relu.backward(&cache.r3, &g);
        let g = self.conv3.backward(&cache.c3, &g, &mut grads.conv3)?;
        let (ga, gb) = self.xcorr().backward(&cache.xc, &g)?;
        // Shared tower: both branches accumulate into the same parameters.
        self.tower_backward(&cache.tower_a, &ga, grads)?;
        self.tower_backward(&cache.tower_b, &gb, grads)?;
        Ok(())
    }

    /// Batched training forward: both branches of every pair travel
    /// through the shared tower as **one interleaved `[2N, …]` batch**
    /// (one GEMM per conv instead of two), and dropout — when enabled —
    /// draws a separate stream per row from `dropout_seeds[i]`.
    ///
    /// Per-pair logits are bit-identical to [`Self::forward_ex`] on each
    /// pair alone with the matching seed: every layer's per-item fold is
    /// independent of the batch grouping (conv GEMM columns, dense rows,
    /// xcorr planes, elementwise ops).
    pub fn forward_batch(
        &self,
        a: &Tensor,
        b: &Tensor,
        dropout_seeds: Option<&[u64]>,
    ) -> Result<(Tensor, BatchCache), TensorError> {
        let t = interleave(a, b)?;
        let (f, tower) = self.tower_forward(&t)?;
        let (fa, fb) = split_even_odd(&f)?;
        let (xc_out, xc) = self.xcorr().forward(&fa, &fb)?;
        let (y, c3) = self.conv3.forward(&xc_out)?;
        let (y, r3) = Relu.forward(&y);
        let (y, c4) = self.conv4.forward(&y)?;
        let (y, r4) = Relu.forward(&y);
        let (y, p3) = self.pool.forward(&y)?;
        let pre_flat_shape = y.shape().to_vec();
        let y = flatten(&y)?;
        let (y, d1) = self.dense1.forward(&y)?;
        let (y, r5) = Relu.forward(&y);
        let (y, drop) = match dropout_seeds {
            Some(seeds) if self.config.dropout > 0.0 => {
                let layer = Dropout::new(self.config.dropout);
                let (y, cache) = layer.forward_train_rows(&y, seeds);
                (y, Some(cache))
            }
            _ => (y, None),
        };
        let (logits, d2) = self.dense2.forward(&y)?;
        Ok((logits, BatchCache { tower, xc, c3, r3, c4, r4, p3, pre_flat_shape, d1, r5, drop, d2 }))
    }

    /// Batched backward from **unscaled** per-row `dL/dlogits`;
    /// accumulates into `grads`.
    ///
    /// Parameter gradients are bit-identical to running the per-sample
    /// oracle ([`Self::forward_ex`] + [`Self::backward`]) on each pair in
    /// order and summing the per-sample stores: every layer replays the
    /// oracle's accumulation order (grouped conv GEMMs with `group = 2`
    /// on the interleaved tower, per-row dense rank-1 products), so f32
    /// non-associativity cannot shift a single bit.
    pub fn backward_batch(
        &self,
        cache: &BatchCache,
        grad_logits: &Tensor,
        grads: &mut NetGrads,
    ) -> Result<(), TensorError> {
        let g = self.dense2.backward_rows(&cache.d2, grad_logits, &mut grads.dense2)?;
        let g = match &cache.drop {
            Some(dc) => Dropout::new(self.config.dropout).backward(dc, &g),
            None => g,
        };
        let g = Relu.backward(&cache.r5, &g);
        let g = self.dense1.backward_rows(&cache.d1, &g, &mut grads.dense1)?;
        let g = unflatten(&g, &cache.pre_flat_shape)?;
        let g = self.pool.backward(&cache.p3, &g);
        let g = Relu.backward(&cache.r4, &g);
        let g = self.conv4.backward_grouped(&cache.c4, &g, &mut grads.conv4, 1)?;
        let g = Relu.backward(&cache.r3, &g);
        let g = self.conv3.backward_grouped(&cache.c3, &g, &mut grads.conv3, 1)?;
        let (ga, gb) = self.xcorr().backward(&cache.xc, &g)?;
        let gt = interleave(&ga, &gb)?;
        let g = self.pool.backward(&cache.tower.p2, &gt);
        let g = Relu.backward(&cache.tower.r2, &g);
        let g = self.conv2.backward_grouped(&cache.tower.c2, &g, &mut grads.conv2, 2)?;
        let g = self.pool.backward(&cache.tower.p1, &g);
        let g = Relu.backward(&cache.tower.r1, &g);
        let _ = self.conv1.backward_grouped(&cache.tower.c1, &g, &mut grads.conv1, 2)?;
        Ok(())
    }

    /// Shared-tower features for a batch of images — the expensive half
    /// of [`Self::forward`], exposed separately so evaluation can embed
    /// each *distinct* image once and score many pairs against the
    /// features (pairs share images heavily in the re-identification
    /// protocol).
    pub fn tower_embed(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        let (y, _) = self.tower_forward(x)?;
        Ok(y)
    }

    /// Inference head from precomputed tower features
    /// ([`Self::tower_embed`]): NormXCorr → conv stack → dense stack.
    /// Composing `tower_embed` + `head_logits` is bit-identical to
    /// [`Self::forward`] on the raw pair.
    pub fn head_logits(&self, fa: &Tensor, fb: &Tensor) -> Result<Tensor, TensorError> {
        let (xc_out, _) = self.xcorr().forward(fa, fb)?;
        let (y, _) = self.conv3.forward(&xc_out)?;
        let (y, _) = Relu.forward(&y);
        let (y, _) = self.conv4.forward(&y)?;
        let (y, _) = Relu.forward(&y);
        let (y, _) = self.pool.forward(&y)?;
        let y = flatten(&y)?;
        let (y, _) = self.dense1.forward(&y)?;
        let (y, _) = Relu.forward(&y);
        let (logits, _) = self.dense2.forward(&y)?;
        Ok(logits)
    }

    /// Predicted "similar" probability per pair (class 1).
    pub fn predict_similar(&self, a: &Tensor, b: &Tensor) -> Result<Vec<f32>, TensorError> {
        let (logits, _) = self.forward(a, b)?;
        let probs = softmax_probs(&logits)?;
        Ok((0..probs.shape()[0]).map(|i| probs.at2(i, 1)).collect())
    }

    /// Predicted "similar" probability per pair from precomputed tower
    /// features — the batched-inference fast path.
    pub fn predict_similar_features(
        &self,
        fa: &Tensor,
        fb: &Tensor,
    ) -> Result<Vec<f32>, TensorError> {
        let logits = self.head_logits(fa, fb)?;
        let probs = softmax_probs(&logits)?;
        Ok((0..probs.shape()[0]).map(|i| probs.at2(i, 1)).collect())
    }

    /// Mutable references to every parameter tensor, position-stable (for
    /// the optimiser).
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![
            &mut self.conv1.weight,
            &mut self.conv1.bias,
            &mut self.conv2.weight,
            &mut self.conv2.bias,
            &mut self.conv3.weight,
            &mut self.conv3.bias,
            &mut self.conv4.weight,
            &mut self.conv4.bias,
            &mut self.dense1.weight,
            &mut self.dense1.bias,
            &mut self.dense2.weight,
            &mut self.dense2.bias,
        ]
    }

    /// Gradient tensors matching [`NormXCorrNet::params_mut`] order.
    pub fn grads_vec(grads: &NetGrads) -> Vec<&Tensor> {
        vec![
            &grads.conv1.weight,
            &grads.conv1.bias,
            &grads.conv2.weight,
            &grads.conv2.bias,
            &grads.conv3.weight,
            &grads.conv3.bias,
            &grads.conv4.weight,
            &grads.conv4.bias,
            &grads.dense1.weight,
            &grads.dense1.bias,
            &grads.dense2.weight,
            &grads.dense2.bias,
        ]
    }

    /// Serialise the whole model to JSON (weights included).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serialisation cannot fail") // taor-lint: allow(panic::expect) — invariant expect: the message states why this cannot fail on valid state
    }

    /// Restore a model from [`NormXCorrNet::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::softmax::softmax_cross_entropy;

    fn tiny_config() -> NetConfig {
        NetConfig { height: 24, width: 20, c1: 4, c2: 5, c3: 6, dense: 16, ..Default::default() }
    }

    fn random_pair(cfg: &NetConfig, seed: u64) -> (Tensor, Tensor) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let len = 3 * cfg.height * cfg.width;
        let a = Tensor::from_vec(
            &[1, 3, cfg.height, cfg.width],
            (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
        .unwrap();
        let b = Tensor::from_vec(
            &[1, 3, cfg.height, cfg.width],
            (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn forward_produces_two_logits() {
        let cfg = tiny_config();
        let net = NormXCorrNet::new(cfg.clone()).expect("test config is large enough");
        let (a, b) = random_pair(&cfg, 1);
        let (logits, _) = net.forward(&a, &b).unwrap();
        assert_eq!(logits.shape(), &[1, 2]);
        assert!(logits.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn backward_runs_and_produces_finite_grads() {
        let cfg = tiny_config();
        let net = NormXCorrNet::new(cfg.clone()).expect("test config is large enough");
        let (a, b) = random_pair(&cfg, 2);
        let (logits, cache) = net.forward(&a, &b).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[1]).unwrap();
        let mut grads = net.zero_grads();
        net.backward(&cache, &grad, &mut grads).unwrap();
        for t in NormXCorrNet::grads_vec(&grads) {
            assert!(t.data().iter().all(|v| v.is_finite()));
        }
        // Tower gradients must be non-zero: signal reaches the shared conv1.
        assert!(grads.conv1.weight.data().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn single_step_reduces_loss_on_one_pair() {
        let cfg = tiny_config();
        let mut net = NormXCorrNet::new(cfg.clone()).expect("test config is large enough");
        let (a, b) = random_pair(&cfg, 3);
        let mut adam = crate::optim::Adam::new(1e-3, 0.0);
        let mut last = f32::INFINITY;
        for step in 0..8 {
            let (logits, cache) = net.forward(&a, &b).unwrap();
            let (loss, grad) = softmax_cross_entropy(&logits, &[0]).unwrap();
            if step == 7 {
                assert!(loss < last, "loss should decrease: {last} -> {loss}");
            }
            last = loss.min(last);
            let mut grads = net.zero_grads();
            net.backward(&cache, &grad, &mut grads).unwrap();
            let gvec = NormXCorrNet::grads_vec(&grads).into_iter().cloned().collect::<Vec<_>>();
            let grefs: Vec<&Tensor> = gvec.iter().collect();
            adam.step(&mut net.params_mut(), &grefs);
        }
    }

    #[test]
    fn symmetric_inputs_symmetric_weight_grads() {
        // Feeding (a, a) must give identical gradient contributions from
        // both tower applications — sanity of the weight sharing.
        let cfg = tiny_config();
        let net = NormXCorrNet::new(cfg.clone()).expect("test config is large enough");
        let (a, _) = random_pair(&cfg, 4);
        let (logits, cache) = net.forward(&a, &a).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[1]).unwrap();
        let mut grads = net.zero_grads();
        net.backward(&cache, &grad, &mut grads).unwrap();
        assert!(grads.conv1.weight.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let cfg = tiny_config();
        let net = NormXCorrNet::new(cfg.clone()).expect("test config is large enough");
        let (a, b) = random_pair(&cfg, 5);
        let p1 = net.predict_similar(&a, &b).unwrap();
        let json = net.to_json();
        let restored = NormXCorrNet::from_json(&json).unwrap();
        let p2 = restored.predict_similar(&a, &b).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn dropout_changes_training_forward_but_not_inference() {
        let cfg = NetConfig { dropout: 0.5, ..tiny_config() };
        let net = NormXCorrNet::new(cfg.clone()).expect("test config is large enough");
        let (a, b) = random_pair(&cfg, 9);
        let (train1, _) = net.forward_ex(&a, &b, Some(1)).unwrap();
        let (train2, _) = net.forward_ex(&a, &b, Some(2)).unwrap();
        assert_ne!(train1, train2, "different dropout seeds differ");
        let (eval1, _) = net.forward(&a, &b).unwrap();
        let (eval2, _) = net.forward(&a, &b).unwrap();
        assert_eq!(eval1, eval2, "inference is deterministic");
    }

    #[test]
    fn dropout_backward_runs() {
        let cfg = NetConfig { dropout: 0.3, ..tiny_config() };
        let net = NormXCorrNet::new(cfg.clone()).expect("test config is large enough");
        let (a, b) = random_pair(&cfg, 10);
        let (logits, cache) = net.forward_ex(&a, &b, Some(5)).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[0]).unwrap();
        let mut grads = net.zero_grads();
        net.backward(&cache, &grad, &mut grads).unwrap();
        assert!(grads.dense1.weight.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn absurdly_small_input_is_a_typed_error() {
        let cfg = NetConfig { height: 10, width: 10, ..tiny_config() };
        match NormXCorrNet::new(cfg) {
            Err(TensorError::InputTooSmall { width: 10, height: 10 }) => {}
            other => panic!("expected InputTooSmall, got {other:?}"),
        }
    }
}
