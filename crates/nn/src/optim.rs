//! Adam optimiser with learning-rate decay.
//!
//! The paper: "the learning rate was initialised to 0.0001 and its decay
//! set to 1e−7" with the Adam optimiser. Decay follows Keras' legacy
//! convention: `lr_t = lr / (1 + decay · iterations)`.

use crate::tensor::Tensor;

/// Adam optimiser state.
#[derive(Debug, Clone)]
pub struct Adam {
    pub lr: f32,
    pub decay: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// L2 weight-decay coefficient added to every gradient
    /// (`g += wd · w`); 0 disables it. An overfitting countermeasure the
    /// paper's conclusion motivates.
    pub weight_decay: f32,
    /// Completed steps.
    t: u64,
    /// First/second moment buffers, keyed by parameter position.
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the paper's hyperparameters for the given base `lr` and
    /// `decay` (β₁ = 0.9, β₂ = 0.999, ε = 1e-7 — the Keras defaults).
    pub fn new(lr: f32, decay: f32) -> Self {
        Adam {
            lr,
            decay,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-7,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Builder-style L2 weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of completed steps.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Effective learning rate for the *next* step.
    pub fn current_lr(&self) -> f32 {
        self.lr / (1.0 + self.decay * self.t as f32)
    }

    /// Apply one update. `params` and `grads` must be position-aligned and
    /// keep the same shapes across calls (moments are keyed by position).
    ///
    /// # Panics
    /// Panics on length or shape mismatch — that is a programming error in
    /// the training loop, not a recoverable condition.
    pub fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor]) {
        assert_eq!(params.len(), grads.len(), "params/grads must align");
        if self.m.is_empty() {
            self.m = params.iter().map(|p| Tensor::zeros(p.shape())).collect();
            self.v = params.iter().map(|p| Tensor::zeros(p.shape())).collect();
        }
        assert_eq!(self.m.len(), params.len(), "parameter count changed between steps");
        let lr_t = self.current_lr();
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, g), (m, v)) in
            params.iter_mut().zip(grads).zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            assert_eq!(p.shape(), g.shape(), "param/grad shape mismatch");
            for ((pv, &gv), (mv, vv)) in p
                .data_mut()
                .iter_mut()
                .zip(g.data())
                .zip(m.data_mut().iter_mut().zip(v.data_mut().iter_mut()))
            {
                let gv = gv + self.weight_decay * *pv;
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                let mhat = *mv / b1t;
                let vhat = *vv / b2t;
                *pv -= lr_t * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_quadratic() {
        // f(x) = (x - 3)², gradient 2(x - 3).
        let mut x = Tensor::from_vec(&[1], vec![0.0]).unwrap();
        let mut adam = Adam::new(0.1, 0.0);
        for _ in 0..500 {
            let g = Tensor::from_vec(&[1], vec![2.0 * (x.data()[0] - 3.0)]).unwrap();
            adam.step(&mut [&mut x], &[&g]);
        }
        assert!((x.data()[0] - 3.0).abs() < 0.05, "x = {}", x.data()[0]);
    }

    #[test]
    fn decay_reduces_learning_rate() {
        let mut adam = Adam::new(0.001, 0.1);
        assert_eq!(adam.current_lr(), 0.001);
        let mut x = Tensor::zeros(&[1]);
        let g = Tensor::full(&[1], 1.0);
        for _ in 0..10 {
            adam.step(&mut [&mut x], &[&g]);
        }
        assert!((adam.current_lr() - 0.001 / 2.0).abs() < 1e-9);
        assert_eq!(adam.steps(), 10);
    }

    #[test]
    fn handles_multiple_parameter_groups() {
        let mut a = Tensor::from_vec(&[2], vec![1.0, -1.0]).unwrap();
        let mut b = Tensor::from_vec(&[1], vec![5.0]).unwrap();
        let mut adam = Adam::new(0.05, 0.0);
        for _ in 0..300 {
            let ga = Tensor::from_vec(&[2], a.data().to_vec()).unwrap(); // min at 0
            let gb = Tensor::from_vec(&[1], b.data().to_vec()).unwrap();
            adam.step(&mut [&mut a, &mut b], &[&ga, &gb]);
        }
        assert!(a.data().iter().all(|v| v.abs() < 0.1));
        assert!(b.data()[0].abs() < 0.1);
    }

    #[test]
    fn weight_decay_pulls_towards_zero() {
        // Zero task gradient: with decay the weight shrinks, without it
        // the weight is untouched.
        let mut with = Tensor::from_vec(&[1], vec![4.0]).unwrap();
        let mut without = with.clone();
        let g = Tensor::zeros(&[1]);
        let mut adam_wd = Adam::new(0.05, 0.0).with_weight_decay(0.1);
        let mut adam = Adam::new(0.05, 0.0);
        for _ in 0..200 {
            adam_wd.step(&mut [&mut with], &[&g]);
            adam.step(&mut [&mut without], &[&g]);
        }
        assert!(with.data()[0].abs() < 1.0, "decayed to {}", with.data()[0]);
        assert_eq!(without.data()[0], 4.0);
    }

    #[test]
    #[should_panic(expected = "params/grads must align")]
    fn misaligned_inputs_panic() {
        let mut x = Tensor::zeros(&[1]);
        let mut adam = Adam::new(0.1, 0.0);
        adam.step(&mut [&mut x], &[]);
    }
}
