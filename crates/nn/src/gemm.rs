// taor-lint: allow(panic::index) — dense numeric kernel: indices are derived from dimensions validated at the public boundary and bounded by the enclosing loops.
//! Cache-blocked, register-tiled GEMM for `f32` — the single hot kernel
//! under every conv/dense forward and backward pass.
//!
//! Classic BLIS-style structure: the operand matrices are cut into
//! `KC × NC` panels of B and `MC × KC` blocks of A, packed into
//! contiguous scratch so the innermost microkernel streams both with
//! unit stride, then an `MR × NR` register tile is accumulated per
//! `(i, j)` position. On x86-64 with AVX2+FMA the microkernel uses
//! twelve 256-bit accumulators (6 rows × 2 vectors of 8 lanes);
//! elsewhere a portable unrolled tile that LLVM auto-vectorises.
//!
//! Row blocks of C are distributed with rayon (`par_chunks_mut`): each
//! task packs its own A block into a thread-local scratch while the B
//! panel is packed once and shared read-only. On a single-core host the
//! adapters degrade to the caller's thread with zero overhead.
//!
//! The `nt`/`tn` entry points fold operand transposition into the pack
//! step, so backward passes never materialise a transposed matrix.

use rayon::prelude::*;
use std::cell::RefCell;

/// Microkernel tile rows.
pub const MR: usize = 6;
/// Microkernel tile columns (two 8-lane AVX2 vectors).
pub const NR: usize = 16;
/// Rows of C per parallel task (multiple of `MR`).
pub const MC: usize = 72;
/// Depth of one packed slice of A/B (L1-resident panel depth).
pub const KC: usize = 256;
/// Columns of B packed per outer iteration (multiple of `NR`).
pub const NC: usize = 1024;

/// How the logical `A[m,k]`/`B[k,n]` operands are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Layout {
    /// `a` is `[m,k]`, `b` is `[k,n]` — plain product.
    Nn,
    /// `a` is `[m,k]`, `b` is `[n,k]` — product with Bᵀ.
    Nt,
    /// `a` is `[k,m]`, `b` is `[k,n]` — product with Aᵀ.
    Tn,
}

thread_local! {
    /// Per-thread packed-A scratch (`MC × KC` worst case).
    static PACKED_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// `C = A·B` (or `+=` with `accumulate`): `a` is `[m,k]`, `b` is
/// `[k,n]`, `c` is `[m,n]`, all row-major and contiguous.
pub fn gemm_nn(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    gemm(m, n, k, a, b, c, accumulate, Layout::Nn)
}

/// `C = A·Bᵀ`: `a` is `[m,k]`, `bt` is `[n,k]` — the dense backward
/// `dx = g · Wᵀ` shape, without materialising `Wᵀ`.
pub fn gemm_nt(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    bt: &[f32],
    c: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(bt.len(), n * k);
    gemm(m, n, k, a, bt, c, accumulate, Layout::Nt)
}

/// `C = Aᵀ·B`: `at` is `[k,m]`, `b` is `[k,n]` — the weight-gradient
/// `dW = xᵀ · g` shape, without materialising `xᵀ`.
pub fn gemm_tn(
    m: usize,
    n: usize,
    k: usize,
    at: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(at.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    gemm(m, n, k, at, b, c, accumulate, Layout::Tn)
}

/// Reference kernel: the seed's naive ikj loop, kept for property tests
/// and as the bench baseline the blocked kernel is measured against.
pub fn matmul_naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    c[..m * n].fill(0.0);
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            // taor-lint: allow(float::eq) — sparsity skip: only a bit-exact zero may be elided
            if av == 0.0 {
                continue;
            }
            let row = &b[kk * n..(kk + 1) * n];
            let dst = &mut c[i * n..(i + 1) * n];
            for (d, &bv) in dst.iter_mut().zip(row) {
                *d += av * bv;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn have_avx2_fma() -> bool {
    use std::sync::OnceLock;
    static DETECTED: OnceLock<bool> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

#[allow(clippy::too_many_arguments)]
fn gemm(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
    layout: Layout,
) {
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }
    // Shared packed-B panel for the current (jc, pc) iteration. One
    // allocation per call, reused across panel iterations.
    let mut packed_b = vec![0.0f32; KC.min(k) * NC.min(n.next_multiple_of(NR))];

    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let nc_tiles = nc.div_ceil(NR);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(&mut packed_b, b, n, k, jc, pc, nc, kc, layout);
            // First k-slice either overwrites or accumulates depending
            // on the caller's flag; later slices always accumulate.
            let acc_this = accumulate || pc > 0;
            let pb = &packed_b;
            c.par_chunks_mut(MC * n).enumerate().for_each(|(bi, cblock)| {
                let ic = bi * MC;
                let mc = MC.min(m - ic);
                PACKED_A.with(|pa_cell| {
                    let mut pa = pa_cell.borrow_mut();
                    pa.resize(MC * KC, 0.0);
                    pack_a(&mut pa, a, m, k, ic, pc, mc, kc, layout);
                    for it in 0..mc.div_ceil(MR) {
                        let rows = MR.min(mc - it * MR);
                        for jt in 0..nc_tiles {
                            let cols = NR.min(nc - jt * NR);
                            microkernel(
                                &pa[it * MR * kc..],
                                &pb[jt * NR * kc..],
                                kc,
                                cblock,
                                it * MR,
                                jc + jt * NR,
                                n,
                                rows,
                                cols,
                                acc_this,
                            );
                        }
                    }
                });
            });
        }
    }
}

/// Pack the `mc × kc` block of A at `(ic, pc)` as `ceil(mc/MR)` tiles,
/// each stored k-major with `MR` consecutive row entries per k step
/// (zero-padded past `mc`).
#[allow(clippy::too_many_arguments)]
fn pack_a(
    pa: &mut [f32],
    a: &[f32],
    m: usize,
    k: usize,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    layout: Layout,
) {
    let _ = m;
    for it in 0..mc.div_ceil(MR) {
        let tile = &mut pa[it * MR * kc..(it + 1) * MR * kc];
        let rows = MR.min(mc - it * MR);
        match layout {
            Layout::Nn | Layout::Nt => {
                for p in 0..kc {
                    for r in 0..MR {
                        tile[p * MR + r] =
                            if r < rows { a[(ic + it * MR + r) * k + pc + p] } else { 0.0 };
                    }
                }
            }
            Layout::Tn => {
                // A is stored `[k,m]`: rows of the logical block are
                // contiguous per k step.
                for p in 0..kc {
                    let src = &a[(pc + p) * m + ic + it * MR..];
                    for r in 0..MR {
                        tile[p * MR + r] = if r < rows { src[r] } else { 0.0 };
                    }
                }
            }
        }
    }
}

/// Pack the `kc × nc` panel of B at `(pc, jc)` as `ceil(nc/NR)` tiles,
/// each stored k-major with `NR` consecutive column entries per k step
/// (zero-padded past `nc`).
#[allow(clippy::too_many_arguments)]
fn pack_b(
    pb: &mut [f32],
    b: &[f32],
    n: usize,
    k: usize,
    jc: usize,
    pc: usize,
    nc: usize,
    kc: usize,
    layout: Layout,
) {
    for jt in 0..nc.div_ceil(NR) {
        let tile = &mut pb[jt * NR * kc..(jt + 1) * NR * kc];
        let cols = NR.min(nc - jt * NR);
        match layout {
            Layout::Nn | Layout::Tn => {
                for p in 0..kc {
                    let src = &b[(pc + p) * n + jc + jt * NR..];
                    for cc in 0..NR {
                        tile[p * NR + cc] = if cc < cols { src[cc] } else { 0.0 };
                    }
                }
            }
            Layout::Nt => {
                // B is stored `[n,k]`: one packed column entry per source
                // row; strided reads, unit-stride writes.
                for p in 0..kc {
                    for cc in 0..NR {
                        tile[p * NR + cc] =
                            if cc < cols { b[(jc + jt * NR + cc) * k + pc + p] } else { 0.0 };
                    }
                }
            }
        }
    }
}

/// Accumulate one `rows × cols` tile of C at `(row0, col0)` from packed
/// operand tiles (`pa`: `kc × MR`, `pb`: `kc × NR`).
#[allow(clippy::too_many_arguments)]
#[inline]
fn microkernel(
    pa: &[f32],
    pb: &[f32],
    kc: usize,
    c: &mut [f32],
    row0: usize,
    col0: usize,
    ldc: usize,
    rows: usize,
    cols: usize,
    accumulate: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if have_avx2_fma() {
        // SAFETY: AVX2+FMA presence was runtime-checked above.
        unsafe {
            microkernel_avx2(pa, pb, kc, c, row0, col0, ldc, rows, cols, accumulate);
        }
        return;
    }
    microkernel_portable(pa, pb, kc, c, row0, col0, ldc, rows, cols, accumulate);
}

/// Portable `MR × NR` register tile; the fixed-size inner loops
/// auto-vectorise on any SIMD target.
#[allow(clippy::too_many_arguments)]
fn microkernel_portable(
    pa: &[f32],
    pb: &[f32],
    kc: usize,
    c: &mut [f32],
    row0: usize,
    col0: usize,
    ldc: usize,
    rows: usize,
    cols: usize,
    accumulate: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..kc {
        let bp = &pb[p * NR..(p + 1) * NR];
        let ap = &pa[p * MR..(p + 1) * MR];
        for r in 0..MR {
            let av = ap[r];
            let dst = &mut acc[r];
            for (d, &bv) in dst.iter_mut().zip(bp) {
                *d += av * bv;
            }
        }
    }
    store_tile(&acc, c, row0, col0, ldc, rows, cols, accumulate);
}

#[allow(clippy::too_many_arguments)]
fn store_tile(
    acc: &[[f32; NR]; MR],
    c: &mut [f32],
    row0: usize,
    col0: usize,
    ldc: usize,
    rows: usize,
    cols: usize,
    accumulate: bool,
) {
    for r in 0..rows {
        let dst = &mut c[(row0 + r) * ldc + col0..(row0 + r) * ldc + col0 + cols];
        if accumulate {
            for (d, &v) in dst.iter_mut().zip(&acc[r][..cols]) {
                *d += v;
            }
        } else {
            dst.copy_from_slice(&acc[r][..cols]);
        }
    }
}

/// AVX2+FMA microkernel: 6×16 tile in twelve ymm accumulators.
///
/// # Safety
/// Caller must ensure AVX2 and FMA are available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn microkernel_avx2(
    pa: &[f32],
    pb: &[f32],
    kc: usize,
    c: &mut [f32],
    row0: usize,
    col0: usize,
    ldc: usize,
    rows: usize,
    cols: usize,
    accumulate: bool,
) {
    use std::arch::x86_64::*;
    // SAFETY: the caller guarantees AVX2+FMA (the only contract of this
    // fn); every pointer below stays inside `pa`/`pb`/`c`: the packed
    // panels hold `kc * MR` and `kc * NR` floats, and full tiles write
    // `MR x NR` in-bounds elements of `c` (edge tiles spill to a stack
    // buffer and copy through the safe `store_tile`).
    unsafe {
        let mut acc0 = [_mm256_setzero_ps(); MR];
        let mut acc1 = [_mm256_setzero_ps(); MR];
        let mut ap = pa.as_ptr();
        let mut bp = pb.as_ptr();
        for _ in 0..kc {
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            // Fully unrolled over the six rows: one broadcast feeds two FMAs.
            for r in 0..MR {
                let av = _mm256_broadcast_ss(&*ap.add(r));
                acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
                acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
        if rows == MR && cols == NR {
            for r in 0..MR {
                let dst = c.as_mut_ptr().add((row0 + r) * ldc + col0);
                if accumulate {
                    let cur0 = _mm256_loadu_ps(dst);
                    let cur1 = _mm256_loadu_ps(dst.add(8));
                    _mm256_storeu_ps(dst, _mm256_add_ps(cur0, acc0[r]));
                    _mm256_storeu_ps(dst.add(8), _mm256_add_ps(cur1, acc1[r]));
                } else {
                    _mm256_storeu_ps(dst, acc0[r]);
                    _mm256_storeu_ps(dst.add(8), acc1[r]);
                }
            }
        } else {
            // Edge tile: spill to a stack buffer, then copy the valid part.
            let mut tile = [[0.0f32; NR]; MR];
            for r in 0..MR {
                _mm256_storeu_ps(tile[r].as_mut_ptr(), acc0[r]);
                _mm256_storeu_ps(tile[r].as_mut_ptr().add(8), acc1[r]);
            }
            store_tile(&tile, c, row0, col0, ldc, rows, cols, accumulate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_pattern(len: usize, seed: u32) -> Vec<f32> {
        // Cheap deterministic pseudo-random values in [-1, 1].
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 8) as f32 / (1u32 << 23) as f32 - 1.0
            })
            .collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn blocked_matches_naive_across_shapes() {
        // Shapes straddle every blocking boundary: below MR/NR, exact
        // multiples, one past a boundary, and > KC depth.
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 2),
            (6, 16, 8),
            (7, 17, 9),
            (12, 32, 300),
            (73, 33, 70),
            (25, 1025, 13),
        ] {
            let a = fill_pattern(m * k, (m * 31 + n) as u32);
            let b = fill_pattern(k * n, (n * 17 + k) as u32);
            let mut want = vec![0.0; m * n];
            matmul_naive(m, n, k, &a, &b, &mut want);
            let mut got = vec![0.0; m * n];
            gemm_nn(m, n, k, &a, &b, &mut got, false);
            assert_close(&got, &want, 1e-4 * k as f32);
        }
    }

    #[test]
    fn nt_and_tn_match_explicit_transposes() {
        let (m, n, k) = (13, 21, 17);
        let a = fill_pattern(m * k, 3);
        let b = fill_pattern(k * n, 4);
        let mut want = vec![0.0; m * n];
        matmul_naive(m, n, k, &a, &b, &mut want);

        // bt[j*k + l] = b[l*n + j]
        let mut bt = vec![0.0; n * k];
        for l in 0..k {
            for j in 0..n {
                bt[j * k + l] = b[l * n + j];
            }
        }
        let mut got = vec![0.0; m * n];
        gemm_nt(m, n, k, &a, &bt, &mut got, false);
        assert_close(&got, &want, 1e-4);

        // at[l*m + i] = a[i*k + l]
        let mut at = vec![0.0; k * m];
        for i in 0..m {
            for l in 0..k {
                at[l * m + i] = a[i * k + l];
            }
        }
        let mut got_tn = vec![0.0; m * n];
        gemm_tn(m, n, k, &at, &b, &mut got_tn, false);
        assert_close(&got_tn, &want, 1e-4);
    }

    #[test]
    fn accumulate_adds_to_existing() {
        let (m, n, k) = (9, 20, 33);
        let a = fill_pattern(m * k, 5);
        let b = fill_pattern(k * n, 6);
        let mut base = fill_pattern(m * n, 7);
        let mut want = vec![0.0; m * n];
        matmul_naive(m, n, k, &a, &b, &mut want);
        for (w, &x) in want.iter_mut().zip(&base) {
            *w += x;
        }
        gemm_nn(m, n, k, &a, &b, &mut base, true);
        assert_close(&base, &want, 1e-4);
    }

    #[test]
    fn zero_k_clears_or_keeps() {
        let mut c = vec![1.0f32; 6];
        gemm_nn(2, 3, 0, &[], &[], &mut c, true);
        assert_eq!(c, vec![1.0; 6]);
        gemm_nn(2, 3, 0, &[], &[], &mut c, false);
        assert_eq!(c, vec![0.0; 6]);
    }
}
